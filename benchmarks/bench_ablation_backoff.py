"""Ablation — LRSC retry backoff window (motivates the paper's 128).

Sweeps the fixed backoff window of the LRSC retry loop on the
high-contention histogram.  Too small a window floods the shared
interconnect stage and the bank with retries — below ~2 cycles/core
the system quasi-livelocks, which is why this ablation measures over a
**fixed cycle horizon** (open-loop throughput) rather than running to
completion.  Too large a window leaves the bank idle between winners.

The finding: the optimal *fixed* window grows with the number of
contenders (there is no one-size-fits-all constant — the paper's 128
suits its lock workloads, not a raw 32-core single-address storm),
while *exponential* backoff finds the operating point adaptively and
matches or beats every fixed window.  That fragility is exactly the
motivation for replacing retry loops with a hardware queue (LRSCwait).
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.algorithms.histogram import Histogram
from repro.eval.reporting import render_table
from repro.sync.backoff import ExponentialBackoff, FixedBackoff
from repro.sync.rmw import lrsc_fetch_modify

from common import BENCH_CORES, report, run_experiment

WINDOWS = [8, 32, 128, 512, 2048]
HORIZON = 30_000


def run_point(backoff):
    machine = Machine(SystemConfig.scaled(BENCH_CORES),
                      VariantSpec.lrsc(), seed=0)
    histogram = Histogram(machine, 1)

    def kernel(api):
        while True:  # open loop: measure over a fixed horizon
            yield from lrsc_fetch_modify(
                api, histogram.bin_addr(0), lambda v: v + 1,
                backoff=backoff)
            yield from api.retire()

    machine.load_all(kernel)
    stats = machine.run_for(HORIZON)
    # Conservation still holds at the snapshot: bins count every
    # committed increment, retires may lag by at most one per core.
    committed = machine.peek(histogram.bin_addr(0))
    assert committed >= stats.total_ops
    assert committed <= stats.total_ops + BENCH_CORES
    return stats.throughput, stats.total_sc_failures


def sweep():
    rows = []
    for window in WINDOWS:
        throughput, failures = run_point(FixedBackoff(window))
        rows.append((f"fixed {window}", throughput, failures))
    throughput, failures = run_point(ExponentialBackoff())
    rows.append(("exponential", throughput, failures))
    return rows


def test_ablation_backoff(benchmark):
    rows = run_experiment(benchmark, sweep)
    rendered = render_table(
        ["backoff", "updates/cycle", "SC failures"], rows,
        title=(f"Ablation — LRSC backoff at 1 bin, {BENCH_CORES} cores, "
               f"{HORIZON}-cycle horizon"))
    by_label = {row[0]: row[1] for row in rows}
    report(benchmark, rendered,
           best_fixed=max(rows[:-1], key=lambda r: r[1])[0])
    failures = {row[0]: row[2] for row in rows}
    # Tiny windows generate the most retry traffic and the least
    # throughput (the flood regime)...
    assert failures["fixed 8"] > failures["fixed 512"]
    assert by_label["fixed 8"] < by_label["fixed 128"]
    # ...throughput grows monotonically out of the flood regime at this
    # contention level (the optimum shifts with core count)...
    ordered = [by_label[f"fixed {w}"] for w in WINDOWS]
    assert ordered == sorted(ordered)
    # ...and adaptive exponential backoff is competitive with the best
    # fixed window without knowing the contention in advance.
    best = max(ordered)
    assert by_label["exponential"] > 0.8 * best
