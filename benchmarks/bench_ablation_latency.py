"""Ablation — Colibri's node-update penalty vs interconnect latency.

§V-A attributes Colibri's "slight performance penalty" against the
ideal central queue to "the extra roundtrips of Colibri's node update
messages" (SuccessorUpdate / WakeUpRequest).  This ablation scales all
interconnect latencies and tracks the Colibri/ideal throughput ratio.

The measured finding is stronger than the naive expectation: because
the WakeUpRequest leaves the Qnode *together with* the SCwait (the
successor link is usually already in place under sustained
contention), the extra messages travel in parallel with traffic the
ideal queue pays anyway.  The penalty is therefore a small, roughly
constant number of cycles per handoff — so its *relative* cost shrinks
as the network slows down.  Colibri is latency-robust, which is why it
tracks LRSCwait_ideal across the whole of Fig. 3.
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.algorithms.histogram import Histogram
from repro.eval.reporting import render_table

from common import BENCH_CORES, BENCH_UPDATES, report, run_experiment

LATENCY_SWEEP = [(1, 3, 5), (2, 6, 10), (4, 12, 20)]


def run_point(variant, local, group, remote):
    config = SystemConfig.scaled(BENCH_CORES).with_latency(
        local_tile=local, same_group=group, remote_group=remote)
    machine = Machine(config, variant, seed=0)
    histogram = Histogram(machine, 1)
    machine.load_all(histogram.kernel_factory("wait", BENCH_UPDATES))
    stats = machine.run()
    histogram.verify(BENCH_CORES * BENCH_UPDATES)
    return stats.throughput


def sweep():
    rows = []
    for local, group, remote in LATENCY_SWEEP:
        ideal = run_point(VariantSpec.lrscwait_ideal(), local, group, remote)
        colibri = run_point(VariantSpec.colibri(), local, group, remote)
        rows.append((f"{local}/{group}/{remote}", ideal, colibri,
                     colibri / ideal))
    return rows


def test_ablation_latency(benchmark):
    rows = run_experiment(benchmark, sweep)
    rendered = render_table(
        ["latency l/g/r", "ideal thr", "colibri thr", "ratio"], rows,
        title="Ablation — Colibri node-update penalty vs latency")
    ratios = [row[3] for row in rows]
    report(benchmark, rendered, ratio_at_fastest=ratios[0],
           ratio_at_slowest=ratios[-1])
    # Colibri never exceeds the ideal queue; its penalty stays small
    # (within ~15 %) and does not blow up as the network slows — the
    # protocol's message parallelism hides the extra round trips.
    assert all(0.85 <= ratio <= 1.0 + 1e-9 for ratio in ratios)
    assert ratios[-1] >= ratios[0] - 0.02
