"""Ablation — Mwait wake-chain latency vs waiter count (§IV-B).

On Colibri, a single store wakes the whole Mwait queue *serially*: each
response bounces a WakeUpRequest through the woken core's Qnode before
the controller releases the next response.  The centralized LRSCwait
queue wakes its chain inside the controller.  This bench measures the
last-waiter wake latency as the chain grows: Colibri should scale
linearly with a larger slope (two extra message hops per waiter).
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.eval.reporting import render_table

from common import report, run_experiment

WAITERS = [2, 8, 24]


def wake_span(variant, waiters):
    """Cycles from the waking store until the last waiter resumes."""
    machine = Machine(SystemConfig.scaled(32), variant, seed=0)
    flag = machine.allocator.alloc_interleaved(1)
    store_cycle = []
    wake_cycles = []

    def writer(api):
        yield from api.compute(300)  # let every waiter enqueue first
        yield from api.sw(flag, 1)
        store_cycle.append(machine.sim.now)

    def waiter(api):
        yield from api.mwait(flag, expected=0)
        wake_cycles.append(machine.sim.now)

    machine.load(0, writer)
    machine.load_range(range(1, 1 + waiters), waiter)
    machine.run()
    return max(wake_cycles) - store_cycle[0]


def sweep():
    rows = []
    for waiters in WAITERS:
        central = wake_span(VariantSpec.lrscwait_ideal(), waiters)
        colibri = wake_span(VariantSpec.colibri(), waiters)
        rows.append((waiters, central, colibri))
    return rows


def test_ablation_mwait_chain(benchmark):
    rows = run_experiment(benchmark, sweep)
    rendered = render_table(
        ["#waiters", "central wake span", "colibri wake span"], rows,
        title="Ablation — Mwait wake-chain latency")
    report(benchmark, rendered,
           colibri_span_at_max=rows[-1][2],
           central_span_at_max=rows[-1][1])
    # Both chains grow with the waiter count; Colibri pays the extra
    # Qnode round trips.
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][2] >= rows[-1][1]
