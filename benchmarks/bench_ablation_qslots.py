"""Ablation — LRSCwait_q queue-slot sweep (§III-B trade-off).

The paper's Fig. 3 shows bounded queues collapsing "when the contention
is higher than their number of reservations".  This ablation pins the
contention (all cores on one bin) and sweeps q to locate the knee:
throughput should climb with q and saturate once q covers the core
count.
"""

from repro.eval.harness import SeriesSpec, run_histogram_point
from repro.eval.reporting import render_table

from common import BENCH_CORES, BENCH_UPDATES, report, run_experiment

SLOT_SWEEP = [1, 2, 4, 8, 16, None]  # None = ideal (one slot per core)


def sweep():
    rows = []
    for slots in SLOT_SWEEP:
        spec = SeriesSpec(
            f"LRSCwait_{slots if slots else 'ideal'}",
            "lrscwait", "wait", queue_slots=slots)
        point = run_histogram_point(spec, BENCH_CORES, 1, BENCH_UPDATES)
        rows.append((spec.label, point.throughput,
                     point.wait_rejections))
    return rows


def test_ablation_queue_slots(benchmark):
    rows = run_experiment(benchmark, sweep)
    rendered = render_table(
        ["variant", "updates/cycle", "QUEUE_FULL bounces"], rows,
        title=f"Ablation — LRSCwait_q at 1 bin, {BENCH_CORES} cores")
    throughputs = [row[1] for row in rows]
    report(benchmark, rendered,
           ideal_over_q1=throughputs[-1] / throughputs[0])
    # Monotone-ish growth to saturation, and rejections vanish at ideal.
    assert throughputs[-1] > throughputs[0]
    assert rows[-1][2] == 0
    assert rows[0][2] > 0
