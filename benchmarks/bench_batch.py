"""Campaign throughput: the batched core vs the sequential path.

The metric this file tracks is **campaign throughput** — scenario
points per second at smoke fidelity — because that, not single-run
latency, is what design-space campaigns spend (ROADMAP item 2).  The
batched core (``run_scenarios(..., batch=True)``) pools machines by
shape/variant/seed and resets them between points instead of paying
``build_machine`` per point; outputs are bit-identical to the
sequential path, asserted here on every run (including
``--benchmark-disable`` CI executions).

What the speedup honestly is: at smoke fidelity the event-loop run
itself dominates a point (~70%), so machine pooling buys back the
build/teardown share — measured ~1.2–1.4× on the reference machine,
recorded under ``PR6-batch-core`` in ``BENCH_engine.json``.  The
remaining distance to the ROADMAP's 3× campaign-throughput target is
per-event interpreter cost, i.e. the opt-in compiled kernel that item 2
still lists as open.  The assertion below guards the floor of what
pooling must deliver; the trajectory lives in the baseline file.
"""

import dataclasses
import time

from repro.scenarios import default_spec
from repro.scenarios.batch import execute_batch, machine_key
from repro.scenarios.registry import get_workload
from repro.scenarios.run import apply_settings, run_scenarios

from common import NOISE_FACTOR, baseline_stat, report

#: Minimum batch-vs-sequential speedup the warm pool must deliver on a
#: campaign whose points share machines.  Deliberately below the
#: measured ~1.2–1.4×: this is a regression floor (is pooling still
#: paying for itself?), not the tracked trajectory number.
MIN_BATCH_SPEEDUP = 1.05


def _campaign_specs():
    """A smoke-fidelity campaign: 24 points in 2 machine groups.

    Histogram at the workload's smoke shape, swept over bins and
    updates (param axes — machine shared) and two variants (machine
    axis — one warm machine each).
    """
    workload = get_workload("histogram")
    base = apply_settings(default_spec("histogram"),
                          dict(workload.smoke))
    specs = []
    for variant in ("colibri", "lrsc"):
        for bins in (1, 2, 4, 8):
            for updates in (2, 4, 8):
                specs.append(dataclasses.replace(
                    base.with_params(bins=bins,
                                     updates_per_core=updates),
                    variant=variant))
    return specs


def _paired_best_seconds(fn_a, fn_b, rounds: int = 5) -> tuple:
    """Best-of-N wall time for two functions, measured *alternating*.

    Container/CI machines see multi-second load bursts; measuring the
    two sides back-to-back lets one burst land entirely on one side and
    flip a ~1.2× ratio.  Alternating rounds spread bursts over both,
    and the per-side minimum (deterministic work) discards them.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_batch_campaign_throughput(benchmark):
    """Batched campaign: throughput tracked, bit-identity asserted."""
    specs = _campaign_specs()
    assert len({machine_key(spec) for spec in specs}) == 2

    def run_batch():
        return run_scenarios(specs, batch=True)

    batched = benchmark.pedantic(run_batch, rounds=5, iterations=1)
    sequential = run_scenarios(specs)
    assert batched == sequential          # bit-identical, always
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    # The ratio is measured separately with alternating rounds and
    # min-vs-min (the pedantic stats above feed the tracked baseline).
    batch_best, sequential_s = _paired_best_seconds(
        run_batch, lambda: run_scenarios(specs))
    points = len(specs)
    speedup = sequential_s / batch_best
    report(benchmark,
           f"campaign throughput: batch {points / batch_best:.0f} "
           f"points/s vs sequential {points / sequential_s:.0f} "
           f"points/s -> {speedup:.2f}x",
           points=points,
           batch_points_per_s=round(points / batch_best, 1),
           sequential_points_per_s=round(points / sequential_s, 1),
           speedup=round(speedup, 3))
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batch speedup {speedup:.2f}x below the {MIN_BATCH_SPEEDUP}x "
        f"floor — the warm-machine pool no longer pays for its "
        f"bookkeeping")
    # Guard on the round minimum, not the median: the work is
    # deterministic, so min is the repeatable statistic on machines
    # with background-load bursts (observed median swings ~2× here
    # while min stays within the noise factor).
    batch_min = benchmark.stats.stats.min
    baseline = baseline_stat("test_batch_campaign_throughput",
                             "PR6-batch-core", stat="min")
    assert batch_min <= baseline * NOISE_FACTOR, (
        f"batched campaign min {batch_min:.6f}s exceeds "
        f"{baseline:.6f}s * {NOISE_FACTOR} — the batch core regressed")


def test_batch_machine_reuse(benchmark):
    """The pool actually reuses: one build per machine group."""
    specs = _campaign_specs()

    def run():
        return execute_batch(specs)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(specs)
    # Warm-pool accounting re-derived out-of-band: the 24 specs span
    # exactly 2 machine groups, so a fresh runner performs 2 builds
    # and 22 resets (asserted functionally in tests/scenarios).
    if benchmark.enabled:
        baseline = baseline_stat("test_batch_machine_reuse",
                                 "PR6-batch-core", stat="min")
        best = benchmark.stats.stats.min
        assert best <= baseline * NOISE_FACTOR, (
            f"execute_batch min {best:.6f}s exceeds "
            f"{baseline:.6f}s * {NOISE_FACTOR}")
