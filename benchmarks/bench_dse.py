"""Design-space exploration benchmarks.

A campaign is a scheduling layer over the scenario runner: space
enumeration, spec building/validation, journal bookkeeping, objective
extraction, Pareto accounting.  The contract pinned down here is that
this layer stays negligible next to the simulations it schedules —
**campaign scheduling overhead under 5% of raw evaluation time** for a
grid campaign whose points each run a real (tiny) simulation.

The raw baseline is measured in-process with ``time.perf_counter``
(best of several runs of the identical spec list through
``run_scenarios``), the campaign with pytest-benchmark; the assertion
only fires when the benchmark actually timed (``--benchmark-disable``
CI runs still execute everything once for the correctness checks — see
``benchmarks/common.py`` on why CI never compares timings).  Medians
land in ``BENCH_engine.json`` under the ``PR4-dse-campaign`` label.
"""

import time

from repro.dse import Campaign, SearchSpace, parse_objectives
from repro.scenarios import default_spec
from repro.scenarios.run import run_scenarios

from common import report

#: Same-machine allowance for the scheduling-overhead assertion.
MAX_OVERHEAD = 0.05

SPACE = SearchSpace.from_axes({"bins": [1, 2, 4, 8],
                               "variant": ["lrsc", "colibri"]})


def _base():
    return default_spec("histogram", num_cores=16).with_params(
        updates_per_core=4)


def _campaign():
    return Campaign(base=_base(), space=SPACE, sampler="grid",
                    objectives=parse_objectives(["min:cycles"]),
                    budget=SPACE.grid_size())


def _raw_seconds(rounds: int = 3) -> float:
    """Best-of-N wall time of the same points without the engine."""
    campaign = _campaign()
    specs = [campaign._spec_for(combo, "full")
             for combo in SPACE.points()]
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_scenarios(specs, jobs=1)
        best = min(best, time.perf_counter() - start)
    return best


def test_campaign_scheduling_overhead_under_5_percent(benchmark):
    """Campaign run == raw evaluations + a sliver of scheduling."""

    def run():
        return _campaign().run()

    result = benchmark(run)
    assert result.status == "complete"
    assert result.paid == SPACE.grid_size()
    assert len(result.evaluations) == SPACE.grid_size()
    assert result.best() is not None
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    raw = _raw_seconds()
    campaign_median = benchmark.stats.stats.median
    overhead = campaign_median / raw - 1.0
    report(benchmark, f"campaign {campaign_median:.6f}s vs raw "
                      f"{raw:.6f}s -> overhead {overhead:+.2%}",
           raw_eval_s=raw, overhead_fraction=overhead)
    assert overhead <= MAX_OVERHEAD, (
        f"campaign scheduling overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} of raw evaluation time "
        f"({campaign_median:.6f}s vs {raw:.6f}s)")


def test_halving_campaign_executes(benchmark):
    """The adaptive path (smoke rungs, promotion) stays healthy."""

    def run():
        return Campaign(base=_base(), space=SPACE, sampler="halving",
                        objectives=parse_objectives(["min:cycles"]),
                        budget=SPACE.grid_size() * 2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status == "complete"
    assert any(e.fidelity == "smoke" for e in result.evaluations)
    assert all(e.fidelity == "full" for e in result.ranking())
    if benchmark.enabled:
        report(benchmark, "halving campaign over "
                          f"{SPACE.grid_size()} points",
               paid=result.paid, evaluations=len(result.evaluations))
