"""Microbenchmarks of the simulator substrate itself.

Not a paper experiment: these track the host-side cost of the
discrete-event kernel and a representative end-to-end simulation, so
regressions in simulator performance are caught alongside the paper
benches.  ``test_variant_registry_dispatch`` guards the PR-5 open
variant API: adapter construction and capability queries now go
through a registry lookup, which must stay within noise of the
``PR1-fast-path`` end-to-end baseline (the registry sits on the
machine-build path, never in the event loop).
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.simulator import Simulator

from common import NOISE_FACTOR, baseline_median


def test_event_kernel_throughput(benchmark):
    """Schedule-and-run cost of 20k chained events."""

    def run():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        return sim.now

    cycles = benchmark(run)
    assert cycles == 20_000


def test_end_to_end_histogram_sim(benchmark):
    """A representative 16-core Colibri histogram, measured end to end."""

    def run():
        machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri(),
                          seed=1)
        counter = machine.allocator.alloc_interleaved(1)

        def kernel(api):
            for _ in range(8):
                resp = yield from api.lrwait(counter)
                yield from api.compute(1)
                yield from api.scwait(counter, resp.value + 1)
                yield from api.retire()

        machine.load_all(kernel)
        stats = machine.run()
        return stats.total_ops

    ops = benchmark(run)
    assert ops == 16 * 8


def test_variant_registry_dispatch(benchmark):
    """Machine build + run with registry-dispatched adapters.

    Identical workload to ``test_end_to_end_histogram_sim`` — the
    adapter now comes from the variant registry instead of an if/elif
    chain, and this bench asserts (when timing) that the whole
    build-and-run stays within noise of the pre-registry baseline.
    """

    variants = [VariantSpec.colibri(), VariantSpec.lrscwait(8),
                VariantSpec.lrsc(), VariantSpec.amo()]

    def run():
        machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri(),
                          seed=1)
        counter = machine.allocator.alloc_interleaved(1)

        def kernel(api):
            for _ in range(8):
                resp = yield from api.lrwait(counter)
                yield from api.compute(1)
                yield from api.scwait(counter, resp.value + 1)
                yield from api.retire()

        machine.load_all(kernel)
        stats = machine.run()
        # Registry-built machines for the other kinds: construction is
        # where the dispatch changed, so it belongs in the measurement.
        for variant in variants:
            Machine(SystemConfig.scaled(16), variant, seed=1)
        return stats.total_ops

    ops = benchmark(run)
    assert ops == 16 * 8
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    median = benchmark.stats.stats.median
    baseline = baseline_median("test_end_to_end_histogram_sim")
    benchmark.extra_info["pr1_fast_path_median_s"] = baseline
    # 4 extra machine constructions ride along; allow them one extra
    # noise factor on top of the end-to-end budget.
    budget = baseline * NOISE_FACTOR + 4 * baseline * 0.25
    assert median <= budget, (
        f"registry-dispatch build+run median {median:.6f}s exceeds "
        f"{budget:.6f}s — variant-registry dispatch regressed the "
        f"machine-build/fast path")
