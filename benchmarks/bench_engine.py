"""Microbenchmarks of the simulator substrate itself.

Not a paper experiment: these track the host-side cost of the
discrete-event kernel and a representative end-to-end simulation, so
regressions in simulator performance are caught alongside the paper
benches.
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.simulator import Simulator


def test_event_kernel_throughput(benchmark):
    """Schedule-and-run cost of 20k chained events."""

    def run():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        return sim.now

    cycles = benchmark(run)
    assert cycles == 20_000


def test_end_to_end_histogram_sim(benchmark):
    """A representative 16-core Colibri histogram, measured end to end."""

    def run():
        machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri(),
                          seed=1)
        counter = machine.allocator.alloc_interleaved(1)

        def kernel(api):
            for _ in range(8):
                resp = yield from api.lrwait(counter)
                yield from api.compute(1)
                yield from api.scwait(counter, resp.value + 1)
                yield from api.retire()

        machine.load_all(kernel)
        stats = machine.run()
        return stats.total_ops

    ops = benchmark(run)
    assert ops == 16 * 8
