"""Fig. 3 — histogram throughput of the RMW primitives.

Regenerates the full six-series sweep (Atomic Add, LRSCwait_ideal,
LRSCwait_half, LRSCwait_1, Colibri, LRSC) at CI scale and checks the
paper's shape claims: AMO is the roofline, Colibri tracks the ideal
queue, LRSC trails everywhere, the bounded queue collapses at high
contention.
"""

from repro.eval.fig3 import run_fig3

from common import (
    BENCH_BINS,
    BENCH_CORES,
    BENCH_UPDATES,
    report,
    run_experiment,
)


def test_fig3_histogram(benchmark):
    result = run_experiment(benchmark, run_fig3,
                            num_cores=BENCH_CORES,
                            bins_list=BENCH_BINS,
                            updates_per_core=BENCH_UPDATES)
    speedup = result.speedup_over_lrsc(1)
    report(benchmark, result.render(),
           colibri_over_lrsc_at_1_bin=speedup)
    series = result.throughput_series()
    assert speedup > 1.5
    for index in range(len(result.bins)):
        assert series["Colibri"][index] > series["LRSC"][index]
        assert series["Atomic Add"][index] >= series["Colibri"][index]
    assert series["LRSCwait_1"][0] < series["LRSCwait_ideal"][0]
