"""Fig. 4 — lock implementations vs generic RMW atomics.

Regenerates the six lock/RMW series at CI scale and checks the paper's
claims: Colibri outperforms every lock at every contention; the
spin-lock family suffers at high contention; the Mwait MCS lock beats
the polling locks when contention is high.
"""

from repro.eval.fig4 import run_fig4

from common import (
    BENCH_BINS,
    BENCH_CORES,
    BENCH_UPDATES,
    report,
    run_experiment,
)


def test_fig4_locks(benchmark):
    result = run_experiment(benchmark, run_fig4,
                            num_cores=BENCH_CORES,
                            bins_list=BENCH_BINS,
                            updates_per_core=BENCH_UPDATES)
    series = result.throughput_series()
    report(benchmark, result.render(),
           colibri_wins_everywhere=result.colibri_wins_everywhere(),
           mwait_over_lrsc_lock_at_1_bin=(
               series["Mwait lock"][0] / series["LRSC lock"][0]))
    assert result.colibri_wins_everywhere()
    assert series["Mwait lock"][0] > series["LRSC lock"][0]
