"""Fig. 5 — matmul slowdown under interference from atomics.

Interference is a large-system effect (it needs enough pollers to
saturate the shared interconnect stage), so this bench runs at 64
cores — bigger than the other CI benches, smaller than the paper's
256.  Checks the direction of every paper claim: Colibri pollers are
nearly invisible to the workers, LRSC pollers are not.
"""

from repro.eval.fig5 import run_fig5

from common import report, run_experiment

FIG5_CORES = 64
FIG5_BINS = [1, 8, 16]


def test_fig5_interference(benchmark):
    result = run_experiment(benchmark, run_fig5,
                            num_cores=FIG5_CORES,
                            bins_list=FIG5_BINS,
                            matmul_dim=12)
    colibri_label = next(l for l in result.series if "Colibri" in l)
    at_1_bin = {label: values[0] for label, values in result.series.items()}
    worst_lrsc = min(min(values) for label, values in result.series.items()
                     if label.startswith("LRSC"))
    report(benchmark, result.render(),
           colibri_at_1_bin=at_1_bin[colibri_label],
           lrsc_worst_case=worst_lrsc)
    # The paper's claim is at maximum contention: "Colibri can operate
    # even at high contention without impacting other cores" — at 1 bin
    # the sleeping pollers are all but invisible...
    assert at_1_bin[colibri_label] > 0.95
    # ...while LRSC pollers cost the workers noticeably somewhere in
    # the sweep, and more than Colibri at every matched point.
    assert worst_lrsc < 0.85
    for label, values in result.series.items():
        if label.startswith("LRSC"):
            assert values[0] <= at_1_bin[colibri_label]
