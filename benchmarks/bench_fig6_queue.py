"""Fig. 6 — concurrent queue throughput and fairness vs core count.

Regenerates the three queue series (Colibri, Atomic Add lock, LRSC)
over a core sweep and checks: Colibri sustains throughput to the full
system, beats both baselines at scale, and keeps the per-core fairness
band narrow where LRSC's spreads.
"""

from repro.eval.fig6 import run_fig6

from common import BENCH_CORES, report, run_experiment

CORE_SWEEP = [1, 4, 8, 16, 32]


def test_fig6_queue(benchmark):
    result = run_experiment(benchmark, run_fig6,
                            max_cores=BENCH_CORES,
                            core_counts=CORE_SWEEP,
                            ops_per_core=12)
    series = result.throughput_series()
    fairness = result.fairness_series()
    report(benchmark, result.render(),
           colibri_over_lrsc_at_max=result.speedup(CORE_SWEEP[-1]),
           colibri_fairness_at_max=fairness["Colibri"][-1],
           lrsc_fairness_at_max=fairness["LRSC"][-1])
    assert series["Colibri"][-1] > series["LRSC"][-1]
    assert series["Colibri"][-1] > series["Atomic Add lock"][-1]
    assert fairness["Colibri"][-1] > fairness["LRSC"][-1]
