"""Observability hook cost: disabled hooks must be free.

PR 8 threads span/counter hooks through the harness hot path (cache
lookups, pool acquire, every scenario point and phase).  The contract
mirrors PR 3's simulator telemetry: **disabled — the default — costs
one attribute load plus a branch per site**, so the batched campaign
from ``bench_batch.py`` must stay within noise of the ``PR6-batch-core``
baseline with the hooks compiled in.  That is the regression this file
gates; enabled-mode cost is reported (it pays for span bookkeeping and
``perf_counter`` reads) but only correctness-gated, because recording
is opt-in per run.

The enabled-mode bench also reconciles the counters against the pool's
own accounting — the 24-point campaign spans exactly 2 machine groups,
so the observed run must report 2 builds, 22 resets and 24 point spans,
or the instrumentation is lying about what the harness did.

PR 9 threads a second instrument family through the same sites: the
campaign event log and worker heartbeats (``OBS.events`` /
``OBS.heartbeat``).  Same contract, new baseline: with the event-log
hooks compiled in but off — the default — the batched campaign must
stay within noise of the ``PR8-obs-hooks`` floor, so the two
observability layers cannot silently stack overhead.  The events-on
bench is correctness-gated like enabled-mode tracing: one
``point_started`` record per executed spec, a schema-valid log, and no
heartbeat files left behind after a clean close.
"""

import os

from repro.obs import OBS
from repro.obs.eventlog import events_path, validate_events_file
from repro.obs.heartbeat import heartbeat_dir
from repro.scenarios.run import run_scenarios

from bench_batch import _campaign_specs
from common import NOISE_FACTOR, baseline_stat, report


def test_obs_disabled_within_batch_core_noise(benchmark):
    """Hooks off (default): the PR6 batched campaign, unchanged."""
    specs = _campaign_specs()
    assert not OBS.enabled

    def run():
        return run_scenarios(specs, batch=True)

    results = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(results) == len(specs)
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    best = benchmark.stats.stats.min
    baseline = baseline_stat("test_batch_campaign_throughput",
                             "PR6-batch-core", stat="min")
    report(benchmark,
           f"obs-disabled batched campaign: min {best:.4f}s vs "
           f"PR6-batch-core {baseline:.4f}s "
           f"(x{best / baseline:.2f})",
           baseline_s=round(baseline, 6),
           ratio=round(best / baseline, 3))
    assert best <= baseline * NOISE_FACTOR, (
        f"obs-disabled campaign min {best:.6f}s exceeds "
        f"{baseline:.6f}s * {NOISE_FACTOR} — the disabled-path hooks "
        f"are no longer free")


def test_obs_enabled_counters_reconcile(benchmark):
    """Hooks on: results identical, counters match pool accounting."""
    specs = _campaign_specs()

    def run():
        OBS.enable()
        try:
            results = run_scenarios(specs, batch=True)
            return results, OBS.metrics.snapshot()
        finally:
            OBS.disable()

    results, snap = benchmark.pedantic(run, rounds=3, iterations=1)
    # Observation must not perturb the simulation.
    assert results == run_scenarios(specs, batch=True)
    counters = snap["counters"]
    assert counters["pool.build"] == 2, counters
    assert counters["pool.reset"] == 22, counters
    assert snap["timers"]["span.point"]["count"] == len(specs)
    if benchmark.enabled:
        report(benchmark,
               f"obs-enabled batched campaign: min "
               f"{benchmark.stats.stats.min:.4f}s "
               f"({len(specs)} points, "
               f"{snap['timers']['span.point']['count']} point spans)",
               point_spans=snap["timers"]["span.point"]["count"],
               pool_builds=counters["pool.build"],
               pool_resets=counters["pool.reset"])


def test_obs_events_off_within_obs_hooks_noise(benchmark):
    """Event-log hooks off (default): within noise of PR8-obs-hooks."""
    specs = _campaign_specs()
    assert OBS.events is None and OBS.heartbeat is None

    def run():
        return run_scenarios(specs, batch=True)

    results = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(results) == len(specs)
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    best = benchmark.stats.stats.min
    baseline = baseline_stat("test_obs_disabled_within_batch_core_noise",
                             "PR8-obs-hooks", stat="min")
    report(benchmark,
           f"events-off batched campaign: min {best:.4f}s vs "
           f"PR8-obs-hooks {baseline:.4f}s "
           f"(x{best / baseline:.2f})",
           baseline_s=round(baseline, 6),
           ratio=round(best / baseline, 3))
    assert best <= baseline * NOISE_FACTOR, (
        f"events-off campaign min {best:.6f}s exceeds "
        f"{baseline:.6f}s * {NOISE_FACTOR} — the event-log hooks "
        f"are no longer free when disabled")


def test_obs_events_enabled_campaign_reconciles(benchmark, tmp_path):
    """Events on: results identical, log reconciles, heartbeats clean."""
    specs = _campaign_specs()
    directory = str(tmp_path / "camp")
    rounds = []

    def run():
        OBS.open_events(events_path(directory))
        try:
            results = run_scenarios(specs, batch=True)
        finally:
            OBS.close_events()
        rounds.append(1)
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    # Observation must not perturb the simulation.
    assert results == run_scenarios(specs, batch=True)
    records, warnings = validate_events_file(events_path(directory))
    assert warnings == []
    started = [record for record in records
               if record["event"] == "point_started"]
    # One writer session per round, one point_started per spec.
    assert len(started) == len(rounds) * len(specs), (
        len(started), len(rounds), len(specs))
    # A clean close stops the heartbeat thread and removes its file.
    assert os.listdir(heartbeat_dir(directory)) == []
    if benchmark.enabled:
        report(benchmark,
               f"events-on batched campaign: min "
               f"{benchmark.stats.stats.min:.4f}s "
               f"({len(specs)} points, {len(records)} events/round "
               f"across {len(rounds)} rounds)",
               events_per_round=len(records) // len(rounds),
               point_started=len(started) // len(rounds))
