"""Extension — the §II LR/SC design space vs LRSCwait.

The paper's related-work section surveys how existing systems store
LR/SC reservations: MemPool's single slot per bank (stealable), ATUN's
per-core table (non-blocking but O(n) storage per bank), and GRVI's
bank-granularity bits (cheap but spuriously failing).  None of them
removes the retry loop.  This bench runs the contended histogram on
all of them plus Colibri: the reservation-storage upgrades help, but
the polling-free primitive dominates them all.
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.algorithms.histogram import Histogram
from repro.eval.reporting import render_table

from common import BENCH_CORES, BENCH_UPDATES, report, run_experiment

VARIANTS = [
    ("LRSC (MemPool 1-slot)", VariantSpec.lrsc(), "lrsc"),
    ("LRSC (ATUN table)", VariantSpec.lrsc_table(), "lrsc"),
    ("LRSC (GRVI bank-bit)", VariantSpec.lrsc_bank(), "lrsc"),
    ("Colibri (LRSCwait)", VariantSpec.colibri(), "wait"),
]


def run_point(variant, method, num_bins):
    machine = Machine(SystemConfig.scaled(BENCH_CORES), variant, seed=1)
    histogram = Histogram(machine, num_bins)
    machine.load_all(histogram.kernel_factory(method, BENCH_UPDATES))
    stats = machine.run()
    histogram.verify(BENCH_CORES * BENCH_UPDATES)
    return stats


def sweep():
    rows = []
    for label, variant, method in VARIANTS:
        high = run_point(variant, method, 1)
        low = run_point(variant, method, 64)
        rows.append((label, high.throughput, low.throughput,
                     high.total_sc_failures))
    return rows


def test_related_work_lrsc_designs(benchmark):
    rows = run_experiment(benchmark, sweep)
    rendered = render_table(
        ["design", "thr @1 bin", "thr @64 bins", "SC fails @1 bin"],
        rows,
        title=f"§II design space, histogram, {BENCH_CORES} cores")
    by_label = {row[0]: row for row in rows}
    report(benchmark, rendered,
           colibri_over_best_lrsc=(
               by_label["Colibri (LRSCwait)"][1]
               / max(r[1] for r in rows[:3])))
    # Colibri beats every retry-based design at high contention and
    # has zero failed stores.
    colibri = by_label["Colibri (LRSCwait)"]
    for label, *_rest in rows[:3]:
        assert colibri[1] > by_label[label][1]
    assert colibri[3] == 0
