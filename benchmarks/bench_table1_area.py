"""Table I — tile area model (analytic; fast).

Regenerates every row of the paper's Table I from the fitted area
model and prints the model-vs-paper comparison, plus the system-level
scaling table behind the §III-A O(n²)-vs-O(n) argument.
"""

from repro.eval.table1 import run_table1, scaling_table

from common import report, run_experiment


def test_table1_area(benchmark):
    result = run_experiment(benchmark, run_table1)
    report(benchmark, result.render() + "\n\n" + scaling_table(),
           max_relative_error=result.max_relative_error())
    assert result.max_relative_error() < 0.02
