"""Table II — energy per atomic access at maximum contention.

Regenerates the paper's Table II rows (Atomic Add, Colibri, LRSC with
backoff, Atomic Add lock) at CI scale and checks the ordering and the
order-of-magnitude ratios (paper: LRSC ≈ 7.1× Colibri, lock ≈ 8.8×).
"""

from repro.eval.table2 import run_table2

from common import BENCH_CORES, BENCH_UPDATES, report, run_experiment


def test_table2_energy(benchmark):
    result = run_experiment(benchmark, run_table2,
                            num_cores=BENCH_CORES,
                            updates_per_core=BENCH_UPDATES)
    report(benchmark, result.render(),
           lrsc_over_colibri=result.ratio("LRSC"),
           lock_over_colibri=result.ratio("Atomic Add lock"))
    by_label = {row[0]: row[2] for row in result.rows}
    assert (by_label["Atomic Add"] < by_label["Colibri"]
            < by_label["LRSC"] < by_label["Atomic Add lock"])
    assert result.ratio("LRSC") > 3
