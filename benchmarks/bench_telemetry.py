"""Telemetry overhead benchmarks.

The PR-3 hook points (core FSM, bank port, interconnect sends, adapter
queues) sit on the simulator's hot paths guarded by one attribute load
and one branch each.  These benches pin down both sides of the
contract:

* probes **disabled** (nothing subscribed) must stay within noise of
  the ``PR1-fast-path`` baseline recorded in ``BENCH_engine.json`` —
  the hook points themselves must not tax the kernel;
* probes **enabled** may cost real time (they observe every access),
  and the enabled run's report must still reconcile exactly with the
  aggregate stats counters, benchmarked or not.

The timing assertion only fires when the benchmark actually timed
(``--benchmark-disable`` CI runs still execute everything once for the
correctness checks, but skip the noisy comparison — see
``benchmarks/common.py`` on why CI never compares timings).
"""

from repro import Machine, SystemConfig, VariantSpec

from common import NOISE_FACTOR, baseline_median, report


def _run_histogram(probes=()):
    """The bench_engine end-to-end workload, optionally probed."""
    machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri(),
                      seed=1)
    if probes:
        machine.attach_probes(list(probes))
    counter = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        for _ in range(8):
            resp = yield from api.lrwait(counter)
            yield from api.compute(1)
            yield from api.scwait(counter, resp.value + 1)
            yield from api.retire()

    machine.load_all(kernel)
    machine.run()
    return machine


def test_probes_disabled_within_pr1_noise(benchmark):
    """Hook points with nothing subscribed: no kernel regression."""

    def run():
        return _run_histogram().stats.total_ops

    ops = benchmark(run)
    assert ops == 16 * 8
    if not benchmark.enabled:
        return  # --benchmark-disable: correctness-only execution
    median = benchmark.stats.stats.median
    baseline = baseline_median("test_end_to_end_histogram_sim")
    benchmark.extra_info["pr1_fast_path_median_s"] = baseline
    benchmark.extra_info["ratio_vs_pr1"] = median / baseline
    assert median <= baseline * NOISE_FACTOR, (
        f"probes-disabled end-to-end median {median:.6f}s exceeds "
        f"PR1-fast-path {baseline:.6f}s x{NOISE_FACTOR} — the telemetry "
        f"hook points regressed the kernel")


def test_probes_enabled_overhead_and_reconciliation(benchmark):
    """All four probes attached: measured, and counters must agree."""
    probes = ("bank_contention", "core_timeline", "queue_occupancy",
              "message_latency")

    def run():
        return _run_histogram(probes=probes)

    machine = benchmark(run)
    section = machine.telemetry_report().probes["bank_contention"]
    for bank in section["banks"]:
        assert bank["accesses"] == machine.stats.banks[bank["bank"]].accesses
    latency = machine.telemetry_report().probes["message_latency"]
    responses = sum(entry["count"]
                    for entry in latency["round_trip"].values())
    assert responses == machine.stats.total_requests
    if benchmark.enabled:
        report(benchmark, "probes-enabled end-to-end histogram",
               probed_median_s=benchmark.stats.stats.median)
