"""CI perf gate: fresh benchmark timings vs recorded baselines.

Compares the medians in one or more pytest-benchmark ``--benchmark-json``
files against the newest ``BENCH_engine.json`` entry that records each
benchmark, with the suite's noise tolerance (``NOISE_FACTOR``).  Exits 1
if any benchmark's fresh median exceeds ``baseline * NOISE_FACTOR``.

Pass *several* fresh JSON files (repeat the pytest run) and the gate
takes the best median per benchmark across them: each median already
aggregates that run's rounds, and the minimum across independent runs
discards whole-run load bursts — the failure mode that makes a single
noisy measurement flag a regression that is not there.  The work being
timed is deterministic, so the best observation is the honest one.

Benchmarks with no recorded baseline are reported as NEW and do not
fail the gate (appending their first entry is a deliberate, reviewed
act — see the protocol in ``benchmarks/common.py``).

Usage::

    pytest benchmarks -q --benchmark-json=timings-1.json
    pytest benchmarks -q --benchmark-json=timings-2.json
    python benchmarks/ci_gate.py timings-1.json timings-2.json
"""

from __future__ import annotations

import argparse
import json
import sys

from common import NOISE_FACTOR, load_baselines, machine_fingerprint


def best_medians(paths: list) -> dict:
    """Per-benchmark best median across the given fresh JSON files."""
    best: dict = {}
    for path in paths:
        with open(path) as stream:
            data = json.load(stream)
        for bench in data.get("benchmarks", []):
            name = bench["name"]
            median = bench["stats"]["median"]
            if name not in best or median < best[name]:
                best[name] = median
    return best


def newest_baseline(doc: dict, bench_name: str):
    """``(label, median)`` from the newest entry recording the bench."""
    for entry in reversed(doc["entries"]):
        if bench_name in entry["benchmarks"]:
            return entry["label"], entry["benchmarks"][bench_name]["median"]
    return None, None


def run_gate(paths: list, noise: float) -> int:
    doc = load_baselines()
    fresh = best_medians(paths)
    if not fresh:
        print("ci_gate: no benchmarks found in the supplied JSON files")
        return 1
    baseline_machine = doc.get("machine", {})
    machine = machine_fingerprint()
    if machine != baseline_machine:
        print(f"ci_gate: note: measuring on {machine}, file-level "
              f"baseline machine is {baseline_machine} (per-entry "
              f"stamps identify newer baselines)")
    failures = 0
    width = max(len(name) for name in fresh)
    print(f"ci_gate: {len(paths)} fresh run(s), noise factor {noise}")
    for name in sorted(fresh):
        label, baseline = newest_baseline(doc, name)
        if baseline is None:
            print(f"  {name:<{width}}  {fresh[name]*1e3:8.3f} ms  "
                  f"NEW (no baseline recorded)")
            continue
        allowed = baseline * noise
        verdict = "ok" if fresh[name] <= allowed else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"  {name:<{width}}  {fresh[name]*1e3:8.3f} ms  vs "
              f"{baseline*1e3:8.3f} ms ({label}) "
              f"allowed {allowed*1e3:8.3f} ms  {verdict}")
    if failures:
        print(f"ci_gate: {failures} benchmark(s) regressed beyond "
              f"{noise}x of their recorded baseline")
        return 1
    print("ci_gate: all benchmarks within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json_files", nargs="+",
                        help="pytest-benchmark --benchmark-json outputs "
                             "(pass several repeats for burst immunity)")
    parser.add_argument("--noise", type=float, default=NOISE_FACTOR,
                        help="allowed fresh/baseline median ratio "
                             f"(default: {NOISE_FACTOR})")
    args = parser.parse_args(argv)
    return run_gate(args.json_files, args.noise)


if __name__ == "__main__":
    sys.exit(main())
