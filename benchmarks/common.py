"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a
CI-friendly scale, prints the same rows/series the paper reports (run
pytest with ``-s`` to see them), and records the headline numbers in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON.

Simulations are deterministic, so a single round measures them exactly;
``run_experiment`` wraps ``benchmark.pedantic`` accordingly.  Scales
default to 32 cores — the paper's qualitative shape holds from 16 cores
up (asserted by the test-suite), while full-scale runs are available
through ``examples/reproduce_paper.py --full``.

Engine regression baseline
--------------------------
``bench_engine.py`` is the *host-performance* canary: it times the raw
event kernel (chained schedule/run) and one representative end-to-end
simulation.  Its medians are recorded in ``BENCH_engine.json`` at the
repo root — one labelled entry per significant kernel change, oldest
first (the PR-1 entries capture the seed kernel and the event-kernel
fast path, a ~2.5× kernel / ~1.4× end-to-end improvement).  When a PR
touches the engine hot path, regenerate the numbers with::

    pytest benchmarks/bench_engine.py --benchmark-json=out.json

and append a new entry (label, per-bench ``min``/``median``/``mean``)
to ``BENCH_engine.json`` instead of overwriting history, so the
trajectory across PRs stays comparable.  CI keeps every bench file
*executable* via ``pytest benchmarks -q --benchmark-disable``; timing
comparisons stay a manual, same-machine exercise because CI runners
are too noisy for them.
"""

from __future__ import annotations

import json
import os
import platform

#: Default CI scale for simulation benchmarks.
BENCH_CORES = 32
#: Bin sweep used by the histogram benches at CI scale.
BENCH_BINS = [1, 4, 16, 64]
#: Updates per core for histogram benches.
BENCH_UPDATES = 6


def run_experiment(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` once (deterministic sim) and return its result."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    return result


def report(benchmark, rendered: str, **extra) -> None:
    """Print the paper-style table and stash headline numbers."""
    print("\n" + rendered)
    for key, value in extra.items():
        benchmark.extra_info[key] = value


#: Same-machine noise allowance for baseline comparisons.
NOISE_FACTOR = 1.35

_BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_engine.json")


def machine_fingerprint() -> dict:
    """The machine identity stamped on baseline entries.

    Same shape as the file-level ``machine`` block of
    ``BENCH_engine.json``; per-entry stamps record *which* machine each
    appended baseline was measured on, so a trajectory mixing machines
    is visible instead of silently incomparable.
    """
    return {"python": platform.python_version(),
            "platform": platform.platform()}


def make_entry(label: str, benchmarks: dict) -> dict:
    """A ``BENCH_engine.json`` entry stamped with this machine.

    ``benchmarks`` maps bench names to their ``min``/``median``/``mean``
    (plus any extra headline numbers).  Append the result to the file's
    ``entries`` list — never overwrite history.
    """
    return {"label": label, "machine": machine_fingerprint(),
            "benchmarks": benchmarks}


def load_baselines() -> dict:
    """The parsed ``BENCH_engine.json`` document."""
    with open(_BENCH_JSON) as stream:
        return json.load(stream)


def baseline_stat(bench_name: str, label: str = "PR1-fast-path",
                  stat: str = "median") -> float:
    """A recorded statistic from ``BENCH_engine.json`` (protocol above).

    ``stat`` picks the recorded number: ``"median"`` for trajectory
    comparisons, ``"min"`` for noise-robust regression floors
    (deterministic work — the minimum is the repeatable estimate on
    machines with load bursts).
    """
    data = load_baselines()
    labels = [entry["label"] for entry in data["entries"]]
    for entry in data["entries"]:
        if entry["label"] == label:
            if bench_name not in entry["benchmarks"]:
                raise AssertionError(
                    f"entry {label!r} in BENCH_engine.json has no "
                    f"benchmark {bench_name!r}; it records: "
                    f"{sorted(entry['benchmarks'])}")
            return entry["benchmarks"][bench_name][stat]
    raise AssertionError(
        f"no {label!r} entry in BENCH_engine.json; available labels: "
        f"{labels}")


def baseline_median(bench_name: str, label: str = "PR1-fast-path") -> float:
    """A recorded median from ``BENCH_engine.json`` (see protocol above)."""
    return baseline_stat(bench_name, label, stat="median")
