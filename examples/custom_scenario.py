#!/usr/bin/env python3
"""Registering your own workload with the scenario API.

The scenario registry is open: user code registers a workload class
under a name, and from that moment a plain, serializable
``ScenarioSpec`` — or the ``repro run`` CLI in the same process —
drives it like any built-in.  This example registers *ping-pong*: two
cores bounce a token through a shared word, each flip waking the peer
with Mwait, and then sweeps the rally length.

Run:  python examples/custom_scenario.py
"""

from repro import Status, register_workload
from repro.scenarios import (
    LoadedWorkload,
    Workload,
    default_spec,
    run_scenario,
    sweep,
)


@register_workload("ping_pong")
class PingPongWorkload(Workload):
    """Two cores alternate writing a shared token word.

    Core 0 moves the token on even values, core 1 on odd values; each
    sleeps with Mwait until the peer's store hands the token back.
    ``rallies`` is the number of full round trips.
    """

    description = "two cores bounce a token via Mwait (example workload)"
    params = {"rallies": 8, "think_cycles": 3}
    spec_defaults = {"num_cores": 4, "variant": "colibri"}
    smoke = {"rallies": 2}

    def load(self, machine, spec):
        p = self.resolve_params(spec)
        token = machine.allocator.alloc_interleaved(1)
        rallies = p["rallies"]
        final = 2 * rallies

        def player(api, parity):
            while True:
                current = yield from api.lw(token)
                if current >= final:
                    return
                if current % 2 == parity:
                    yield from api.compute(p["think_cycles"])
                    yield from api.sw(token, current + 1)
                    yield from api.retire()
                else:
                    resp = yield from api.mwait(token, expected=current)
                    if resp.status is Status.QUEUE_FULL:
                        yield from api.compute(4)

        machine.load(0, lambda api: player(api, 0))
        machine.load(1, lambda api: player(api, 1))

        def verify():
            value = machine.peek(token)
            if value != final:
                raise AssertionError(
                    f"token ended at {value}, expected {final}")

        def finish(stats):
            return None, {"rallies": rallies,
                          "cycles_per_rally": stats.cycles / rallies}

        return LoadedWorkload(verify=verify, finish=finish)


def main():
    spec = default_spec("ping_pong")
    result = run_scenario(spec)
    print(f"ping_pong: {result.cycles} cycles for "
          f"{result.metrics['rallies']} rallies "
          f"({result.metrics['cycles_per_rally']:.1f} cycles/rally)")
    print(f"spec hash: {spec.stable_hash()[:16]}  (reproduce with "
          f"ScenarioSpec.from_dict({spec.to_dict()!r}))\n")

    print("rally-length sweep (cycles scale linearly, per-rally cost "
          "settles):")
    for combo, point in sweep(spec, {"rallies": [2, 4, 8, 16]}):
        print(f"  rallies={combo['rallies']:>2}  cycles={point.cycles:>5}  "
              f"cycles/rally={point.metrics['cycles_per_rally']:.1f}")


if __name__ == "__main__":
    main()
