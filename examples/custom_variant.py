#!/usr/bin/env python3
"""Registering your own atomic-memory variant with the open variant API.

The variant registry is open, exactly like the workload registry: user
code registers an ``AtomicVariant`` plugin under a name — parameter
schema, adapter factory, capability flags, and area/energy cost-model
hooks — and from that moment every variant string, ``repro run``
invocation (same process), sweep axis, DSE campaign and area table
drives it like a built-in.

This example registers *bounded_table*: an LR/SC reservation table
capped at ``slots`` entries per bank with FIFO eviction.  It spans the
design space between the paper's two §II comparators — MemPool's
single slot (``slots=1``-ish behaviour) and ATUN's full per-core table
(``slots=cores``) — and its area hook prices exactly that storage.

Run:  python examples/custom_variant.py
"""

from repro import AtomicVariant, VariantParam, register_variant
from repro.memory.lrsc_variants import LrscTableAdapter
from repro.power.area import TILE_BANKS, variant_overhead_kge
from repro.scenarios import default_spec, run_scenario, sweep
from repro.scenarios.spec import parse_variant


class BoundedTableAdapter(LrscTableAdapter):
    """Per-core reservation table capped at ``slots`` live entries.

    Inherits ATUN-style semantics (an LR never evicts another core's
    reservation on a *different* address) but bounds the storage: when
    the table is full, the oldest reservation is evicted FIFO — the
    evicted core's SC then fails and retries, like MemPool's slot
    steal, but only under genuine capacity pressure.
    """

    def __init__(self, controller, slots: int) -> None:
        super().__init__(controller)
        self.slots = slots

    def handle_reserved(self, req):
        from repro.interconnect.messages import Op
        if req.op is Op.LR and req.core_id not in self._table \
                and len(self._table) >= self.slots:
            oldest = next(iter(self._table))
            del self._table[oldest]
            self.ctrl.stats.reservations_invalidated += 1
        super().handle_reserved(req)


@register_variant("bounded_table")
class BoundedTableVariant(AtomicVariant):
    """LR/SC reservation table bounded to ``slots`` entries per bank."""

    description = "LR/SC table with FIFO-evicted bounded storage"
    params = {
        # "cores" is a symbolic value: resolved against the machine's
        # core count when the adapter is built, like lrscwait's "half".
        "slots": VariantParam(default=4, minimum=1, symbolic=("cores",),
                              doc="reservation entries per bank"),
    }
    positional = "slots"
    supports_lrsc = True
    native_method = "lrsc"

    def make_adapter(self, controller, params, num_cores, strict):
        return BoundedTableAdapter(controller, slots=params["slots"])

    def label(self, params):
        return f"BoundedTable_{params['slots']}"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        # Price the bounded storage like the ATUN table's entries.
        from repro.power.area import LRSC_TABLE_ENTRY_KGE
        slots = num_cores if params["slots"] == "cores" else params["slots"]
        return (banks or TILE_BANKS) * slots * LRSC_TABLE_ENTRY_KGE


def main():
    # The registered name is now a variant string like any built-in.
    spec = default_spec("histogram", num_cores=8,
                        variant="bounded_table:2").with_params(
        bins=2, updates_per_core=4)
    result = run_scenario(spec)
    print(f"bounded_table:2  histogram: {result.cycles} cycles, "
          f"{result.metrics['sc_failures']} SC failures "
          f"(spec hash {spec.stable_hash()[:16]})")

    print("\nslots sweep (a variant.<param> axis — more storage, fewer "
          "capacity evictions):")
    for combo, point in sweep(spec, {"variant.slots": [1, 2, "cores"]}):
        variant = point.spec.variant_spec()
        overhead = variant_overhead_kge(variant, num_cores=8)
        print(f"  slots={combo['variant.slots']!s:>5}  "
              f"cycles={point.cycles:>4}  "
              f"sc_failures={point.metrics['sc_failures']:>3}  "
              f"tile +{overhead:.1f} kGE")

    # The cost-model hook also lands in the registry-wide area table.
    from repro.eval.table1 import variant_area_rows
    row = next(r for r in variant_area_rows(num_cores=256)
               if r[0] == "bounded_table")
    print(f"\ntable1 area accounting row: {row}")

    # Strings round-trip through the generic grammar.
    variant = parse_variant("bounded_table:slots=cores", 8)
    print(f"'bounded_table:slots=cores' @ 8 cores -> "
          f"{variant.resolved(8)} ({variant.label()})")


if __name__ == "__main__":
    main()
