#!/usr/bin/env python3
"""Design-space exploration walkthrough: the paper's trade-off as a
Pareto frontier.

The paper's whole argument is a trade-off: synchronization variants
that burn cycles polling (LR/SC) vs variants that spend area/energy on
wait queues (LRSCwait_q, Colibri).  Instead of reading it off two
hand-picked tables, this example *searches* it: a campaign sweeps the
contended histogram across the variant family and contention levels,
scores every point on runtime (cycles) and energy (pJ/op), and prints
the Pareto frontier — the configurations nothing else beats on both
axes at once.

Run:  python examples/explore_tradeoff.py

Equivalent CLI:
  repro explore histogram --cores 16 --set updates_per_core=4 \\
      --axis "variant=lrsc,lrscwait:1,lrscwait:half,colibri" \\
      --axis bins=1,4 \\
      --objective min:cycles --objective min:energy \\
      --sampler grid --budget 16 --out explore-out
  repro frontier explore-out/journal.json
"""

from repro.dse import Campaign, SearchSpace, parse_objectives
from repro.dse.report import render_journal
from repro.scenarios import default_spec

CORES = 16
UPDATES = 4
VARIANTS = ["lrsc", "lrscwait:1", "lrscwait:half", "colibri"]


def main() -> None:
    campaign = Campaign(
        base=default_spec("histogram", num_cores=CORES).with_params(
            updates_per_core=UPDATES),
        space=SearchSpace.from_axes({"variant": VARIANTS,
                                     "bins": [1, 4]}),
        sampler="grid",
        objectives=parse_objectives(["min:cycles", "min:energy"]),
        budget=len(VARIANTS) * 2)
    result = campaign.run()

    print(render_journal(result.journal, width=60))
    print()

    frontier = result.frontier()
    best = result.best()
    print(f"{len(frontier)} non-dominated configuration(s) out of "
          f"{len(result.evaluations)} evaluated:")
    for evaluation in frontier:
        cycles = evaluation.objectives["cycles"]
        energy = evaluation.objectives["energy_pj_per_op"]
        print(f"  {evaluation.overrides}  ->  {cycles:.0f} cycles, "
              f"{energy:.1f} pJ/op")
    print(f"fastest overall: {best.overrides} "
          f"({best.objectives['cycles']:.0f} cycles)")

    # The paper's qualitative claim, now machine-checked: under full
    # contention (1 bin) the polling LR/SC point is never on the
    # frontier — some wait-queue variant dominates it.
    contended = [e for e in result.evaluations
                 if e.overrides["bins"] == 1]
    lrsc = next(e for e in contended if e.overrides["variant"] == "lrsc")
    dominators = [
        e for e in contended
        if e.objectives["cycles"] <= lrsc.objectives["cycles"]
        and e.objectives["energy_pj_per_op"]
        <= lrsc.objectives["energy_pj_per_op"]
        and e is not lrsc]
    assert dominators, "expected a wait-queue variant to dominate LR/SC"
    print(f"under full contention, LR/SC is dominated by "
          f"{[e.overrides['variant'] for e in dominators]}")


if __name__ == "__main__":
    main()
