#!/usr/bin/env python3
"""Live campaign monitoring walkthrough: watch a campaign from outside
its process, then reconcile the event log against the journal.

The campaign control plane (PR 9) writes three artifacts next to the
journal — an append-only ``events.jsonl`` (every state transition, one
JSON line each), a ``heartbeats/`` directory (one liveness file per
process), and the journal itself.  ``repro status`` reconstructs a
campaign's state purely from those files, which is what this example
demonstrates: the campaign below runs in a *subprocess* and the
monitoring loop never touches its interpreter — exactly the position
you are in when you ssh into a box mid-campaign, or when the campaign
is already dead.

Run:  python examples/monitor_campaign.py

Equivalent CLI:
  repro explore histogram --axis bins=1,2,4,8,16 \\
      --axis variant=lrsc,colibri --budget 10 \\
      --set updates_per_core=128 --events --out camp &
  repro status camp                 # one snapshot, human-readable
  repro status camp --follow        # poll until finished or dead
  repro status camp --json          # the same snapshot for scripts
  python -m repro.obs camp/events.jsonl   # schema gate (CI runs this)
"""

import json
import os
import subprocess
import sys
import tempfile
import time

import repro
from repro.obs import collect_status, render_status, validate_events
from repro.obs.eventlog import events_path, read_events

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

EXPLORE = [
    "explore", "histogram",
    "--axis", "bins=1,2,4,8,16",
    "--axis", "variant=lrsc,colibri",
    "--budget", "10",
    "--set", "updates_per_core=128",
    "--seed", "0",
    "--events",
]


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        camp = os.path.join(workdir, "camp")

        # -- the campaign runs in its own process ---------------------
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"] + EXPLORE + ["--out", camp],
            env=dict(os.environ, PYTHONPATH=SRC),
            stdout=subprocess.DEVNULL)

        # -- ...while this process watches the artifacts --------------
        snapshots = 0
        try:
            while proc.poll() is None:
                if os.path.exists(events_path(camp)):
                    status = collect_status(camp)
                    snapshots += 1
                    burn = (f"{status['paid']}/{status['budget']} paid"
                            if status["budget"] else "warming up")
                    print(f"poll {snapshots}: {status['state']:<12} "
                          f"{burn}, {status['free']} free, "
                          f"eta {status['eta_s'] or '?'} s")
                time.sleep(0.25)
        finally:
            proc.wait()
        assert proc.returncode == 0, "campaign failed"
        assert snapshots > 0, "campaign finished before the first poll"

        # -- final state: the full human-readable rendering -----------
        final = collect_status(camp)
        print()
        print(render_status(final))
        assert final["state"] == "finished (complete)", final["state"]
        assert final["fraction"] == 1.0

        # -- reconcile: event log vs journal, record by record --------
        records, warnings = read_events(events_path(camp))
        validate_events(records)      # what `python -m repro.obs` runs
        assert not warnings, warnings
        finished = [record for record in records
                    if record["event"] == "point_finished"]
        paid = sum(1 for record in finished if record["paid"])
        with open(os.path.join(camp, "journal.json")) as stream:
            journal = json.load(stream)
        evaluations = journal["evaluations"]
        assert len(finished) == len(evaluations), (
            len(finished), len(evaluations))
        assert paid == sum(1 for record in evaluations
                           if not record["cached"])
        print()
        print(f"event log reconciles with the journal: "
              f"{len(finished)} points finished ({paid} paid), "
              f"{len(records)} events, heartbeats cleaned up: "
              f"{not os.listdir(os.path.join(camp, 'heartbeats'))}")


if __name__ == "__main__":
    main()
