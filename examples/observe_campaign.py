#!/usr/bin/env python3
"""Platform-observability walkthrough: trace a campaign, prove the
cache pays on the second run.

PR 3 gave the *simulator* telemetry (what the cores and banks did
inside one run); this example exercises the *platform* observability
around it (what the harness did across many runs): nested spans
(campaign → schedule-batch → point → build/run/collect-stats) exported
as a Chrome trace, and a metrics registry counting cache hits, pool
reuse and campaign progress.  The payoff shown here: a re-run of the
same campaign against a warm result cache is answered entirely from
cache — and the counters prove it, instead of asking you to trust a
faster wall clock.

Run:  python examples/observe_campaign.py

Equivalent CLI:
  repro explore histogram --smoke --axis bins=1,4 \\
      --axis variant=lrsc,colibri --objective min:cycles --budget 4 \\
      --cache-dir cache --out camp --obs-trace trace.json
  python -m repro.obs trace.json          # schema gate (CI runs this)
  repro obs summary trace.json            # wall clock, hit rate, lanes
  repro obs summary camp/journal.json     # per-evaluation wall_ms view
  repro cache stats --cache-dir cache     # lifetime hit/miss rates
"""

import json
import os
import tempfile

from repro.dse import Campaign, SearchSpace, parse_objectives
from repro.eval.runner import ResultCache
from repro.obs import OBS, render_summary, validate_trace
from repro.scenarios import default_spec

AXES = {"bins": [1, 4], "variant": ["lrsc", "colibri"]}
BUDGET = 4


def run_campaign(cache, journal_file):
    campaign = Campaign(
        base=default_spec("histogram", num_cores=8).with_params(
            updates_per_core=2),
        space=SearchSpace.from_axes(AXES),
        sampler="grid",
        objectives=parse_objectives(["min:cycles"]),
        budget=BUDGET,
        cache=cache,
        journal_file=journal_file)
    return campaign.run()


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        cache = ResultCache(os.path.join(workdir, "cache"))
        trace_file = os.path.join(workdir, "trace.json")

        # -- cold run: every point simulates fresh, spans recorded ----
        OBS.enable()
        try:
            run_campaign(cache, os.path.join(workdir, "journal.json"))
            OBS.export_chrome_trace(trace_file)
            cold = dict(OBS.metrics.counters)
        finally:
            OBS.disable()
        with open(trace_file) as stream:
            document = json.load(stream)
        validate_trace(document)          # what `python -m repro.obs` runs
        cats = {event["cat"] for event in document["traceEvents"]
                if event["ph"] == "X"}
        assert {"campaign", "schedule", "point", "phase"} <= cats
        assert cold["campaign.paid"] == BUDGET
        assert cold.get("cache.hit", 0) == 0     # nothing to hit yet
        print(render_summary(trace_file))
        print()

        # -- warm run: same campaign, warm cache -> zero simulations --
        warm_journal = os.path.join(workdir, "journal-warm.json")
        OBS.enable()
        try:
            result = run_campaign(ResultCache(cache.path), warm_journal)
            warm = dict(OBS.metrics.counters)
        finally:
            OBS.disable()
        assert warm["cache.hit"] == BUDGET, warm
        assert "cache.miss" not in warm, warm
        assert warm["campaign.paid"] == 0
        assert warm["campaign.free"] == BUDGET
        assert all(e.cache_hit for e in result.evaluations)
        print(f"warm re-run: {warm['cache.hit']}/{BUDGET} points "
              f"answered from cache, 0 fresh simulations")
        print()
        print(render_summary(warm_journal))


if __name__ == "__main__":
    main()
