#!/usr/bin/env python3
"""Producer/consumer mailboxes with Mwait (paper §I and §III-C).

The paper motivates Mwait with "inefficiencies in core communication,
like producer/consumer interactions": a core that polls a shared flag
wastes energy and interconnect bandwidth; a core that sleeps with Mwait
costs nothing until the peer's store wakes it.

This example runs several independent producer→consumer pairs, each
communicating through a one-slot mailbox (a data word plus a flag
word).  The handshake needs a wait in *both* directions:

* the consumer waits for ``flag != 0``  (item available),
* the producer waits for ``flag != 1``  (mailbox free again),

and both waits are implemented twice — as a classic poll-with-backoff
loop, and as a single Mwait with the expected value closing the
check-then-sleep race.  Same items, same order; the Mwait run replaces
nearly all polling traffic with sleep cycles.

Run:  python examples/producer_consumer.py
"""

from repro import Machine, SystemConfig, VariantSpec, Status

PAIRS = 6
ITEMS = 12
PRODUCE_CYCLES = 140
CONSUME_CYCLES = 10
POLL_INTERVAL = 12


def wait_for_change(api, addr, expected, use_mwait):
    """Block until ``mem[addr] != expected``; return the new value."""
    if use_mwait:
        while True:
            resp = yield from api.mwait(addr, expected=expected)
            if resp.status is Status.QUEUE_FULL:
                value = yield from api.lw(addr)  # software fallback
                if value != expected:
                    return value
                yield from api.compute(POLL_INTERVAL)
                continue
            if resp.value != expected:
                return resp.value
    else:
        while True:
            value = yield from api.lw(addr)
            if value != expected:
                return value
            yield from api.compute(
                1 + api.rng.randrange(POLL_INTERVAL))


def build(use_mwait: bool):
    machine = Machine(SystemConfig.scaled(4 * PAIRS // 2),
                      VariantSpec.colibri(), seed=5)
    received = {pair: [] for pair in range(PAIRS)}
    mailboxes = []
    for pair in range(PAIRS):
        data = machine.allocator.alloc_interleaved(1)
        flag = machine.allocator.alloc_interleaved(1)
        mailboxes.append((data, flag))

    def producer(api, pair):
        data, flag = mailboxes[pair]
        for seq in range(ITEMS):
            yield from api.compute(PRODUCE_CYCLES)      # make the item
            yield from api.sw(data, pair * 1000 + seq)  # deposit
            yield from api.sw(flag, 1)                  # signal "full"
            if seq < ITEMS - 1:
                yield from wait_for_change(api, flag, 1, use_mwait)

    def consumer(api, pair):
        data, flag = mailboxes[pair]
        for _ in range(ITEMS):
            yield from wait_for_change(api, flag, 0, use_mwait)
            value = yield from api.lw(data)             # take
            yield from api.sw(flag, 0)                  # signal "free"
            received[pair].append(value)
            yield from api.compute(CONSUME_CYCLES)
            yield from api.retire()

    for pair in range(PAIRS):
        machine.load(2 * pair, lambda api, p=pair: producer(api, p))
        machine.load(2 * pair + 1, lambda api, p=pair: consumer(api, p))
    stats = machine.run()
    for pair in range(PAIRS):  # every item, in order, exactly once
        assert received[pair] == [pair * 1000 + s for s in range(ITEMS)]
    return stats


def main():
    polling = build(use_mwait=False)
    sleeping = build(use_mwait=True)

    print(f"{PAIRS} producer/consumer pairs, {ITEMS} items each, "
          f"slow producers\n")
    header = f"{'':26}{'polling':>12}{'Mwait':>12}"
    print(header)
    print("-" * len(header))
    for label, a, b in [
        ("cycles to drain", polling.cycles, sleeping.cycles),
        ("network messages", polling.network.total_messages,
         sleeping.network.total_messages),
        ("flag loads (polls)",
         sum(c.requests.get("lw", 0) for c in polling.cores),
         sum(c.requests.get("lw", 0) for c in sleeping.cores)),
        ("core cycles active", polling.total_active_cycles,
         sleeping.total_active_cycles),
        ("core cycles asleep", polling.total_sleep_cycles,
         sleeping.total_sleep_cycles),
    ]:
        print(f"{label:26}{a:>12}{b:>12}")
    saved = (1 - sleeping.network.total_messages
             / polling.network.total_messages) * 100
    print(f"\nMwait removes {saved:.0f}% of the message traffic and "
          f"converts polling into sleep.")


if __name__ == "__main__":
    main()
