#!/usr/bin/env python3
"""Watch the Colibri protocol work, message by message.

Reproduces the paper's Fig. 2 walkthrough on a live simulation: three
cores contend for one address; the trace shows core B and C enqueuing
behind A (SuccessorUpdate), A's SCwait dispatching the WakeUpRequest,
and the controller releasing the withheld responses in FIFO order.

Also demonstrates the analysis/report tooling:

* a filtered protocol trace printed to the terminal,
* a post-run summary (time split, hot banks, protocol share),
* a VCD waveform (``colibri_trace.vcd``) viewable in GTKWave.

Run:  python examples/protocol_trace.py
"""

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.trace import Tracer
from repro.engine.vcd import write_vcd
from repro.eval.analysis import summarize

CORES = 4
UPDATES = 2


def kernel(api):
    """Staggered LRwait/SCwait increments on one shared word."""
    for _ in range(UPDATES):
        yield from api.compute(1 + api.core_id * 7)  # stagger arrivals
        resp = yield from api.lrwait(COUNTER)
        yield from api.compute(3)  # hold the head briefly
        yield from api.scwait(COUNTER, resp.value + 1)
        yield from api.retire()


def main():
    global COUNTER
    tracer = Tracer(enabled=True)
    machine = Machine(SystemConfig.scaled(CORES), VariantSpec.colibri(),
                      seed=0, tracer=tracer)
    COUNTER = machine.allocator.alloc_interleaved(1)
    machine.load_range(range(3), kernel)  # three contenders, like Fig. 2
    stats = machine.run()
    assert machine.peek(COUNTER) == 3 * UPDATES

    print("Protocol trace (bank-side view of the Fig. 2 sequence):\n")
    interesting = ("lrwait", "scwait", "wakeup_request",
                   "colibri_alloc", "colibri_free")
    shown = 0
    for record in tracer.records:
        if record.kind in interesting:
            print(f"  {record}")
            shown += 1
            if shown >= 24:
                print("  ...")
                break

    print()
    print(summarize(stats, title="three-core Colibri contention"))

    vcd_path = "colibri_trace.vcd"
    changes = write_vcd(tracer, machine.config, vcd_path)
    print(f"\nWrote {changes} waveform changes to {vcd_path} "
          f"(open with GTKWave).")


if __name__ == "__main__":
    main()
