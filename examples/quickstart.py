#!/usr/bin/env python3
"""Quickstart: the LRSCwait primitives in 60 lines.

Builds a 16-core MemPool-like system twice — once with the classic
LR/SC unit, once with Colibri — runs the same contended fetch-and-add
workload on both, and prints what the paper's abstract promises: the
polling-free version is faster, quieter on the network, and spends its
waiting time asleep instead of retrying.

Run:  python examples/quickstart.py
"""

from repro import Machine, SystemConfig, VariantSpec, Status

CORES = 16
UPDATES = 16


def colibri_kernel(counter):
    """Fetch-and-add via LRwait/SCwait: no retry loop needed."""

    def kernel(api):
        for _ in range(UPDATES):
            resp = yield from api.lrwait(counter)       # sleep until served
            if resp.status is Status.QUEUE_FULL:        # bounded hardware
                continue
            yield from api.compute(1)                   # the "modify"
            yield from api.scwait(counter, resp.value + 1)
            yield from api.retire()

    return kernel


def lrsc_kernel(counter):
    """Fetch-and-add via LR/SC: retry with backoff until the SC wins."""

    def kernel(api):
        for _ in range(UPDATES):
            attempt = 0
            while True:
                value = yield from api.lr(counter)
                yield from api.compute(1)
                if (yield from api.sc(counter, value + 1)):
                    break
                window = min(1024, 8 << min(attempt, 8))
                yield from api.compute(api.rng.randrange(1, window))
                attempt += 1
            yield from api.retire()

    return kernel


def run(variant, kernel_builder):
    machine = Machine(SystemConfig.scaled(CORES), variant, seed=42)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(kernel_builder(counter))
    stats = machine.run()
    assert machine.peek(counter) == CORES * UPDATES  # atomicity held
    return stats


def main():
    lrsc = run(VariantSpec.lrsc(), lrsc_kernel)
    colibri = run(VariantSpec.colibri(), colibri_kernel)

    print(f"{CORES} cores incrementing one shared counter "
          f"{UPDATES}x each\n")
    header = f"{'':24}{'LRSC':>12}{'Colibri':>12}"
    print(header)
    print("-" * len(header))
    rows = [
        ("cycles to finish", lrsc.cycles, colibri.cycles),
        ("updates per cycle", round(lrsc.throughput, 4),
         round(colibri.throughput, 4)),
        ("failed SCs (retries)", lrsc.total_sc_failures,
         colibri.total_sc_failures),
        ("network messages", lrsc.network.total_messages,
         colibri.network.total_messages),
        ("core cycles active", lrsc.total_active_cycles,
         colibri.total_active_cycles),
        ("core cycles asleep", lrsc.total_sleep_cycles,
         colibri.total_sleep_cycles),
    ]
    for label, a, b in rows:
        print(f"{label:24}{a:>12}{b:>12}")
    print(f"\nColibri speedup: "
          f"{lrsc.cycles / colibri.cycles:.2f}x")


if __name__ == "__main__":
    main()
