#!/usr/bin/env python3
"""Regenerate every table and figure of the paper.

Default scale is CI-friendly (32-64 cores); pass ``--full`` for the
paper's 256-core MemPool instance (slow: tens of minutes of host time).
Use ``--only fig3`` (etc.) to run a single experiment, ``--jobs N`` to
shard sweep points across workers (identical results for any N), and
``--cache-dir`` to only re-simulate configurations that changed.

Run:  python examples/reproduce_paper.py [--full] [--only EXP] [--jobs N]
"""

import argparse
import sys
import time

from repro.eval import (
    ResultCache,
    jobs_argument,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
    scaling_table,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper scale: 256 cores, full sweeps")
    parser.add_argument("--only", default=None,
                        choices=["table1", "table2", "fig3", "fig4",
                                 "fig5", "fig6"],
                        help="run a single experiment")
    parser.add_argument("--jobs", type=jobs_argument, default=1,
                        help="parallel sweep workers (0 = all CPUs)")
    parser.add_argument("--cache-dir", default=None,
                        help="memoize finished points here")
    args = parser.parse_args(argv)

    cores = 256 if args.full else 64
    fig5_cores = 256 if args.full else 128
    updates = 8
    jobs = args.jobs
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    experiments = {
        "table1": lambda: run_table1().render() + "\n\n" + scaling_table(),
        "table2": lambda: run_table2(num_cores=cores,
                                     updates_per_core=updates, jobs=jobs,
                                     cache=cache).render(),
        "fig3": lambda: run_fig3(num_cores=cores, updates_per_core=updates,
                                 jobs=jobs, cache=cache).render(),
        "fig4": lambda: run_fig4(num_cores=cores, updates_per_core=updates,
                                 jobs=jobs, cache=cache).render(),
        "fig5": lambda: run_fig5(num_cores=fig5_cores, jobs=jobs,
                                 cache=cache).render(),
        "fig6": lambda: run_fig6(max_cores=cores, jobs=jobs,
                                 cache=cache).render(),
    }
    chosen = [args.only] if args.only else list(experiments)

    for name in chosen:
        start = time.time()
        print(f"=== {name} " + "=" * (70 - len(name)))
        print(experiments[name]())
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
