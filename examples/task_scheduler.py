#!/usr/bin/env python3
"""Work-stealing-style task scheduler on the concurrent queue (§V-C).

"Concurrent queues are widely used for task scheduling or
producer/consumer pipelines."  This example uses the MCS-style queue as
a central task pool: a dispatcher core enqueues tasks with varying
cycle costs, worker cores pull and execute them until a poison pill
arrives.  It runs the same schedule on the Colibri queue and on the
lock-based queue and reports makespan and worker fairness — the two
metrics Fig. 6 plots.

Run:  python examples/task_scheduler.py
"""

import random

from repro import Machine, SystemConfig, VariantSpec
from repro.algorithms.mcs_queue import ConcurrentQueue

CORES = 16
WORKERS = CORES - 1
NUM_TASKS = 60
POISON = 0xDEAD


def schedule(seed=21):
    """Deterministic task list: (task id, cycle cost)."""
    rng = random.Random(seed)
    return [(task_id, rng.randrange(20, 200))
            for task_id in range(NUM_TASKS)]


def build(method, variant):
    machine = Machine(SystemConfig.scaled(CORES), variant, seed=3)
    queue = ConcurrentQueue(machine, method,
                            nodes_per_core=NUM_TASKS + WORKERS + 2)
    tasks = schedule()
    executed = {}

    def dispatcher(api):
        for task_id, cost in tasks:
            # Encode (id, cost) in one word: id << 12 | cost.
            yield from queue.enqueue(api, (task_id << 12) | cost)
        for _ in range(WORKERS):
            yield from queue.enqueue(api, POISON << 12)

    def worker(api):
        while True:
            ok, word = yield from queue.dequeue(api)
            if not ok:
                # Polite empty-queue poll: hammering the queue (and, for
                # the lock-based variant, its lock) starves the
                # dispatcher trying to refill it.
                yield from api.compute(30 + api.rng.randrange(30))
                continue
            task_id, cost = word >> 12, word & 0xFFF
            if task_id == POISON:
                return
            yield from api.compute(cost)  # execute the task
            executed[task_id] = api.core_id
            yield from api.retire()

    machine.load(0, dispatcher)
    machine.load_range(range(1, CORES), worker)
    stats = machine.run()
    assert len(executed) == NUM_TASKS  # every task ran exactly once
    return stats, executed


def main():
    results = {}
    for label, method, variant in [
        ("Colibri queue", "wait", VariantSpec.colibri()),
        ("lock-based queue", "lock", VariantSpec.amo()),
        ("LRSC queue", "lrsc", VariantSpec.lrsc()),
    ]:
        stats, executed = build(method, variant)
        per_worker = [sum(1 for w in executed.values() if w == core)
                      for core in range(1, CORES)]
        results[label] = (stats.cycles, min(per_worker), max(per_worker))

    print(f"{NUM_TASKS} tasks over {WORKERS} workers through a shared "
          f"task queue\n")
    header = (f"{'scheduler':20}{'makespan':>10}{'min tasks':>11}"
              f"{'max tasks':>11}")
    print(header)
    print("-" * len(header))
    for label, (cycles, lo, hi) in results.items():
        print(f"{label:20}{cycles:>10}{lo:>11}{hi:>11}")
    colibri = results["Colibri queue"][0]
    lock = results["lock-based queue"][0]
    print(f"\nColibri queue finishes the schedule "
          f"{lock / colibri:.2f}x faster than the lock-based queue.")


if __name__ == "__main__":
    main()
