#!/usr/bin/env python3
"""Telemetry walkthrough: the polling storm, seen as a heatmap.

The paper's headline mechanism in one picture: run the same one-bin
contended histogram twice — classic LR/SC (cores poll and retry against
the hot bank) and Colibri (cores sleep in the distributed reservation
queue) — with telemetry probes attached, and render what each bank and
core did cycle-window by cycle-window.  The LR/SC heatmap shows the
retry storm hammering the hot bank for the whole run; the Colibri one
shows a short burst of enqueues and then silence, while the core
timeline fills up with sleep.

Run:  python examples/trace_contention.py

Equivalent CLI:
  repro trace histogram --variant lrsc --set method=lrsc --set bins=1
  repro trace histogram --variant colibri --set bins=1
"""

from repro.eval.reporting import render_ratio_line, render_table
from repro.scenarios import default_spec, run_scenario

CORES = 16
UPDATES = 12
PROBES = ["bank_contention", "core_timeline"]


def traced_histogram(variant: str, method: str):
    """One probed single-bin histogram run; returns the ScenarioResult."""
    spec = default_spec("histogram", num_cores=CORES, seed=1,
                        variant=variant).with_params(
        bins=1, updates_per_core=UPDATES, method=method)
    return run_scenario(spec, probes=list(PROBES))


def main() -> None:
    lrsc = traced_histogram("lrsc", "lrsc")
    colibri = traced_histogram("colibri", "wait")

    for label, result in (("LR/SC (polling + retries)", lrsc),
                          ("Colibri (sleeping waiters)", colibri)):
        print("=" * 72)
        print(label)
        print("=" * 72)
        print(result.telemetry.render(width=60))
        print()

    hot = lambda result: max(  # noqa: E731 - tiny accessor
        result.telemetry.probes["bank_contention"]["banks"],
        key=lambda bank: bank["accesses"])
    rows = []
    for label, result in (("lrsc", lrsc), ("colibri", colibri)):
        bank = hot(result)
        sleep = result.telemetry.probes["core_timeline"][
            "state_totals"].get("sleeping", 0)
        rows.append((label, result.cycles, bank["accesses"],
                     bank["failed_responses"], result.messages, sleep))
    print(render_table(
        ["variant", "cycles", "hot-bank accesses", "failed responses",
         "messages", "sleep cycles"],
        rows, title="the same work, two very different traffic shapes"))
    print()
    print(render_ratio_line("hot-bank traffic removed by Colibri",
                            hot(lrsc)["accesses"],
                            hot(colibri)["accesses"]))
    print(render_ratio_line("speedup", lrsc.cycles, colibri.cycles))

    # The numbers behind the pictures stay consistent with the
    # aggregate counters the figures are computed from.
    assert hot(lrsc)["accesses"] > hot(colibri)["accesses"]
    assert colibri.sleep_cycles > lrsc.sleep_cycles


if __name__ == "__main__":
    main()
