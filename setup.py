"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works as an editable-install fallback on
minimal environments whose setuptools lacks PEP 660 wheel support
(e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()
