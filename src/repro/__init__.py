"""LRSCwait / Colibri — a reproduction of the DATE 2024 paper.

*LRSCwait: Enabling Scalable and Efficient Synchronization in Manycore
Systems through Polling-Free and Retry-Free Operation* (Riedel,
Gantenbein, Ottaviano, Hoefler, Benini).

The package provides:

* a behavioural, cycle-approximate discrete-event simulator of a
  MemPool-like manycore system (:class:`~repro.machine.Machine`);
* an **open atomic-variant registry** (:mod:`repro.memory.variants`):
  the full family the paper evaluates — plain AMOs, MemPool's
  single-slot LR/SC, centralized LRSCwait\\ :sub:`q`, and the
  distributed **Colibri** queue with Mwait — as registered
  :class:`~repro.memory.variants.AtomicVariant` plugins with typed
  parameter schemas, adapter factories and area/energy cost-model
  hooks; user hardware designs register the same way
  (:func:`register_variant`) and flow through every CLI, table and
  design-space campaign;
* a software synchronization library running on the simulated cores
  (spin locks, LRSC lock, Colibri lock, Mwait-based MCS lock, barrier);
* concurrent algorithms (histogram, MCS queue, matmul workers) and the
  evaluation harness regenerating every table and figure of the paper
  (:mod:`repro.eval`);
* a declarative scenario API (:mod:`repro.scenarios`): serializable
  :class:`~repro.scenarios.spec.ScenarioSpec`\\ s, a workload registry,
  and ``run_scenario``/``sweep`` — the surface behind the
  ``repro run / list / sweep`` CLI;
* a pluggable telemetry subsystem (:mod:`repro.telemetry`): probes
  observing the kernel/cores/banks/interconnect through near-zero-cost
  hooks, cycle-resolved contention heatmaps and core timelines, JSON/
  CSV/VCD export — the surface behind ``repro trace``;
* a design-space exploration subsystem (:mod:`repro.dse`): declarative
  :class:`~repro.dse.space.SearchSpace`\\ s with constraints, pluggable
  samplers (grid, random, successive halving), metric/telemetry
  objectives, and budgeted :class:`~repro.dse.campaign.Campaign`\\ s
  with resumable journals and Pareto frontiers — the surface behind
  ``repro explore`` / ``repro frontier``.
"""

from .arch.config import LatencyConfig, SystemConfig
from .cores.api import CoreApi
from .engine.errors import (
    ConfigError,
    DeadlockError,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from .dse import (
    Campaign,
    CampaignResult,
    Objective,
    Sampler,
    SearchSpace,
    list_samplers,
    register_sampler,
)
from .engine.stats import SimStats
from .engine.trace import Tracer
from .engine.vcd import write_vcd
from .interconnect.messages import Op, Status
from .machine import Machine
from .memory.variants import (
    AtomicVariant,
    UnknownVariantError,
    VariantParam,
    VariantSpec,
    get_variant,
    list_variants,
    register_variant,
)
from .scenarios import (
    ScenarioSpec,
    Workload,
    build_machine,
    default_spec,
    list_workloads,
    register_workload,
    run_scenario,
    run_scenarios,
)
from .telemetry import (
    Probe,
    TelemetryReport,
    list_probes,
    register_probe,
)

__version__ = "1.7.0"

__all__ = [
    "LatencyConfig",
    "SystemConfig",
    "CoreApi",
    "ConfigError",
    "DeadlockError",
    "ProtocolViolation",
    "ReproError",
    "SimulationError",
    "SimStats",
    "Tracer",
    "write_vcd",
    "Op",
    "Status",
    "Machine",
    "AtomicVariant",
    "UnknownVariantError",
    "VariantParam",
    "VariantSpec",
    "get_variant",
    "list_variants",
    "register_variant",
    "ScenarioSpec",
    "Workload",
    "build_machine",
    "default_spec",
    "list_workloads",
    "register_workload",
    "run_scenario",
    "run_scenarios",
    "Probe",
    "TelemetryReport",
    "list_probes",
    "register_probe",
    "Campaign",
    "CampaignResult",
    "Objective",
    "Sampler",
    "SearchSpace",
    "list_samplers",
    "register_sampler",
    "__version__",
]
