"""Concurrent algorithms running on the simulated cores."""

from .histogram import Histogram, RMW_METHODS, create_shared_mcs_locks
from .matmul import Matmul
from .mcs_queue import (
    ConcurrentQueue,
    NodeArena,
    QUEUE_METHODS,
    queue_worker_kernel,
)

__all__ = [
    "Histogram",
    "RMW_METHODS",
    "create_shared_mcs_locks",
    "Matmul",
    "ConcurrentQueue",
    "NodeArena",
    "QUEUE_METHODS",
    "queue_worker_kernel",
]
