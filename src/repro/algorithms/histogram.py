"""Concurrent histogram (the workload of Figs. 3 and 4).

Every core performs ``updates_per_core`` atomic increments on a shared
array of ``num_bins`` bins, choosing a uniformly random bin per update.
Contention is set by the bin count: one bin means all cores serialize
on one word/bank; 1024 bins on the full system means nearly private
bins.  Bins are allocated row-aligned so bin *i* lives in bank
``i % num_banks`` — one bin per bank, like the paper's setup.

The update itself is expressed through every mechanism the paper
compares:

* ``"amo"`` — a single ``amoadd`` (Fig. 3/4 roofline);
* ``"lrsc"`` — LR/SC retry loop;
* ``"wait"`` — LRwait/SCwait (LRSCwait_q or Colibri, per the machine's
  variant);
* a lock class — acquire the bin's lock, plain load/add/store, release
  (Fig. 4's lock-based contenders).

``verify`` checks the *atomicity invariant*: the bins must sum to the
exact number of retired updates, whatever the interleaving.
"""

from __future__ import annotations

from typing import Optional

from ..cores.api import CoreApi
from ..machine import Machine
from ..sync.locks import MwaitMcsLock
from ..sync.rmw import fetch_add

#: Histogram update methods that need no lock object.
RMW_METHODS = ("amo", "lrsc", "wait")


class Histogram:
    """A shared bin array plus kernels that update it."""

    def __init__(self, machine: Machine, num_bins: int) -> None:
        self.machine = machine
        self.num_bins = num_bins
        self.base = machine.allocator.alloc_row_aligned(num_bins)
        self.word = machine.config.word_bytes
        self._locks: Optional[list] = None

    def bin_addr(self, index: int) -> int:
        """Byte address of one bin."""
        return self.base + index * self.word

    # -- lock setup (Fig. 4) ---------------------------------------------------

    def attach_locks(self, lock_cls, **kwargs) -> None:
        """Create one lock per bin (``lock_cls.create``-style classes)."""
        if lock_cls is MwaitMcsLock:
            self._locks = create_shared_mcs_locks(self.machine, self.num_bins)
        else:
            self._locks = [lock_cls.create(self.machine, **kwargs)
                           for _ in range(self.num_bins)]

    # -- kernels ---------------------------------------------------------------------

    def rmw_kernel(self, api: CoreApi, method: str, updates: int):
        """Updates through a lock-free RMW primitive."""
        for _ in range(updates):
            index = api.rng.randrange(self.num_bins)
            yield from fetch_add(api, self.bin_addr(index), 1, method)
            yield from api.retire()

    def lock_kernel(self, api: CoreApi, updates: int):
        """Updates through the per-bin locks set by :meth:`attach_locks`."""
        if self._locks is None:
            raise ValueError("attach_locks() must be called first")
        for _ in range(updates):
            index = api.rng.randrange(self.num_bins)
            lock = self._locks[index]
            addr = self.bin_addr(index)
            yield from lock.acquire(api)
            value = yield from api.lw(addr)
            yield from api.compute(1)
            yield from api.sw(addr, value + 1)
            yield from lock.release(api)
            yield from api.retire()

    def kernel_factory(self, method: str, updates: int):
        """Kernel factory for :meth:`Machine.load_all`.

        ``method`` is an RMW name or ``"lock"`` (after attach_locks).
        """
        if method == "lock":
            return lambda api: self.lock_kernel(api, updates)
        if method not in RMW_METHODS:
            raise ValueError(f"unknown histogram method {method!r}")
        return lambda api: self.rmw_kernel(api, method, updates)

    def flat_kernel_factory(self, method: str, updates: int):
        """Vectorized drop-in for :meth:`kernel_factory` (RMW only).

        Bit-identical to the scalar path — same commands, same cycle
        counts, same RNG draw order — just one flat generator frame per
        core instead of the nested ``fetch_add`` stack.  ``"lock"`` has
        no flat driver; use :meth:`kernel_factory`.
        """
        if method not in RMW_METHODS:
            raise ValueError(f"unknown histogram RMW method {method!r}")
        from .vectorized import flat_uniform_rmw
        return lambda api: flat_uniform_rmw(
            api, self.base, self.word, self.num_bins, updates, method)

    def flat_stream_factory(self, streams, method: str):
        """Vectorized kernel over per-core precomputed bin-index streams.

        ``streams[core_id]`` is the sequence of bin indices that core
        updates, in order (e.g. Zipf draws from a host RNG).  Bit-
        identical to looping ``fetch_add`` over the same stream.
        """
        if method not in RMW_METHODS:
            raise ValueError(f"unknown histogram RMW method {method!r}")
        from .vectorized import flat_stream_rmw
        addrs = [[self.bin_addr(index) for index in stream]
                 for stream in streams]
        return lambda api: flat_stream_rmw(api, addrs[api.core_id], method)

    # -- verification -------------------------------------------------------------------

    def counts(self) -> list:
        """Current bin values (simulation must be stopped)."""
        return self.machine.peek_array(self.base, self.num_bins)

    def verify(self, expected_total: int) -> None:
        """Assert the atomicity invariant: no update was ever lost."""
        total = sum(self.counts())
        if total != expected_total:
            raise AssertionError(
                f"histogram lost updates: {total} != {expected_total}")


def create_shared_mcs_locks(machine: Machine, count: int) -> list:
    """Build ``count`` MCS locks sharing one per-core node table.

    A core waits on at most one lock at a time, and an MCS node is
    never read again once its owner's ``release`` returns, so one node
    per core serves any number of locks — this keeps 1024 bin locks
    from needing 1024 × n_cores nodes.
    """
    stride = machine.config.num_banks * machine.config.word_bytes
    nodes = [machine.allocator.alloc_core_local(core_id, 2)
             for core_id in range(machine.config.num_cores)]
    locks = []
    for _ in range(count):
        tail = machine.allocator.alloc_interleaved(1)
        locks.append(MwaitMcsLock(tail, nodes, stride))
    return locks
