"""Matrix-multiplication worker kernel (the victim of Fig. 5).

Fig. 5 measures *interference*: cores running a matmul share the SPM
banks and interconnect with cores hammering atomics.  The matmul here
is a straightforward blocked GEMM over interleaved arrays — each MAC
performs two loads and two compute cycles, and each output element one
store — so its performance is bound by bank/interconnect availability,
which is exactly the resource the pollers' retry traffic steals.

Each worker owns a contiguous slice of output rows.  The kernel's
completion time (makespan over workers) is the experiment's metric.
"""

from __future__ import annotations

from ..cores.api import CoreApi
from ..machine import Machine


class Matmul:
    """C = A × B on shared interleaved arrays."""

    def __init__(self, machine: Machine, dim: int) -> None:
        self.machine = machine
        self.dim = dim
        self.word = machine.config.word_bytes
        self.a_base = machine.allocator.alloc_interleaved(dim * dim)
        self.b_base = machine.allocator.alloc_interleaved(dim * dim)
        self.c_base = machine.allocator.alloc_interleaved(dim * dim)

    def fill_inputs(self, seed: int = 7) -> None:
        """Deterministic small-integer inputs (host-side setup)."""
        import random
        rng = random.Random(seed)
        for index in range(self.dim * self.dim):
            self.machine.poke(self.a_base + index * self.word,
                              rng.randrange(8))
            self.machine.poke(self.b_base + index * self.word,
                              rng.randrange(8))

    def _addr(self, base: int, row: int, col: int) -> int:
        return base + (row * self.dim + col) * self.word

    def worker_kernel(self, api: CoreApi, rows) -> object:
        """Compute the given output rows (iterable of row indices)."""
        for row in rows:
            for col in range(self.dim):
                acc = 0
                for k in range(self.dim):
                    a = yield from api.lw(self._addr(self.a_base, row, k))
                    b = yield from api.lw(self._addr(self.b_base, k, col))
                    yield from api.compute(2)  # mul + add
                    acc += a * b
                yield from api.sw(self._addr(self.c_base, row, col), acc)
                yield from api.retire()

    def flat_worker_kernel(self, api: CoreApi, rows) -> object:
        """Vectorized drop-in for :meth:`worker_kernel`.

        Same command sequence and cycle costs, but the load commands are
        prebuilt arrays and the generator is a single flat frame.
        """
        from .vectorized import flat_matmul_kernel
        return flat_matmul_kernel(api, self, rows)

    def partition_rows(self, num_workers: int) -> list:
        """Split output rows round-robin across ``num_workers``."""
        return [range(worker, self.dim, num_workers)
                for worker in range(num_workers)]

    def verify(self) -> None:
        """Host-side check of the product (after the run)."""
        dim, word = self.dim, self.word
        a = [self.machine.peek(self.a_base + i * word)
             for i in range(dim * dim)]
        b = [self.machine.peek(self.b_base + i * word)
             for i in range(dim * dim)]
        c = [self.machine.peek(self.c_base + i * word)
             for i in range(dim * dim)]
        for row in range(dim):
            for col in range(dim):
                expected = sum(a[row * dim + k] * b[k * dim + col]
                               for k in range(dim))
                got = c[row * dim + col]
                if got != expected:
                    raise AssertionError(
                        f"C[{row}][{col}] = {got}, expected {expected}")
