"""Concurrent linked queue (the workload of Fig. 6).

"Concurrent queues are widely used for task scheduling or
producer/consumer pipelines" (§V-C).  The paper implements an MCS-style
linked queue with LRSC and with LRSCwait, plus a lock-based queue using
atomic adds; this module provides all three over the same node layout:

* nodes are two SPM words — ``next`` (0 terminates) and ``value``;
* ``tail`` holds the address of the last node, ``head`` the address of
  a *sentinel* whose ``next`` is the first real element (Michael &
  Scott layout, which makes enqueue and dequeue contend on different
  words);
* **enqueue** swaps the tail to the new node with a generic RMW, then
  links ``old_tail.next = node`` — the MCS enqueue;
* **dequeue** advances ``head`` to ``head.next`` with a generic RMW and
  reads the value from the new sentinel.

Nodes come from per-core arenas and are never recycled during a run,
which sidesteps ABA/reclamation entirely (a deliberate benchmark
simplification — the paper's runs are similarly bounded).

The ``method`` parameter selects the primitive: ``"lrsc"`` retries on
failed SCs with backoff; ``"wait"`` uses LRwait/SCwait and *must* close
every LRwait with an SCwait even when it observed an empty queue
(§III's pairing constraint); ``"lock"`` takes a test-and-set AMO lock
around plain accesses.
"""

from __future__ import annotations

from ..cores.api import CoreApi
from ..engine.errors import MemoryError_
from ..interconnect.messages import Status
from ..machine import Machine
from ..sync.backoff import DEFAULT_LRSC_BACKOFF, QUEUE_FULL_BACKOFF
from ..sync.locks import AmoSpinLock

#: Queue methods accepted by :class:`ConcurrentQueue`.
QUEUE_METHODS = ("lrsc", "wait", "lock")

#: Node field offsets in words.
NEXT, VALUE = 0, 1


class NodeArena:
    """Per-core bump arena of queue nodes (software-managed)."""

    def __init__(self, machine: Machine, core_id: int, capacity: int) -> None:
        self.word = machine.config.word_bytes
        self.capacity = capacity
        self.used = 0
        #: Nodes are interleaved-allocated: two consecutive words.
        self._bases = [machine.allocator.alloc_interleaved(2)
                       for _ in range(capacity)]

    def take(self) -> int:
        """Hand out the next never-used node's base address."""
        if self.used >= self.capacity:
            raise MemoryError_("node arena exhausted; size the workload "
                               "to ops_per_core <= arena capacity")
        base = self._bases[self.used]
        self.used += 1
        return base


class ConcurrentQueue:
    """A shared linked queue with pluggable synchronization."""

    def __init__(self, machine: Machine, method: str,
                 nodes_per_core: int) -> None:
        if method not in QUEUE_METHODS:
            raise ValueError(f"unknown queue method {method!r}")
        self.machine = machine
        self.method = method
        self.word = machine.config.word_bytes
        # head and tail land in different banks (row-aligned pair).
        base = machine.allocator.alloc_row_aligned(2)
        self.head_addr = base
        self.tail_addr = base + self.word
        # The initial sentinel.
        sentinel = machine.allocator.alloc_interleaved(2)
        machine.poke(sentinel + NEXT * self.word, 0)
        machine.poke(self.head_addr, sentinel)
        machine.poke(self.tail_addr, sentinel)
        self.arenas = [NodeArena(machine, core_id, nodes_per_core)
                       for core_id in range(machine.config.num_cores)]
        self.lock = (AmoSpinLock.create(machine)
                     if method == "lock" else None)

    # -- field helpers ----------------------------------------------------------

    def _next_addr(self, node: int) -> int:
        return node + NEXT * self.word

    def _value_addr(self, node: int) -> int:
        return node + VALUE * self.word

    # -- enqueue -------------------------------------------------------------------

    def enqueue(self, api: CoreApi, value: int):
        """Append ``value``; returns the node address used."""
        node = self.arenas[api.core_id].take()
        yield from api.sw(self._next_addr(node), 0)
        yield from api.sw(self._value_addr(node), value)
        if self.method == "lock":
            yield from self._enqueue_locked(api, node)
        else:
            old_tail = yield from self._swap_tail(api, node)
            yield from api.sw(self._next_addr(old_tail), node)
        return node

    def _enqueue_locked(self, api: CoreApi, node: int):
        assert self.lock is not None
        yield from self.lock.acquire(api)
        old_tail = yield from api.lw(self.tail_addr)
        yield from api.sw(self._next_addr(old_tail), node)
        yield from api.sw(self.tail_addr, node)
        yield from self.lock.release(api)

    def _swap_tail(self, api: CoreApi, node: int):
        """Atomic swap of the tail pointer via the selected primitive."""
        if self.method == "lrsc":
            attempt = 0
            while True:
                old = yield from api.lr(self.tail_addr)
                success = yield from api.sc(self.tail_addr, node)
                if success:
                    return old
                yield from api.compute(
                    DEFAULT_LRSC_BACKOFF.delay(api.rng, attempt))
                attempt += 1
        attempt = 0
        while True:  # "wait"
            resp = yield from api.lrwait(self.tail_addr)
            if resp.status is Status.QUEUE_FULL:
                yield from api.compute(
                    QUEUE_FULL_BACKOFF.delay(api.rng, attempt))
                attempt += 1
                continue
            success = yield from api.scwait(self.tail_addr, node)
            if success:
                return resp.value
            attempt += 1

    # -- dequeue ----------------------------------------------------------------------

    def dequeue(self, api: CoreApi):
        """Remove the oldest element; returns ``(ok, value)``.

        ``ok`` is ``False`` when the queue was (transiently) empty.
        """
        if self.method == "lock":
            result = yield from self._dequeue_locked(api)
            return result
        if self.method == "lrsc":
            result = yield from self._dequeue_lrsc(api)
            return result
        result = yield from self._dequeue_wait(api)
        return result

    def _dequeue_locked(self, api: CoreApi):
        assert self.lock is not None
        yield from self.lock.acquire(api)
        sentinel = yield from api.lw(self.head_addr)
        first = yield from api.lw(self._next_addr(sentinel))
        if first == 0:
            yield from self.lock.release(api)
            return (False, 0)
        yield from api.sw(self.head_addr, first)
        yield from self.lock.release(api)
        value = yield from api.lw(self._value_addr(first))
        return (True, value)

    def _dequeue_lrsc(self, api: CoreApi):
        attempt = 0
        while True:
            sentinel = yield from api.lr(self.head_addr)
            first = yield from api.lw(self._next_addr(sentinel))
            if first == 0:
                # Plain LR may be abandoned without an SC.
                return (False, 0)
            success = yield from api.sc(self.head_addr, first)
            if success:
                value = yield from api.lw(self._value_addr(first))
                return (True, value)
            yield from api.compute(
                DEFAULT_LRSC_BACKOFF.delay(api.rng, attempt))
            attempt += 1

    def _dequeue_wait(self, api: CoreApi):
        attempt = 0
        while True:
            resp = yield from api.lrwait(self.head_addr)
            if resp.status is Status.QUEUE_FULL:
                yield from api.compute(
                    QUEUE_FULL_BACKOFF.delay(api.rng, attempt))
                attempt += 1
                continue
            sentinel = resp.value
            first = yield from api.lw(self._next_addr(sentinel))
            if first == 0:
                # LRwait must always be closed: write back unchanged.
                yield from api.scwait(self.head_addr, sentinel)
                return (False, 0)
            success = yield from api.scwait(self.head_addr, first)
            if success:
                value = yield from api.lw(self._value_addr(first))
                return (True, value)
            attempt += 1

    # -- verification helpers -----------------------------------------------------------

    def drain_values(self) -> list:
        """Walk the list from the sentinel (post-run, host-side)."""
        values = []
        node = self.machine.peek(self.head_addr)
        while True:
            nxt = self.machine.peek(self._next_addr(node))
            if nxt == 0:
                return values
            values.append(self.machine.peek(self._value_addr(nxt)))
            node = nxt


def queue_worker_kernel(queue: ConcurrentQueue, api: CoreApi, ops: int,
                        think_cycles: int = 4):
    """Fig. 6 worker: alternate enqueue / dequeue, ``ops`` accesses.

    Each completed access (an enqueue, or a *successful* dequeue)
    retires one operation; empty dequeues retry after a short think.
    Values encode ``(core, sequence)`` so tests can check conservation.
    """
    sequence = 0
    for op_index in range(ops):
        if op_index % 2 == 0:
            value = api.core_id * 1_000_000 + sequence
            sequence += 1
            yield from queue.enqueue(api, value)
        else:
            while True:
                ok, _value = yield from queue.dequeue(api)
                if ok:
                    break
                yield from api.compute(think_cycles)
        yield from api.retire()
        yield from api.compute(think_cycles)
