"""Vectorized (flat) drivers for identical-program workloads.

The scalar kernels express one update as a stack of nested generators:
``kernel → fetch_add → lrsc_fetch_modify → api.lr`` is four live Python
frames, and every yielded command climbs the whole stack twice (down via
``send``, up via ``yield from``).  For the workloads where all cores run
the same program — histogram, histogram_zipf, matmul — that stack is
pure overhead: the command sequence is known up front, modulo the
data-dependent retry loops and RNG draws.

The drivers here collapse each per-core program into **one flat
generator** stepping through precomputed command arrays where the
sequence is static (AMO address streams, matmul load commands) and
inlining the retry state machines where it is not.  They are drop-in
kernel bodies behind the existing :class:`Workload` API and
**bit-identical to the scalar path** by construction:

* every command is yielded in exactly the scalar order with exactly the
  scalar cycle counts;
* RNG draws happen in the scalar sequence on the same per-core
  ``api.rng`` — in particular the LR/SC and QUEUE_FULL backoff draws
  *interleave* with the histogram's uniform bin draws, so those bin
  indices are drawn inline, never precomputed (the Zipf streams come
  from a separate host RNG and can be fully precomputed);
* shared command singletons (``Retire(1)``, ``Compute(1)``...) are safe
  because the core FSM only reads command fields.

``tests/scenarios/test_batch.py`` goldens each driver against the
scalar kernel it replaces, per RMW method.
"""

from __future__ import annotations

from ..cores.api import Compute, MemCmd, Retire
from ..interconnect.messages import Op, Status
from ..sync.backoff import DEFAULT_LRSC_BACKOFF, QUEUE_FULL_BACKOFF

#: Immutable-in-practice command singletons (the core reads, never writes).
RETIRE = Retire(1)
COMPUTE_1 = Compute(1)
COMPUTE_2 = Compute(2)

#: Methods the flat RMW drivers implement (``"lock"`` stays scalar).
FLAT_RMW_METHODS = ("amo", "lrsc", "wait")


def _amo_stream(addrs):
    """Array-stepping driver: the full command list exists before the
    first yield, so the simulated run is a bare ``for`` over it."""
    cmds = []
    append = cmds.append
    for addr in addrs:
        append(MemCmd(Op.AMO_ADD, addr, 1))
        append(RETIRE)
    for cmd in cmds:
        yield cmd


def _lrsc_stream(api, addrs):
    """Flat LR/SC retry loop over a precomputed address stream.

    Mirrors :func:`repro.sync.rmw.lrsc_fetch_modify` exactly: LR,
    one compute cycle, SC of old+1; on failure a backoff draw from
    ``api.rng`` and a compute of that many cycles.
    """
    rng = api.rng
    backoff = DEFAULT_LRSC_BACKOFF
    ok = Status.OK
    for addr in addrs:
        attempt = 0
        while True:
            resp = yield MemCmd(Op.LR, addr)
            yield COMPUTE_1
            resp = yield MemCmd(Op.SC, addr, resp.value + 1)
            if resp.status is ok:
                break
            delay = backoff.delay(rng, attempt)
            if delay > 0:
                yield Compute(delay)
            attempt += 1
        yield RETIRE


def _wait_stream(api, addrs):
    """Flat LRwait/SCwait loop over a precomputed address stream.

    Mirrors :func:`repro.sync.rmw.wait_fetch_modify` exactly, including
    the QUEUE_FULL retry with its randomized short wait.
    """
    rng = api.rng
    backoff = QUEUE_FULL_BACKOFF
    ok = Status.OK
    queue_full = Status.QUEUE_FULL
    for addr in addrs:
        attempt = 0
        while True:
            resp = yield MemCmd(Op.LRWAIT, addr)
            if resp.status is queue_full:
                delay = backoff.delay(rng, attempt)
                if delay > 0:
                    yield Compute(delay)
                attempt += 1
                continue
            old = resp.value
            yield COMPUTE_1
            resp = yield MemCmd(Op.SCWAIT, addr, old + 1)
            if resp.status is ok:
                break
            attempt += 1
        yield RETIRE


def flat_stream_rmw(api, addrs, method: str):
    """Fetch-add each address of ``addrs`` (in order) via ``method``.

    For streams known up front (Zipf draws from a host RNG, or AMO
    uniform draws — AMO never touches ``api.rng`` mid-run, so its bin
    indices may be drawn before the run without reordering anything).
    """
    if method == "amo":
        return _amo_stream(addrs)
    if method == "lrsc":
        return _lrsc_stream(api, addrs)
    if method == "wait":
        return _wait_stream(api, addrs)
    raise ValueError(f"no flat driver for RMW method {method!r}")


def flat_uniform_rmw(api, base: int, word: int, num_bins: int,
                     updates: int, method: str):
    """Uniform-random histogram updates, bin indices drawn inline.

    The scalar kernel draws one bin index from ``api.rng`` per update
    *between* the retry loops' backoff draws; the lrsc/wait flavours
    must therefore interleave identically.  Only AMO (no mid-run RNG
    use) may batch its draws up front.
    """
    rng = api.rng
    randrange = rng.randrange
    if method == "amo":
        return _amo_stream(
            [base + randrange(num_bins) * word for _ in range(updates)])

    if method == "lrsc":
        def kernel():
            backoff = DEFAULT_LRSC_BACKOFF
            ok = Status.OK
            for _ in range(updates):
                addr = base + randrange(num_bins) * word
                attempt = 0
                while True:
                    resp = yield MemCmd(Op.LR, addr)
                    yield COMPUTE_1
                    resp = yield MemCmd(Op.SC, addr, resp.value + 1)
                    if resp.status is ok:
                        break
                    delay = backoff.delay(rng, attempt)
                    if delay > 0:
                        yield Compute(delay)
                    attempt += 1
                yield RETIRE
        return kernel()

    if method == "wait":
        def kernel():
            backoff = QUEUE_FULL_BACKOFF
            ok = Status.OK
            queue_full = Status.QUEUE_FULL
            for _ in range(updates):
                addr = base + randrange(num_bins) * word
                attempt = 0
                while True:
                    resp = yield MemCmd(Op.LRWAIT, addr)
                    if resp.status is queue_full:
                        delay = backoff.delay(rng, attempt)
                        if delay > 0:
                            yield Compute(delay)
                        attempt += 1
                        continue
                    old = resp.value
                    yield COMPUTE_1
                    resp = yield MemCmd(Op.SCWAIT, addr, old + 1)
                    if resp.status is ok:
                        break
                    attempt += 1
                yield RETIRE
        return kernel()

    raise ValueError(f"no flat driver for RMW method {method!r}")


def flat_matmul_kernel(api, matmul, rows):
    """Flat GEMM worker: prebuilt load commands, runtime accumulation.

    The A-row and B-column load commands are built once per kernel and
    *reused* across iterations (the core only reads command fields);
    the store value is data-dependent, so SW commands are built inline.
    Command order and cycle costs match
    :meth:`repro.algorithms.matmul.Matmul.worker_kernel` exactly.
    """
    dim = matmul.dim
    word = matmul.word
    a_base, b_base, c_base = matmul.a_base, matmul.b_base, matmul.c_base
    lw = Op.LW
    b_cmds = [[MemCmd(lw, b_base + (k * dim + col) * word)
               for k in range(dim)]
              for col in range(dim)]
    for row in rows:
        a_cmds = [MemCmd(lw, a_base + (row * dim + k) * word)
                  for k in range(dim)]
        for col in range(dim):
            col_cmds = b_cmds[col]
            acc = 0
            for k in range(dim):
                resp_a = yield a_cmds[k]
                resp_b = yield col_cmds[k]
                yield COMPUTE_2  # mul + add
                acc += resp_a.value * resp_b.value
            yield MemCmd(Op.SW, c_base + (row * dim + col) * word, acc)
            yield RETIRE
