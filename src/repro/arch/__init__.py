"""System architecture: configuration, topology, address map, allocator."""

from .address_map import AddressMap
from .allocator import Allocator
from .config import LatencyConfig, SystemConfig
from .topology import DISTANCE_CLASSES, Topology

__all__ = [
    "AddressMap",
    "Allocator",
    "LatencyConfig",
    "SystemConfig",
    "DISTANCE_CLASSES",
    "Topology",
]
