"""Word-interleaved address-to-bank mapping.

MemPool interleaves the shared L1 word-wise across all banks so that
sequential accesses spread over the whole system.  The map here is the
same: word index ``w`` lives in bank ``w % num_banks`` at row
``w // num_banks``.

The inverse mapping (:meth:`AddressMap.address_of`) lets allocators
place data in a *specific* bank, which the workloads use to give each
core tile-local MCS nodes, exactly as bare-metal MemPool software does.
"""

from __future__ import annotations

from ..engine.errors import MemoryError_
from .config import SystemConfig


class AddressMap:
    """Maps byte addresses to (bank, row) and back."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.word_bytes = config.word_bytes
        self.num_banks = config.num_banks
        self.words_per_bank = config.words_per_bank
        self.memory_bytes = config.memory_bytes

    # -- forward mapping -------------------------------------------------------

    def check(self, addr: int) -> None:
        """Validate alignment and range of a byte address."""
        if addr % self.word_bytes:
            raise MemoryError_(
                f"misaligned access: 0x{addr:x} (word size {self.word_bytes})")
        if not 0 <= addr < self.memory_bytes:
            raise MemoryError_(
                f"address 0x{addr:x} outside SPM of {self.memory_bytes} bytes")

    def word_index(self, addr: int) -> int:
        """Global word index of a byte address."""
        self.check(addr)
        return addr // self.word_bytes

    def bank_of(self, addr: int) -> int:
        """Bank holding the given byte address."""
        return self.word_index(addr) % self.num_banks

    def row_of(self, addr: int) -> int:
        """Row (word offset inside its bank) of the given byte address."""
        return self.word_index(addr) // self.num_banks

    def locate(self, addr: int) -> tuple:
        """``(bank, row)`` of the given byte address."""
        word = self.word_index(addr)
        return word % self.num_banks, word // self.num_banks

    # -- inverse mapping ---------------------------------------------------------

    def address_of(self, bank: int, row: int) -> int:
        """Byte address stored at ``row`` of ``bank``."""
        if not 0 <= bank < self.num_banks:
            raise MemoryError_(f"bank {bank} out of range")
        if not 0 <= row < self.words_per_bank:
            raise MemoryError_(f"row {row} out of range")
        return (row * self.num_banks + bank) * self.word_bytes
