"""Simulated SPM allocator.

Bare-metal MemPool software places data deliberately: shared arrays are
interleaved across all banks, while per-core structures (MCS nodes,
private counters) live in banks local to the owning core's tile so the
frequent accesses stay at local latency.  Workloads in this repo need
the same control, so the allocator offers both placement styles:

* :meth:`Allocator.alloc_interleaved` — ``n`` consecutive words, which
  the word-interleaved :class:`~repro.arch.address_map.AddressMap`
  automatically spreads across banks;
* :meth:`Allocator.alloc_in_bank` / :meth:`Allocator.alloc_core_local`
  — words pinned to a chosen (or tile-local) bank.

Interleaved allocation grows from row 0 upward; pinned allocation grows
from the top row downward, so the two regions collide only when a bank
is genuinely full (raises :class:`~repro.engine.errors.MemoryError_`).
"""

from __future__ import annotations

from ..engine.errors import MemoryError_
from .address_map import AddressMap
from .config import SystemConfig
from .topology import Topology


class Allocator:
    """Bump allocator over the simulated SPM with placement control."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.address_map = AddressMap(config)
        self.topology = Topology(config)
        #: Next row used by interleaved allocation (shared low watermark).
        self._low_row = 0
        #: Residual words already handed out inside the current low row.
        self._low_word = 0
        #: Per-bank high watermark for pinned allocation (exclusive).
        self._high_row = [config.words_per_bank] * config.num_banks

    def reset(self) -> None:
        """Release everything (warm machine reuse): both watermarks
        return to their post-construction positions, so a re-run
        workload replays the identical allocation sequence."""
        self._low_row = 0
        self._low_word = 0
        self._high_row[:] = [self.config.words_per_bank] * self.config.num_banks

    # -- interleaved allocation ------------------------------------------------

    def alloc_interleaved(self, num_words: int) -> int:
        """Allocate ``num_words`` consecutive words; return base address.

        Consecutive words map to consecutive banks, spreading the array
        across the whole SPM like MemPool's heap.
        """
        if num_words < 1:
            raise MemoryError_("allocation size must be >= 1 word")
        num_banks = self.config.num_banks
        base_word = self._low_row * num_banks + self._low_word
        end_word = base_word + num_words
        self._low_row = end_word // num_banks
        self._low_word = end_word % num_banks
        self._check_collision()
        return base_word * self.config.word_bytes

    def alloc_row_aligned(self, num_words: int) -> int:
        """Like :meth:`alloc_interleaved` but starting at bank 0 of a row.

        Useful when a workload wants ``array[i]`` to land in bank
        ``i % num_banks`` exactly (histogram bins in Fig. 3/4 map one
        bin per bank this way for low bin counts).
        """
        if self._low_word:
            self._low_row += 1
            self._low_word = 0
        return self.alloc_interleaved(num_words)

    # -- pinned allocation --------------------------------------------------------

    def alloc_in_bank(self, bank_id: int, num_words: int = 1) -> int:
        """Allocate ``num_words`` rows in one bank; return address of first.

        The words are *vertically* adjacent (consecutive rows of the
        same bank), so their byte addresses differ by
        ``num_banks * word_bytes``.
        """
        if not 0 <= bank_id < self.config.num_banks:
            raise MemoryError_(f"bank {bank_id} out of range")
        if num_words < 1:
            raise MemoryError_("allocation size must be >= 1 word")
        top = self._high_row[bank_id] - num_words
        if top < 0:
            raise MemoryError_(f"bank {bank_id} exhausted")
        self._high_row[bank_id] = top
        self._check_collision()
        return self.address_map.address_of(bank_id, top)

    def alloc_core_local(self, core_id: int, num_words: int = 1) -> int:
        """Allocate in a bank of the core's own tile (round-robin inside)."""
        banks = self.topology.local_banks_of_core(core_id)
        bank = banks[core_id % len(banks)]
        return self.alloc_in_bank(bank, num_words)

    # -- bookkeeping -----------------------------------------------------------------

    def _check_collision(self) -> None:
        low = self._low_row + (1 if self._low_word else 0)
        if low > min(self._high_row):
            raise MemoryError_(
                "SPM exhausted: interleaved and pinned regions collided "
                f"(low row {low}, high row {min(self._high_row)})")

    @property
    def words_free(self) -> int:
        """Approximate free words remaining (pessimistic per-bank bound)."""
        low = self._low_row + (1 if self._low_word else 0)
        return sum(max(0, high - low) for high in self._high_row)
