"""System configuration.

The reference platform is MemPool (paper §V): 256 RISC-V cores grouped
into 64 tiles of 4 cores, 4 groups of 16 tiles, and 1024 SPM banks of
shared L1 (16 banks per tile).  Requests traverse a hierarchical
interconnect whose latency depends on whether the target bank sits in
the requesting core's tile, its group, or a remote group.

Everything is parameterizable so the test-suite and benchmarks can run
scaled-down instances (the paper's *shape* claims are scale-robust; see
DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..engine.errors import ConfigError


@dataclass(frozen=True)
class LatencyConfig:
    """One-way interconnect latencies and bank service time, in cycles.

    The defaults follow MemPool's published access latencies: a bank in
    the local tile responds within the cycle (modelled as 1 cycle each
    way), a bank in the same group costs a few cycles through the local
    interconnect, and a remote group goes through the global
    interconnect.
    """

    #: Core to a bank inside the same tile (one way).
    local_tile: int = 1
    #: Core to a bank in another tile of the same group (one way).
    same_group: int = 3
    #: Core to a bank in a remote group (one way).
    remote_group: int = 5
    #: Bank service occupancy per request (port busy time).
    bank_cycles: int = 1
    #: Extra cycles a Qnode needs to process/forward a message.
    qnode_cycles: int = 1
    #: Remote requests a tile's shared ingress port accepts per cycle.
    #: Traffic from other tiles to any bank of a tile serializes here —
    #: this is the resource a retry storm saturates and through which
    #: atomics interfere with unrelated workers (Fig. 5).  Tile-local
    #: accesses bypass it, like MemPool's local bank ports.
    tile_ingress_per_cycle: int = 1

    def validate(self) -> None:
        """Raise :class:`ConfigError` on non-positive latencies."""
        for name in ("local_tile", "same_group", "remote_group",
                     "bank_cycles", "qnode_cycles",
                     "tile_ingress_per_cycle"):
            if getattr(self, name) < 1:
                raise ConfigError(f"latency {name} must be >= 1")
        if not (self.local_tile <= self.same_group <= self.remote_group):
            raise ConfigError(
                "latencies must be monotone: local <= group <= global")


@dataclass(frozen=True)
class SystemConfig:
    """Shape and timing of the simulated manycore system."""

    num_cores: int = 256
    cores_per_tile: int = 4
    banks_per_tile: int = 16
    num_groups: int = 4
    #: Word size of the SPM in bytes (RV32 in MemPool).
    word_bytes: int = 4
    #: Capacity of each bank in words (1 MiB / 1024 banks / 4 B = 256).
    words_per_bank: int = 256
    latency: LatencyConfig = field(default_factory=LatencyConfig)

    # -- derived shape -------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        """Total tiles in the system."""
        return self.num_cores // self.cores_per_tile

    @property
    def tiles_per_group(self) -> int:
        """Tiles in each group."""
        return self.num_tiles // self.num_groups

    @property
    def num_banks(self) -> int:
        """Total SPM banks in the system."""
        return self.num_tiles * self.banks_per_tile

    @property
    def memory_words(self) -> int:
        """Total words of simulated SPM."""
        return self.num_banks * self.words_per_bank

    @property
    def memory_bytes(self) -> int:
        """Total bytes of simulated SPM."""
        return self.memory_words * self.word_bytes

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ConfigError` if bad."""
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.cores_per_tile < 1 or self.num_cores % self.cores_per_tile:
            raise ConfigError(
                f"num_cores={self.num_cores} must be a multiple of "
                f"cores_per_tile={self.cores_per_tile}")
        if self.num_groups < 1 or self.num_tiles % self.num_groups:
            raise ConfigError(
                f"num_tiles={self.num_tiles} must be a multiple of "
                f"num_groups={self.num_groups}")
        if self.banks_per_tile < 1:
            raise ConfigError("banks_per_tile must be >= 1")
        if self.word_bytes not in (4, 8):
            raise ConfigError("word_bytes must be 4 or 8")
        if self.words_per_bank < 1:
            raise ConfigError("words_per_bank must be >= 1")
        self.latency.validate()

    # -- canned configurations ------------------------------------------------

    @classmethod
    def mempool(cls) -> "SystemConfig":
        """The full 256-core, 1024-bank MemPool instance of the paper."""
        return cls()

    @classmethod
    def scaled(cls, num_cores: int, words_per_bank: int = 256,
               cores_per_tile: Optional[int] = None,
               banks_per_tile: Optional[int] = None) -> "SystemConfig":
        """A scaled-down MemPool, defaulting to the 4-cores/16-banks tile.

        ``cores_per_tile``/``banks_per_tile`` override the MemPool tile
        shape for systems whose core count is not a multiple of 4 (e.g.
        pipeline or barrier scenarios with odd stage counts).  Groups
        shrink with the system: 4 groups when the tile count divides
        evenly, otherwise 1.  Used by tests, CI benchmarks and the
        scenario specs.
        """
        if num_cores < 1:
            raise ConfigError(f"num_cores={num_cores} must be >= 1")
        if cores_per_tile is None:
            if num_cores % 4:
                raise ConfigError(
                    f"num_cores={num_cores} is not a multiple of the "
                    f"default cores_per_tile=4; pass cores_per_tile "
                    f"explicitly for odd shapes")
            cores_per_tile = 4
        elif cores_per_tile < 1 or num_cores % cores_per_tile:
            raise ConfigError(
                f"num_cores={num_cores} must be a positive multiple of "
                f"cores_per_tile={cores_per_tile}")
        if banks_per_tile is None:
            banks_per_tile = 16
        elif banks_per_tile < 1:
            raise ConfigError(
                f"banks_per_tile={banks_per_tile} must be >= 1")
        num_tiles = num_cores // cores_per_tile
        num_groups = 4 if num_tiles % 4 == 0 and num_tiles >= 4 else 1
        config = cls(num_cores=num_cores, cores_per_tile=cores_per_tile,
                     banks_per_tile=banks_per_tile, num_groups=num_groups,
                     words_per_bank=words_per_bank)
        config.validate()
        return config

    def with_latency(self, **kwargs) -> "SystemConfig":
        """Copy of this config with some latency fields replaced."""
        return replace(self, latency=replace(self.latency, **kwargs))
