"""Hierarchical MemPool topology: tiles, groups, and distance model.

The interconnect is a three-level hierarchy.  A request from a core to
a bank is classified as *local* (same tile), *group* (same group,
different tile) or *global* (different group); each class has a fixed
one-way latency from :class:`~repro.arch.config.LatencyConfig` and a hop
count used by the energy model (longer routes toggle more wires).
"""

from __future__ import annotations

from .config import SystemConfig

#: Distance class names, ordered near to far.
DISTANCE_CLASSES = ("local", "group", "global")


class Topology:
    """Distance and placement queries over a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self._cores_per_tile = config.cores_per_tile
        self._banks_per_tile = config.banks_per_tile
        self._tiles_per_group = config.tiles_per_group
        #: (core_tile, bank_tile) -> (class, latency, hops).  Distance
        #: depends only on the tile pair, so this stays small (#tiles²)
        #: and turns the per-message divisions and string compares of
        #: the naive path into one dict hit.
        self._route_cache: dict = {}

    # -- placement ---------------------------------------------------------

    def tile_of_core(self, core_id: int) -> int:
        """Tile index holding a core."""
        return core_id // self._cores_per_tile

    def tile_of_bank(self, bank_id: int) -> int:
        """Tile index holding a bank."""
        return bank_id // self._banks_per_tile

    def group_of_tile(self, tile_id: int) -> int:
        """Group index holding a tile."""
        return tile_id // self._tiles_per_group

    def cores_in_tile(self, tile_id: int) -> range:
        """Core ids located in the given tile."""
        start = tile_id * self._cores_per_tile
        return range(start, start + self._cores_per_tile)

    def banks_in_tile(self, tile_id: int) -> range:
        """Bank ids located in the given tile."""
        start = tile_id * self._banks_per_tile
        return range(start, start + self._banks_per_tile)

    def local_banks_of_core(self, core_id: int) -> range:
        """Bank ids in the same tile as the given core."""
        return self.banks_in_tile(self.tile_of_core(core_id))

    # -- distances ----------------------------------------------------------

    def route(self, core_id: int, bank_id: int) -> tuple:
        """``(distance_class, one-way latency, hops)`` for a pair.

        The single topology query of the message hot path: all three
        values come from one memoized tile-pair lookup.  A network
        model with different geometry overrides :meth:`_compute_route`.
        """
        key = (core_id // self._cores_per_tile,
               bank_id // self._banks_per_tile)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self._route_cache[key] = self._compute_route(*key)
        return cached

    def _compute_route(self, core_tile: int, bank_tile: int) -> tuple:
        """Uncached ``(class, latency, hops)`` for a tile pair.

        In a hierarchical crossbar like MemPool's, each cycle of
        latency corresponds to one switch stage, so hops and latency
        coincide; a model where they differ overrides this method and
        every consumer (stats, energy) follows.
        """
        lat = self.config.latency
        if core_tile == bank_tile:
            return ("local", lat.local_tile, lat.local_tile)
        if (core_tile // self._tiles_per_group
                == bank_tile // self._tiles_per_group):
            return ("group", lat.same_group, lat.same_group)
        return ("global", lat.remote_group, lat.remote_group)

    def distance_class(self, core_id: int, bank_id: int) -> str:
        """``"local"``, ``"group"`` or ``"global"`` for a core-bank pair."""
        return self.route(core_id, bank_id)[0]

    def latency(self, core_id: int, bank_id: int) -> int:
        """One-way message latency between a core and a bank, in cycles."""
        return self.route(core_id, bank_id)[1]

    def hop_count(self, core_id: int, bank_id: int) -> int:
        """Router hops for the energy model (== one-way latency here).

        Hops live in the same memoized route tuple as latency; a model
        where they differ overrides :meth:`_compute_route` and every
        consumer (message stats, Table II energy) follows.
        """
        return self.route(core_id, bank_id)[2]
