"""Hierarchical MemPool topology: tiles, groups, and distance model.

The interconnect is a three-level hierarchy.  A request from a core to
a bank is classified as *local* (same tile), *group* (same group,
different tile) or *global* (different group); each class has a fixed
one-way latency from :class:`~repro.arch.config.LatencyConfig` and a hop
count used by the energy model (longer routes toggle more wires).
"""

from __future__ import annotations

from .config import SystemConfig

#: Distance class names, ordered near to far.
DISTANCE_CLASSES = ("local", "group", "global")


class Topology:
    """Distance and placement queries over a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self._cores_per_tile = config.cores_per_tile
        self._banks_per_tile = config.banks_per_tile
        self._tiles_per_group = config.tiles_per_group

    # -- placement ---------------------------------------------------------

    def tile_of_core(self, core_id: int) -> int:
        """Tile index holding a core."""
        return core_id // self._cores_per_tile

    def tile_of_bank(self, bank_id: int) -> int:
        """Tile index holding a bank."""
        return bank_id // self._banks_per_tile

    def group_of_tile(self, tile_id: int) -> int:
        """Group index holding a tile."""
        return tile_id // self._tiles_per_group

    def cores_in_tile(self, tile_id: int) -> range:
        """Core ids located in the given tile."""
        start = tile_id * self._cores_per_tile
        return range(start, start + self._cores_per_tile)

    def banks_in_tile(self, tile_id: int) -> range:
        """Bank ids located in the given tile."""
        start = tile_id * self._banks_per_tile
        return range(start, start + self._banks_per_tile)

    def local_banks_of_core(self, core_id: int) -> range:
        """Bank ids in the same tile as the given core."""
        return self.banks_in_tile(self.tile_of_core(core_id))

    # -- distances ----------------------------------------------------------

    def distance_class(self, core_id: int, bank_id: int) -> str:
        """``"local"``, ``"group"`` or ``"global"`` for a core-bank pair."""
        core_tile = self.tile_of_core(core_id)
        bank_tile = self.tile_of_bank(bank_id)
        if core_tile == bank_tile:
            return "local"
        if self.group_of_tile(core_tile) == self.group_of_tile(bank_tile):
            return "group"
        return "global"

    def latency(self, core_id: int, bank_id: int) -> int:
        """One-way message latency between a core and a bank, in cycles."""
        cls = self.distance_class(core_id, bank_id)
        lat = self.config.latency
        if cls == "local":
            return lat.local_tile
        if cls == "group":
            return lat.same_group
        return lat.remote_group

    def hop_count(self, core_id: int, bank_id: int) -> int:
        """Router hops for the energy model (== one-way latency here).

        In a hierarchical crossbar like MemPool's, each cycle of latency
        corresponds to one switch stage, so hops and latency coincide.
        Kept as a separate method so a different network model can split
        them.
        """
        return self.latency(core_id, bank_id)
