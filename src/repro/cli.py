"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's experiments and the simulator's
diagnostics without writing a kernel:

* ``run`` — execute any registered scenario from a declarative spec
  (``repro run histogram --set bins=4 --cores 16``);
* ``list`` — the scenario registry with tunable parameters and their
  defaults (``--long`` for the full per-workload detail, ``--probes``
  for the telemetry probe registry, ``--variants`` for the
  atomic-memory variant registry with its area cost model);
* ``sweep`` — a cartesian sweep over spec/param axes
  (``repro sweep histogram --axis bins=1,4,16``), exportable with
  ``--out DIR --format json|csv``;
* ``explore`` — a budgeted design-space search campaign over axes with
  objectives, samplers and a resumable journal (``repro explore
  histogram --axis bins=1,4,16 --axis variant=lrsc,colibri
  --objective min:cycles --sampler halving --budget 12 --out DIR``);
* ``frontier`` — rankings and the Pareto frontier of a saved campaign
  journal (``repro frontier DIR/journal.json``);
* ``cache`` — result-cache maintenance (``repro cache stats|prune
  --cache-dir DIR [--max-entries N]``), with lifetime hit/miss rates
  from the directory's counters sidecar;
* ``obs`` — platform observability readback: ``repro obs summary
  FILE`` renders utilization/cache/throughput from an ``--obs-trace``
  Chrome trace (record one with ``repro sweep/explore/reproduce
  --obs-trace FILE [--profile OUT]``), a campaign journal, or an
  ``events.jsonl`` control-plane log;
* ``status`` — live campaign monitoring: ``repro status DIR
  [--follow]`` reconstructs progress, budget burn, ETA and per-worker
  liveness purely from the on-disk control plane an ``explore
  --events`` campaign maintains — running, finished or killed alike;
* ``trace`` — run a scenario with telemetry probes attached and render
  or export the diagnostics (``repro trace histogram --probe
  bank_contention --out report/ --format json``);
* ``histogram`` / ``queue`` / ``interference`` — the paper's workload
  shortcuts (now thin shims over scenario specs) with the run-summary
  diagnostics;
* ``area`` — Table I (model vs paper) and the scaling extrapolation;
* ``energy`` — Table II at a chosen scale;
* ``reproduce`` — every table and figure (``--full`` for 256 cores).

All commands are deterministic for a given ``--seed``, and every
measurement-producing command routes through
:mod:`repro.scenarios`, so ``--jobs``/``--cache-dir`` behave the same
everywhere.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .engine.errors import ReproError
from .eval.analysis import summarize
from .obs import OBS
from .eval.fig3 import run_fig3
from .eval.fig4 import run_fig4
from .eval.fig5 import run_fig5
from .eval.fig6 import run_fig6
from .eval.reporting import render_table
from .eval.runner import ResultCache, jobs_argument
from .eval.table1 import run_table1, scaling_table
from .eval.table2 import run_table2
from .scenarios import (
    apply_settings,
    default_spec,
    list_workloads,
    run_scenario,
)
from .scenarios.run import sweep as sweep_scenarios

#: Legacy CLI names for hardware variants -> scenario variant strings.
VARIANT_CHOICES = {
    "amo": "amo",
    "lrsc": "lrsc",
    "lrsc-table": "lrsc_table",
    "lrsc-bank": "lrsc_bank",
    "lrscwait1": "lrscwait:1",
    "lrscwait8": "lrscwait:8",
    "ideal": "lrscwait:ideal",
    "colibri": "colibri",
}

#: CLI names for histogram lock flavours (scenario ``lock`` param).
LOCK_CHOICES = ("amo", "lrsc", "colibri", "mcs")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=32,
                        help="number of cores (multiple of 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic workload seed")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    """Sweep-sharding options (commands that run many independent sims)."""
    parser.add_argument("--jobs", type=jobs_argument, default=1,
                        help="parallel simulation workers for sweeps "
                             "(0 = all CPUs; results are identical for "
                             "any value)")
    parser.add_argument("--cache-dir", default=None,
                        help="memoize finished points here; re-runs only "
                             "simulate configurations that changed")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N",
                        help="bound the cache directory at N entries "
                             "with LRU eviction (default: unbounded; "
                             "see also 'repro cache prune')")


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Platform-observability options (commands that run many points)."""
    parser.add_argument("--obs-trace", default=None, metavar="FILE",
                        help="record harness spans and metrics (cache "
                             "hits, pool reuse, points/sec) and export "
                             "them as Chrome trace-event JSON to FILE "
                             "(open in Perfetto or chrome://tracing; "
                             "summarize with 'repro obs summary FILE')")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="profile execution phases with cProfile "
                             "and dump the hottest phase's pstats to "
                             "FILE (requires --jobs 1)")


def _runner_options(args):
    """(jobs, cache) pair from parsed ``--jobs`` / ``--cache-dir``."""
    if not args.cache_dir:
        return args.jobs, None
    try:
        cache = ResultCache(args.cache_dir,
                            max_entries=getattr(args, "cache_max_entries",
                                                None))
    except OSError as exc:
        raise SystemExit(
            f"repro: cannot use --cache-dir {args.cache_dir!r}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"repro: --cache-max-entries: {exc}")
    return args.jobs, cache


def _parse_value(text: str):
    """A ``--set``/``--axis`` value: int, float, bool, none or string."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _parse_settings(pairs) -> dict:
    """``["k=v", ...]`` -> ``{k: parsed v}`` with error reporting."""
    settings = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro: --set expects KEY=VALUE, got {pair!r}")
        settings[key.strip()] = _parse_value(value.strip())
    return settings


def _parse_axes(pairs) -> dict:
    """``["k=v1,v2", ...]`` -> ``{k: [parsed v1, parsed v2]}``."""
    axes = {}
    for pair in pairs:
        key, sep, values = pair.partition("=")
        if not sep or not key or not values:
            raise SystemExit(
                f"repro: --axis expects KEY=V1,V2[,...], got {pair!r}")
        axes[key.strip()] = [_parse_value(v.strip())
                             for v in values.split(",")]
    return axes


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LRSCwait/Colibri manycore-synchronization simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser(
        "run", help="run one registered scenario from a declarative spec")
    runp.add_argument("scenario", help="registered workload name "
                                       "(see 'repro list')")
    runp.add_argument("--set", action="append", default=[],
                      dest="settings", metavar="KEY=VALUE",
                      help="override a spec field (cores, variant, seed, "
                           "mode, horizon, metrics, shape) or a workload "
                           "parameter; repeatable")
    runp.add_argument("--cores", type=int, default=None,
                      help="shorthand for --set cores=N")
    runp.add_argument("--variant", default=None,
                      help="variant string, e.g. colibri, lrscwait:half")
    runp.add_argument("--seed", type=int, default=None)
    runp.add_argument("--smoke", action="store_true",
                      help="apply the workload's tiny smoke parameters "
                           "(CI uses this on every registered scenario)")
    runp.add_argument("--show-spec", action="store_true",
                      help="also print the spec as canonical JSON")
    _add_jobs(runp)

    lst = sub.add_parser("list", help="registered scenarios and probes")
    lst.add_argument("--names", action="store_true",
                     help="names only, one per line (for scripting; "
                          "combines with --variants)")
    lst.add_argument("--long", action="store_true",
                     help="full per-scenario detail: every tunable "
                          "parameter with its default, spec-level "
                          "defaults, and smoke overrides")
    lst.add_argument("--probes", action="store_true",
                     help="list registered telemetry probes instead "
                          "(for 'repro trace --probe')")
    lst.add_argument("--samplers", action="store_true",
                     help="list registered search samplers instead "
                          "(for 'repro explore --sampler')")
    lst.add_argument("--variants", action="store_true",
                     help="list registered atomic-memory variants "
                          "instead: parameters, native method, and "
                          "modeled per-core area overhead (for "
                          "--variant / --set variant=...)")

    trace = sub.add_parser(
        "trace", help="run one scenario with telemetry probes attached")
    trace.add_argument("scenario", help="registered workload name "
                                        "(see 'repro list')")
    trace.add_argument("--probe", action="append", default=[],
                       dest="probes", metavar="NAME",
                       help="telemetry probe to attach (repeatable; "
                            "default: every registered probe; see "
                            "'repro list --probes')")
    trace.add_argument("--set", action="append", default=[],
                       dest="settings", metavar="KEY=VALUE",
                       help="spec/param override, as in 'repro run'")
    trace.add_argument("--cores", type=int, default=None,
                       help="shorthand for --set cores=N")
    trace.add_argument("--variant", default=None,
                       help="variant string, e.g. colibri, lrscwait:half")
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--smoke", action="store_true",
                       help="apply the workload's tiny smoke parameters")
    trace.add_argument("--window", type=int, default=None,
                       help="cycle-window width for windowed probes "
                            "(bank_contention; default 256)")
    trace.add_argument("--width", type=int, default=64,
                       help="character width of the ASCII heatmap/"
                            "timeline rendering")
    trace.add_argument("--out", default=None, metavar="DIR",
                       help="export the report into this directory "
                            "(created if missing)")
    trace.add_argument("--format", choices=("json", "csv", "vcd"),
                       default="json",
                       help="export format for --out: one JSON report, "
                            "one CSV per probe, or a VCD waveform of "
                            "the core-state timeline (needs the "
                            "core_timeline probe)")

    swp = sub.add_parser(
        "sweep", help="cartesian sweep of a scenario over axis values")
    swp.add_argument("scenario")
    swp.add_argument("--axis", action="append", required=True,
                     dest="axes", metavar="KEY=V1,V2,...",
                     help="axis to sweep; repeat for a cartesian grid")
    swp.add_argument("--set", action="append", default=[],
                     dest="settings", metavar="KEY=VALUE",
                     help="fixed overrides applied to every point")
    swp.add_argument("--cores", type=int, default=None)
    swp.add_argument("--variant", default=None)
    swp.add_argument("--seed", type=int, default=None)
    swp.add_argument("--out", default=None, metavar="DIR",
                     help="also export the sweep results into this "
                          "directory (created if missing)")
    swp.add_argument("--format", choices=("json", "csv"), default="json",
                     help="export format for --out: one JSON document "
                          "or one tidy CSV table")
    swp.add_argument("--batch", action="store_true",
                     help="run all points in one warm process, reusing "
                          "machines across points that share a shape/"
                          "variant/seed (bit-identical results; "
                          "incompatible with --jobs)")
    _add_jobs(swp)
    _add_obs(swp)

    explore = sub.add_parser(
        "explore", help="budgeted design-space search campaign "
                        "(samplers, objectives, Pareto frontier)")
    explore.add_argument("scenario", help="registered workload name "
                                          "(see 'repro list')")
    explore.add_argument("--axis", action="append", required=True,
                         dest="axes", metavar="KEY=V1,V2,...",
                         help="search axis (spec field or workload "
                              "param); repeat to span more dimensions")
    explore.add_argument("--constraint", action="append", default=[],
                         dest="constraints", metavar="EXPR",
                         help="boolean expression over axis keys that "
                              "prunes invalid combinations (e.g. "
                              "'bins <= cores'); repeatable")
    explore.add_argument("--objective", action="append", default=[],
                         dest="objectives", metavar="GOAL:METRIC",
                         help="optimization target, e.g. min:cycles, "
                              "max:throughput, min:energy; first is "
                              "primary, several build a Pareto "
                              "frontier (default: min:cycles)")
    explore.add_argument("--sampler", default="grid",
                         help="search strategy: grid, random, or "
                              "halving (see 'repro list --samplers')")
    explore.add_argument("--budget", type=int, required=True,
                         help="maximum number of *fresh* simulations; "
                              "cache hits, journal replays and repeat "
                              "proposals are free")
    explore.add_argument("--set", action="append", default=[],
                         dest="settings", metavar="KEY=VALUE",
                         help="fixed base-spec overrides, as in "
                              "'repro run'")
    explore.add_argument("--cores", type=int, default=None,
                         help="shorthand for --set cores=N")
    explore.add_argument("--variant", default=None,
                         help="base variant string (often an --axis "
                              "instead)")
    explore.add_argument("--seed", type=int, default=None,
                         help="seed for both the base spec and the "
                              "sampler's randomness")
    explore.add_argument("--smoke", action="store_true",
                         help="apply the workload's tiny smoke "
                              "parameters to the base spec (CI uses "
                              "this for the explore-smoke campaign)")
    explore.add_argument("--out", default=None, metavar="DIR",
                         help="campaign directory: the journal is "
                              "written (atomically, after every batch) "
                              "to DIR/journal.json")
    explore.add_argument("--resume", default=None, metavar="DIR",
                         help="resume the campaign journaled in DIR: "
                              "journaled evaluations replay without "
                              "re-simulating, then the search "
                              "continues")
    explore.add_argument("--top", type=int, default=10,
                         help="ranking rows to print")
    explore.add_argument("--width", type=int, default=56,
                         help="character width of the frontier plot")
    explore.add_argument("--batch", action="store_true",
                         help="evaluate each campaign batch in one warm "
                              "process with pooled machines (bit-"
                              "identical journal; incompatible with "
                              "--jobs)")
    explore.add_argument("--events", action="store_true",
                         help="write the campaign control plane next to "
                              "the journal: an append-only "
                              "events.jsonl of state transitions plus "
                              "per-process heartbeats, which is what "
                              "'repro status' reads (needs --out/"
                              "--resume)")
    _add_jobs(explore)
    _add_obs(explore)

    front = sub.add_parser(
        "frontier", help="rankings + Pareto frontier of a saved "
                         "campaign journal")
    front.add_argument("journal", help="journal.json file (or the "
                                       "campaign directory holding one)")
    front.add_argument("--top", type=int, default=10,
                       help="ranking rows to print")
    front.add_argument("--width", type=int, default=56,
                       help="character width of the frontier plot")

    cachep = sub.add_parser(
        "cache", help="result-cache maintenance (stats, LRU pruning)")
    cachep.add_argument("action", choices=("stats", "prune"),
                        help="'stats' reports entry count and bytes; "
                             "'prune' evicts least-recently-used "
                             "entries beyond --max-entries")
    cachep.add_argument("--cache-dir", required=True,
                        help="the cache directory to inspect or prune")
    cachep.add_argument("--max-entries", type=int, default=None,
                        help="entry bound for 'prune' (required there)")
    cachep.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON instead of the "
                             "table (footprint + lifetime counters)")

    hist = sub.add_parser("histogram",
                          help="contended histogram (Figs. 3/4 workload)")
    _add_common(hist)
    hist.add_argument("--variant", choices=sorted(VARIANT_CHOICES),
                      default="colibri")
    hist.add_argument("--method",
                      choices=["amo", "lrsc", "wait", "lock"],
                      default=None,
                      help="update method (default: variant's native)")
    hist.add_argument("--lock", choices=sorted(LOCK_CHOICES),
                      default="amo", help="lock flavour for --method lock")
    hist.add_argument("--bins", type=int, default=16)
    hist.add_argument("--updates", type=int, default=8,
                      help="updates per core")

    queue = sub.add_parser("queue",
                           help="concurrent queue (Fig. 6 workload)")
    _add_common(queue)
    queue.add_argument("--method", choices=["lrsc", "wait", "lock"],
                       default="wait")
    queue.add_argument("--ops", type=int, default=16,
                       help="queue accesses per core")

    interf = sub.add_parser("interference",
                            help="matmul under pollers (Fig. 5 point)")
    _add_common(interf)
    interf.add_argument("--variant", choices=sorted(VARIANT_CHOICES),
                        default="lrsc")
    interf.add_argument("--workers", type=int, default=4)
    interf.add_argument("--bins", type=int, default=1)

    sub.add_parser("area", help="Table I area model")

    energy = sub.add_parser("energy", help="Table II energy model")
    _add_common(energy)
    energy.add_argument("--updates", type=int, default=8)
    _add_jobs(energy)

    repro = sub.add_parser("reproduce",
                           help="every table and figure of the paper")
    repro.add_argument("--full", action="store_true",
                       help="paper scale (256 cores; slow)")
    _add_jobs(repro)
    _add_obs(repro)

    obsp = sub.add_parser(
        "obs", help="platform-observability artifacts (trace summaries)")
    obsp.add_argument("action", choices=("summary",),
                      help="'summary' renders utilization, cache and "
                           "throughput figures from an artifact")
    obsp.add_argument("file",
                      help="an --obs-trace Chrome trace JSON, a "
                           "campaign journal.json (wall_ms "
                           "attribution), or an events.jsonl control-"
                           "plane log")

    statusp = sub.add_parser(
        "status", help="live campaign status — progress, ETA, worker "
                       "liveness — reconstructed purely from the "
                       "on-disk control plane (event log + heartbeats "
                       "+ journal)")
    statusp.add_argument("path",
                         help="campaign directory, or its journal.json "
                              "/ events.jsonl")
    statusp.add_argument("--follow", action="store_true",
                         help="poll and re-render until the campaign "
                              "finishes or dies")
    statusp.add_argument("--interval", type=float, default=1.0,
                         help="seconds between --follow polls "
                              "(default 1)")
    statusp.add_argument("--timeout", type=float, default=None,
                         help="stop --follow after this many seconds "
                              "even if the campaign is still running")
    statusp.add_argument("--stale-after", type=float, default=None,
                         help="seconds of heartbeat silence before a "
                              "live worker is reported stale (default: "
                              "max(10, 4x its beat interval))")
    statusp.add_argument("--json", action="store_true", dest="as_json",
                         help="one machine-readable JSON snapshot "
                              "instead of the rendering")
    statusp.add_argument("--width", type=int, default=40,
                         help="character width of the progress bar")
    return parser


# -- scenario commands ---------------------------------------------------------


def _build_spec(args):
    """Layer defaults <- smoke <- flags <- --set into one spec."""
    from .scenarios import get_workload
    workload = get_workload(args.scenario)
    spec = default_spec(args.scenario)
    if getattr(args, "smoke", False):
        spec = apply_settings(spec, dict(workload.smoke))
    flags = {}
    if getattr(args, "cores", None) is not None:
        flags["cores"] = args.cores
    if getattr(args, "variant", None) is not None:
        flags["variant"] = args.variant
    if getattr(args, "seed", None) is not None:
        flags["seed"] = args.seed
    if flags:
        spec = apply_settings(spec, flags)
    spec = apply_settings(spec, _parse_settings(args.settings))
    spec.validate()
    return spec


def cmd_run(args) -> str:
    spec = _build_spec(args)
    jobs, cache = _runner_options(args)
    result = run_scenario(spec, jobs=jobs, cache=cache)
    rows = [("scenario", spec.workload),
            ("spec", spec.describe()),
            ("spec hash", spec.stable_hash()[:16])]
    rows.extend(sorted(result.scalars().items()))
    out = render_table(["field", "value"], rows,
                       title=f"scenario: {spec.workload}")
    if args.show_spec:
        out += "\n\nspec JSON:\n" + spec.to_json()
    return out


def cmd_list(args) -> str:
    from .telemetry import list_probes
    if args.variants:
        from .memory.variants import VariantSpec, list_variants
        from .power.area import TILE_CORES, variant_overhead_kge
        entries = list_variants()
        if args.names:
            # One *runnable* string per line: variants whose schema
            # requires an argument (lrscwait) get their example value,
            # so `for v in $(repro list --variants --names)` can feed
            # `repro run --set variant=$v` directly (the CI smoke loop).
            lines = []
            for name, plugin in entries:
                required = {key: schema.listing_value()
                            for key, schema in plugin.params.items()
                            if schema.required}
                lines.append(plugin.string(plugin.fill_defaults(required))
                             if required else name)
            return "\n".join(lines)
        reference_cores = 256                # the paper's full scale
        rows = []
        for name, plugin in entries:
            params = ", ".join(
                f"{key}={schema.listing_value()}"
                for key, schema in sorted(plugin.params.items()))
            variant = VariantSpec(name, params=plugin.listing_params())
            per_core = (variant_overhead_kge(variant, reference_cores)
                        / TILE_CORES)
            rows.append((name, plugin.description, params or "(none)",
                         plugin.native_method, f"{per_core:.2f}"))
        return render_table(
            ["variant", "description", "params (defaults)", "native",
             f"kGE/core @{reference_cores}"],
            rows,
            title=f"{len(rows)} registered atomic-memory variants "
                  f"(use: repro run <scenario> --variant "
                  f"<name[:params]>)")
    if args.probes:
        rows = [(name, cls.description) for name, cls in list_probes()]
        return render_table(["probe", "description"], rows,
                            title=f"{len(rows)} registered telemetry probes "
                                  f"(attach: repro trace <scenario> "
                                  f"--probe <name>)")
    if args.samplers:
        from .dse import list_samplers
        rows = [(name, cls.description) for name, cls in list_samplers()]
        return render_table(["sampler", "description"], rows,
                            title=f"{len(rows)} registered search samplers "
                                  f"(use: repro explore <scenario> "
                                  f"--sampler <name>)")
    entries = list_workloads()
    if args.names:
        return "\n".join(name for name, _workload in entries)
    if args.long:
        blocks = []
        for name, workload in entries:
            lines = [f"{name} — {workload.description}"]
            lines.append("  parameters (override with --set key=value):")
            if workload.params:
                for key, value in sorted(workload.params.items()):
                    lines.append(f"    {key} = {value!r}")
            else:
                lines.append("    (none)")
            if workload.spec_defaults:
                defaults = ", ".join(
                    f"{key}={value}" for key, value
                    in sorted(workload.spec_defaults.items()))
                lines.append(f"  spec defaults: {defaults}")
            if workload.smoke:
                smoke = ", ".join(f"{key}={value}" for key, value
                                  in sorted(workload.smoke.items()))
                lines.append(f"  smoke overrides: {smoke}")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)
    rows = []
    for name, workload in entries:
        params = ", ".join(f"{key}={value}" for key, value
                           in sorted(workload.params.items()))
        rows.append((name, workload.description, params or "(none)"))
    return render_table(["scenario", "description",
                         "tunable params (defaults)"],
                        rows,
                        title=f"{len(rows)} registered scenarios "
                              f"(run one: repro run <scenario> "
                              f"[--set param=value]; details: "
                              f"repro list --long)")


def cmd_sweep(args) -> str:
    from .engine.errors import ConfigError
    if not args.out and args.format != "json":
        raise ConfigError(f"--format {args.format} needs --out DIR")
    axes = _parse_axes(args.axes)
    base = _build_spec(args)
    jobs, cache = _runner_options(args)
    outcomes = sweep_scenarios(base, axes, jobs=jobs, cache=cache,
                               batch=args.batch)
    axis_keys = list(axes)
    metric_keys = sorted({key for _combo, result in outcomes
                          for key in result.metrics})
    headers = axis_keys + ["cycles", "throughput", "messages"] + metric_keys
    rows = []
    for combo, result in outcomes:
        row = [combo[key] for key in axis_keys]
        row.extend([result.cycles, result.throughput, result.messages])
        row.extend(result.metrics.get(key, "") for key in metric_keys)
        rows.append(row)
    title = (f"sweep: {base.workload} over "
             + " x ".join(f"{key}[{len(axes[key])}]" for key in axis_keys))
    out = render_table(headers, rows, title=title)
    if args.out:
        import os

        from .eval.export import (
            sweep_table,
            sweep_to_dict,
            write_csv,
            write_json,
        )
        if args.format == "json":
            path = write_json(os.path.join(args.out, "sweep.json"),
                              sweep_to_dict(base, axes, outcomes))
        else:
            csv_headers, csv_rows = sweep_table(axes, outcomes)
            path = write_csv(os.path.join(args.out, "sweep.csv"),
                             csv_headers, csv_rows)
        out += f"\n\nexported:\n  {path}"
    return out


def _make_probes(args) -> list:
    """Instantiate the requested (or all registered) telemetry probes."""
    import inspect

    from .telemetry import create_probe, get_probe, list_probes
    names = args.probes or [name for name, _cls in list_probes()]
    probes = []
    for name in names:
        options = {}
        if args.window is not None:
            accepts = inspect.signature(get_probe(name).__init__).parameters
            if "window" in accepts:
                options["window"] = args.window
        probes.append(create_probe(name, **options))
    return probes


def cmd_trace(args) -> str:
    from .engine.errors import ConfigError
    from .engine.vcd import write_vcd
    from .scenarios.run import run_scenario as run_probed
    spec = _build_spec(args)
    probes = _make_probes(args)
    # Export-option problems must surface *before* the (possibly long)
    # simulation runs, not after.
    if not args.out and args.format != "json":
        raise ConfigError(f"--format {args.format} needs --out DIR")
    if args.format == "vcd" and not any(p.name == "core_timeline"
                                        for p in probes):
        raise ConfigError("--format vcd needs the core_timeline probe "
                          "(add --probe core_timeline)")
    result = run_probed(spec, probes=probes)
    report = result.telemetry
    parts = [report.render(width=args.width)]
    if args.out:
        import os
        os.makedirs(args.out, exist_ok=True)
        if args.format == "json":
            written = [report.save_json(
                os.path.join(args.out, "telemetry.json"))]
        elif args.format == "csv":
            written = sorted(report.to_csv(args.out).values())
        else:  # vcd (core_timeline presence checked pre-run)
            section = report.probes["core_timeline"]
            core_states = {core["core"]: [tuple(span)
                                          for span in core["spans"]]
                           for core in section["cores"]}
            path = os.path.join(args.out, "trace.vcd")
            write_vcd(None, spec.system_config(), path,
                      core_states=core_states)
            written = [path]
        parts.append("exported:\n" + "\n".join(f"  {p}" for p in written))
    else:
        # No --out: the JSON report goes to stdout after the rendering,
        # so `repro trace <scenario>` alone already yields machine-
        # readable telemetry.
        parts.append("JSON report:\n" + report.to_json(indent=2))
    return "\n\n".join(parts)


# -- design-space exploration --------------------------------------------------


def cmd_explore(args) -> str:
    import os

    from .dse import (
        Campaign,
        SearchSpace,
        journal_path,
        load_journal,
        parse_objectives,
        render_journal,
    )
    from .engine.errors import ConfigError
    if args.resume and args.out and \
            os.path.realpath(args.resume) != os.path.realpath(args.out):
        raise ConfigError(
            "--resume DIR and --out DIR must agree (resume continues "
            "the campaign in place)")
    directory = args.out or args.resume
    base = _build_spec(args)
    space = SearchSpace.from_axes(_parse_axes(args.axes),
                                  tuple(args.constraints))
    objectives = parse_objectives(args.objectives or ["min:cycles"])
    jobs, cache = _runner_options(args)
    journal_file = journal_path(directory) if directory else None
    if args.out and not args.resume and journal_file \
            and os.path.exists(journal_file):
        raise ConfigError(
            f"{journal_file} already holds a campaign journal; pass "
            f"--resume {args.out} to continue it, or choose a fresh "
            f"--out directory (paid evaluations are never overwritten "
            f"silently)")
    resume_doc = None
    if args.resume:
        resume_file = journal_path(args.resume)
        if not os.path.exists(resume_file):
            raise ConfigError(
                f"--resume {args.resume!r}: no {resume_file} to resume "
                f"(start the campaign with --out first)")
        resume_doc = load_journal(resume_file)
    campaign = Campaign(
        base=base, space=space, sampler=args.sampler,
        objectives=objectives, budget=args.budget, seed=base.seed,
        jobs=jobs, cache=cache, journal_file=journal_file,
        resume=resume_doc, batch=args.batch)
    events_file = None
    if args.events:
        if not directory:
            raise ConfigError(
                "--events needs --out DIR (or --resume DIR): the event "
                "log lives next to the journal")
        from .obs.eventlog import events_path
        events_file = events_path(directory)
        OBS.open_events(events_file)
    try:
        result = campaign.run()
    finally:
        if events_file is not None:
            OBS.close_events()
    parts = [render_journal(result.journal, width=args.width,
                            top=args.top)]
    if journal_file:
        parts.append(f"journal: {journal_file}")
    if events_file is not None:
        parts.append(f"events: {events_file} (inspect with "
                     f"'repro status {directory}')")
    if result.status == "budget":
        if directory:
            parts.append(f"budget exhausted after {result.paid} paid "
                         f"evaluations; continue with "
                         f"'repro explore ... --resume {directory}' "
                         f"and a larger --budget")
        else:
            parts.append(f"budget exhausted after {result.paid} paid "
                         f"evaluations; no journal was written — "
                         f"re-run with --out DIR (and a larger "
                         f"--budget) to make the campaign resumable")
    return "\n\n".join(parts)


def cmd_frontier(args) -> str:
    import os

    from .dse import journal_path, load_journal, render_journal
    path = args.journal
    if os.path.isdir(path):
        path = journal_path(path)
    journal = load_journal(path)
    return render_journal(journal, width=args.width, top=args.top)


def cmd_cache(args) -> str:
    import os

    from .engine.errors import ConfigError
    if not os.path.isdir(args.cache_dir):
        raise ConfigError(
            f"no cache directory at {args.cache_dir!r}")
    cache = ResultCache(args.cache_dir)
    removed = None
    if args.action == "prune":
        if args.max_entries is None:
            raise ConfigError("cache prune needs --max-entries N")
        if args.max_entries < 0:
            raise ConfigError(
                f"--max-entries must be >= 0, got {args.max_entries}")
        removed = cache.prune(args.max_entries)
        # Persist the eviction count so future 'stats' runs see it.
        cache.flush_counters()
    stats = cache.stats()
    if args.as_json:
        import json as json_module
        lifetime = cache.lifetime_stats()
        looked = lifetime["hits"] + lifetime["misses"]
        document = {
            "path": stats["path"],
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "evicted": removed,
            "lifetime": lifetime,
            "lifetime_hit_rate": (lifetime["hits"] / looked
                                  if looked else None),
        }
        return json_module.dumps(document, indent=2, sort_keys=True)
    rows = [("path", stats["path"]),
            ("entries", stats["entries"]),
            ("bytes", stats["bytes"])]
    if removed is not None:
        rows.append(("evicted (LRU)", removed))
    lifetime = cache.lifetime_stats()
    looked = lifetime["hits"] + lifetime["misses"]
    rows.extend([
        ("lifetime hits", lifetime["hits"]),
        ("lifetime misses", lifetime["misses"]),
        ("lifetime stores", lifetime["stores"]),
        ("lifetime evictions", lifetime["evictions"]),
        ("lifetime hit rate",
         f"{100.0 * lifetime['hits'] / looked:.1f}%" if looked
         else "n/a"),
    ])
    return render_table(["field", "value"], rows,
                        title=f"result cache {args.action}")


def cmd_obs(args) -> str:
    from .obs.summary import render_summary
    return render_summary(args.file)


def cmd_status(args) -> str:
    from .engine.errors import ConfigError
    from .obs.status import collect_status, follow, render_status
    if args.as_json:
        if args.follow:
            raise ConfigError(
                "--json emits one snapshot; drop --follow (poll "
                "'repro status --json' yourself instead)")
        import json as json_module
        status = collect_status(args.path, stale_after=args.stale_after)
        return json_module.dumps(status, indent=2, sort_keys=True)
    if args.follow:
        status = follow(args.path, interval=args.interval,
                        timeout=args.timeout,
                        stale_after=args.stale_after, width=args.width)
        return f"follow: stopped ({status['state']})"
    status = collect_status(args.path, stale_after=args.stale_after)
    return render_status(status, width=args.width)


# -- legacy workload shortcuts (spec shims) ------------------------------------


def cmd_histogram(args) -> str:
    spec = default_spec("histogram").override(
        num_cores=args.cores,
        variant=VARIANT_CHOICES[args.variant],
        seed=args.seed)
    variant = spec.variant_spec()
    # Record the concrete method (and the lock only when one is used)
    # so the spec's stable_hash reflects what actually runs, aligned
    # with the figure runners' histogram_spec identities.
    method = args.method or variant.native_method
    params = {"bins": args.bins, "updates_per_core": args.updates,
              "method": method}
    if method == "lock":
        params["lock"] = args.lock
    spec = spec.with_params(**params)
    result = run_scenario(spec)
    pj = result.metrics["pj_per_op"]
    title = (f"histogram: {variant.label()}/{method}, {args.cores} cores, "
             f"{args.bins} bins ({pj:.0f} pJ/op)")
    return summarize(result.stats, title=title)


def cmd_queue(args) -> str:
    variant = {"lrsc": "lrsc", "wait": "colibri", "lock": "amo"}[args.method]
    spec = default_spec("queue").override(
        num_cores=args.cores, variant=variant, seed=args.seed,
    ).with_params(method=args.method, ops_per_core=args.ops)
    result = run_scenario(spec)
    return summarize(result.stats, title=(f"queue: {args.method}, "
                                          f"{args.cores} cores"))


def cmd_interference(args) -> str:
    spec = default_spec("interference").override(
        num_cores=args.cores,
        variant=VARIANT_CHOICES[args.variant],
        seed=args.seed,
    ).with_params(
        method=spec_method(VARIANT_CHOICES[args.variant], args.cores),
        workers=args.workers,
        bins=args.bins)
    result = run_scenario(spec)
    point = result.point
    rows = [
        ("pollers : workers", f"{point.num_pollers}:{point.num_workers}"),
        ("bins", point.num_bins),
        ("baseline cycles", point.baseline_cycles),
        ("interfered cycles", point.interfered_cycles),
        ("relative throughput", round(point.relative_throughput, 4)),
    ]
    return render_table(["metric", "value"], rows,
                        title=f"interference: {spec.variant_spec().label()}")


def spec_method(variant_text: str, num_cores: int) -> str:
    """The native RMW method of a variant string (poller flavour)."""
    from .scenarios.spec import parse_variant
    return parse_variant(variant_text, num_cores).native_method


# -- paper tables/figures ------------------------------------------------------


def cmd_area(_args) -> str:
    from .eval.table1 import variant_area_table
    return (run_table1().render() + "\n\n" + scaling_table()
            + "\n\n" + variant_area_table())


def cmd_energy(args) -> str:
    jobs, cache = _runner_options(args)
    return run_table2(num_cores=args.cores, updates_per_core=args.updates,
                      jobs=jobs, cache=cache).render()


def cmd_reproduce(args) -> str:
    cores = 256 if args.full else 64
    jobs, cache = _runner_options(args)
    parts = [
        run_table1().render(),
        run_table2(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig3(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig4(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig5(num_cores=256 if args.full else 128, jobs=jobs,
                 cache=cache).render(),
        run_fig6(max_cores=cores, jobs=jobs, cache=cache).render(),
    ]
    return "\n\n".join(parts)


COMMANDS = {
    "run": cmd_run,
    "list": cmd_list,
    "sweep": cmd_sweep,
    "explore": cmd_explore,
    "frontier": cmd_frontier,
    "cache": cmd_cache,
    "obs": cmd_obs,
    "status": cmd_status,
    "trace": cmd_trace,
    "histogram": cmd_histogram,
    "queue": cmd_queue,
    "interference": cmd_interference,
    "area": cmd_area,
    "energy": cmd_energy,
    "reproduce": cmd_reproduce,
}


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "obs_trace", None)
    profile_file = getattr(args, "profile", None)
    observing = bool(trace_file or profile_file)
    try:
        if profile_file and getattr(args, "jobs", 1) != 1:
            from .engine.errors import ConfigError
            raise ConfigError(
                "--profile needs --jobs 1 (cProfile cannot follow "
                "worker processes)")
        if observing:
            OBS.enable(profile=bool(profile_file))
        try:
            out = COMMANDS[args.command](args)
            notes = []
            if trace_file:
                notes.append(f"obs trace: "
                             f"{OBS.export_chrome_trace(trace_file)}")
            if profile_file:
                phase = OBS.dump_profile(profile_file)
                notes.append(f"profile ({phase or 'no phase ran'}): "
                             f"{profile_file}"
                             if phase else "profile: no phase ran, "
                                           "nothing dumped")
            if notes:
                out += "\n\n" + "\n".join(notes)
            print(out)
        finally:
            if observing:
                OBS.disable()
    except ReproError as exc:
        print(f"repro: {exc}")
        return 2
    return 0
