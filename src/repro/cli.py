"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's experiments and the simulator's
diagnostics without writing a kernel:

* ``histogram`` — run the contended-histogram workload on any variant
  and print the run summary (throughput, time split, hot banks);
* ``queue`` — run the concurrent-queue workload and print throughput
  plus per-core fairness;
* ``interference`` — one Fig. 5 point: matmul slowdown under pollers;
* ``area`` — Table I (model vs paper) and the scaling extrapolation;
* ``energy`` — Table II at a chosen scale;
* ``reproduce`` — every table and figure (``--full`` for 256 cores).

All commands are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .algorithms.histogram import Histogram
from .algorithms.mcs_queue import ConcurrentQueue, queue_worker_kernel
from .arch.config import SystemConfig
from .eval.analysis import summarize
from .eval.fig3 import run_fig3
from .eval.fig4 import run_fig4
from .eval.fig5 import run_fig5
from .eval.fig6 import run_fig6
from .eval.reporting import render_table
from .eval.runner import ResultCache, jobs_argument
from .eval.table1 import run_table1, scaling_table
from .eval.table2 import run_table2
from .machine import Machine
from .memory.variants import VariantSpec
from .power.energy import EnergyModel
from .sync.locks import (
    AmoSpinLock,
    ColibriSpinLock,
    LrscSpinLock,
    MwaitMcsLock,
)
from .workloads.interference import run_interference

#: CLI names for hardware variants.
VARIANT_CHOICES = {
    "amo": VariantSpec.amo,
    "lrsc": VariantSpec.lrsc,
    "lrsc-table": VariantSpec.lrsc_table,
    "lrsc-bank": VariantSpec.lrsc_bank,
    "lrscwait1": lambda: VariantSpec.lrscwait(1),
    "lrscwait8": lambda: VariantSpec.lrscwait(8),
    "ideal": VariantSpec.lrscwait_ideal,
    "colibri": VariantSpec.colibri,
}

#: CLI names for histogram lock flavours.
LOCK_CHOICES = {
    "amo": AmoSpinLock,
    "lrsc": LrscSpinLock,
    "colibri": ColibriSpinLock,
    "mcs": MwaitMcsLock,
}

#: Default update method per variant kind when none is given.
DEFAULT_METHODS = {
    "amo": "amo",
    "lrsc": "lrsc",
    "lrsc_table": "lrsc",
    "lrsc_bank": "lrsc",
    "lrscwait": "wait",
    "colibri": "wait",
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=32,
                        help="number of cores (multiple of 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic workload seed")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    """Sweep-sharding options (commands that run many independent sims)."""
    parser.add_argument("--jobs", type=jobs_argument, default=1,
                        help="parallel simulation workers for sweeps "
                             "(0 = all CPUs; results are identical for "
                             "any value)")
    parser.add_argument("--cache-dir", default=None,
                        help="memoize finished points here; re-runs only "
                             "simulate configurations that changed")


def _runner_options(args):
    """(jobs, cache) pair from parsed ``--jobs`` / ``--cache-dir``."""
    if not args.cache_dir:
        return args.jobs, None
    try:
        cache = ResultCache(args.cache_dir)
    except OSError as exc:
        raise SystemExit(
            f"repro: cannot use --cache-dir {args.cache_dir!r}: {exc}")
    return args.jobs, cache


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LRSCwait/Colibri manycore-synchronization simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    hist = sub.add_parser("histogram",
                          help="contended histogram (Figs. 3/4 workload)")
    _add_common(hist)
    hist.add_argument("--variant", choices=sorted(VARIANT_CHOICES),
                      default="colibri")
    hist.add_argument("--method",
                      choices=["amo", "lrsc", "wait", "lock"],
                      default=None,
                      help="update method (default: variant's native)")
    hist.add_argument("--lock", choices=sorted(LOCK_CHOICES),
                      default="amo", help="lock flavour for --method lock")
    hist.add_argument("--bins", type=int, default=16)
    hist.add_argument("--updates", type=int, default=8,
                      help="updates per core")

    queue = sub.add_parser("queue",
                           help="concurrent queue (Fig. 6 workload)")
    _add_common(queue)
    queue.add_argument("--method", choices=["lrsc", "wait", "lock"],
                       default="wait")
    queue.add_argument("--ops", type=int, default=16,
                       help="queue accesses per core")

    interf = sub.add_parser("interference",
                            help="matmul under pollers (Fig. 5 point)")
    _add_common(interf)
    interf.add_argument("--variant", choices=sorted(VARIANT_CHOICES),
                        default="lrsc")
    interf.add_argument("--workers", type=int, default=4)
    interf.add_argument("--bins", type=int, default=1)

    sub.add_parser("area", help="Table I area model")

    energy = sub.add_parser("energy", help="Table II energy model")
    _add_common(energy)
    energy.add_argument("--updates", type=int, default=8)
    _add_jobs(energy)

    repro = sub.add_parser("reproduce",
                           help="every table and figure of the paper")
    repro.add_argument("--full", action="store_true",
                       help="paper scale (256 cores; slow)")
    _add_jobs(repro)
    return parser


def _variant(args) -> VariantSpec:
    return VARIANT_CHOICES[args.variant]()


def cmd_histogram(args) -> str:
    variant = _variant(args)
    method = args.method or DEFAULT_METHODS[variant.kind]
    machine = Machine(SystemConfig.scaled(args.cores), variant,
                      seed=args.seed)
    histogram = Histogram(machine, args.bins)
    if method == "lock":
        histogram.attach_locks(LOCK_CHOICES[args.lock])
    machine.load_all(histogram.kernel_factory(method, args.updates))
    stats = machine.run()
    histogram.verify(args.cores * args.updates)
    energy = EnergyModel().evaluate(stats)
    title = (f"histogram: {variant.label()}/{method}, {args.cores} cores, "
             f"{args.bins} bins ({energy.pj_per_op:.0f} pJ/op)")
    return summarize(stats, title=title)


def cmd_queue(args) -> str:
    variant = {"lrsc": VariantSpec.lrsc(), "wait": VariantSpec.colibri(),
               "lock": VariantSpec.amo()}[args.method]
    machine = Machine(SystemConfig.scaled(args.cores), variant,
                      seed=args.seed)
    queue = ConcurrentQueue(machine, args.method,
                            nodes_per_core=args.ops // 2 + 2)
    machine.load_all(lambda api: queue_worker_kernel(queue, api, args.ops))
    stats = machine.run()
    return summarize(stats, title=(f"queue: {args.method}, "
                                   f"{args.cores} cores"))


def cmd_interference(args) -> str:
    variant = _variant(args)
    method = DEFAULT_METHODS[variant.kind]
    result = run_interference(SystemConfig.scaled(args.cores), variant,
                              method, args.workers, args.bins,
                              seed=args.seed)
    rows = [
        ("pollers : workers", f"{result.num_pollers}:{result.num_workers}"),
        ("bins", result.num_bins),
        ("baseline cycles", result.baseline_cycles),
        ("interfered cycles", result.interfered_cycles),
        ("relative throughput", round(result.relative_throughput, 4)),
    ]
    return render_table(["metric", "value"], rows,
                        title=f"interference: {variant.label()}")


def cmd_area(_args) -> str:
    return run_table1().render() + "\n\n" + scaling_table()


def cmd_energy(args) -> str:
    jobs, cache = _runner_options(args)
    return run_table2(num_cores=args.cores, updates_per_core=args.updates,
                      jobs=jobs, cache=cache).render()


def cmd_reproduce(args) -> str:
    cores = 256 if args.full else 64
    jobs, cache = _runner_options(args)
    parts = [
        run_table1().render(),
        run_table2(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig3(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig4(num_cores=cores, jobs=jobs, cache=cache).render(),
        run_fig5(num_cores=256 if args.full else 128, jobs=jobs,
                 cache=cache).render(),
        run_fig6(max_cores=cores, jobs=jobs, cache=cache).render(),
    ]
    return "\n\n".join(parts)


COMMANDS = {
    "histogram": cmd_histogram,
    "queue": cmd_queue,
    "interference": cmd_interference,
    "area": cmd_area,
    "energy": cmd_energy,
    "reproduce": cmd_reproduce,
}


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    print(COMMANDS[args.command](args))
    return 0
