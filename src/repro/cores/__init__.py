"""Core model: harts, the kernel command API, and Colibri Qnodes."""

from .api import Compute, CoreApi, MemCmd, Retire
from .core import Core
from .qnode import Qnode

__all__ = ["Compute", "CoreApi", "MemCmd", "Retire", "Core", "Qnode"]
