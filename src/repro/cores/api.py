"""The software-facing instruction API.

Kernels — the "bare-metal programs" of this simulator — are Python
generator functions.  They *yield* command objects and the core FSM
executes them with cycle costs, exactly like an in-order RV32IMA core
executes an instruction stream:

* :class:`Compute` — ``n`` cycles of ALU work (IPC 1);
* :class:`MemCmd` — one memory instruction; the core blocks (stalls or
  sleeps) until the response arrives;
* :class:`Retire` — zero-cost marker counting one completed
  application-level operation (a histogram update, a queue access);
  this feeds the throughput y-axes of Figs. 3, 4 and 6.

:class:`CoreApi` wraps the raw commands in ergonomic helpers used with
``yield from``::

    def my_kernel(api):
        value = yield from api.lw(addr)
        yield from api.compute(3)
        yield from api.sw(addr, value + 1)
        yield from api.retire()

The API also enforces the software-visible rules of the LRSCwait
extension: :meth:`CoreApi.lrwait` returns the raw response so callers
must handle :data:`Status.QUEUE_FULL`, while :meth:`CoreApi.scwait`
reports success as a bool like RISC-V's SC rd value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..interconnect.messages import MemResponse, Op, Status


@dataclass(slots=True)
class Compute:
    """Execute ``cycles`` of computation (no memory traffic)."""

    cycles: int


@dataclass(slots=True)
class Retire:
    """Count ``count`` completed application-level operations."""

    count: int = 1


@dataclass(slots=True)
class MemCmd:
    """One memory instruction to issue."""

    op: Op
    addr: int
    value: int = 0
    expected: Optional[int] = None


class CoreApi:
    """Instruction helpers handed to every kernel."""

    def __init__(self, core_id: int, num_cores: int, seed: int = 0) -> None:
        self.core_id = core_id
        self.num_cores = num_cores
        #: Per-core deterministic RNG (workload address streams).
        self.rng = random.Random((seed << 20) ^ core_id)

    def reseed(self, seed: int) -> None:
        """Rewind the RNG to its post-construction stream (warm reuse)."""
        self.rng.seed((seed << 20) ^ self.core_id)

    # -- plain memory ---------------------------------------------------------

    def lw(self, addr: int):
        """Load word; returns the value."""
        resp = yield MemCmd(Op.LW, addr)
        return resp.value

    def sw(self, addr: int, value: int):
        """Store word."""
        yield MemCmd(Op.SW, addr, value)

    # -- single-instruction atomics ------------------------------------------------

    def amo_add(self, addr: int, value: int):
        """Atomic fetch-and-add; returns the previous value."""
        resp = yield MemCmd(Op.AMO_ADD, addr, value)
        return resp.value

    def amo_swap(self, addr: int, value: int):
        """Atomic swap; returns the previous value."""
        resp = yield MemCmd(Op.AMO_SWAP, addr, value)
        return resp.value

    def amo_and(self, addr: int, value: int):
        """Atomic AND; returns the previous value."""
        resp = yield MemCmd(Op.AMO_AND, addr, value)
        return resp.value

    def amo_or(self, addr: int, value: int):
        """Atomic OR; returns the previous value."""
        resp = yield MemCmd(Op.AMO_OR, addr, value)
        return resp.value

    def amo_xor(self, addr: int, value: int):
        """Atomic XOR; returns the previous value."""
        resp = yield MemCmd(Op.AMO_XOR, addr, value)
        return resp.value

    def amo_max(self, addr: int, value: int):
        """Atomic signed max; returns the previous value."""
        resp = yield MemCmd(Op.AMO_MAX, addr, value)
        return resp.value

    def amo_min(self, addr: int, value: int):
        """Atomic signed min; returns the previous value."""
        resp = yield MemCmd(Op.AMO_MIN, addr, value)
        return resp.value

    # -- LR/SC (baseline) --------------------------------------------------------------

    def lr(self, addr: int):
        """Load-reserved; returns the value."""
        resp = yield MemCmd(Op.LR, addr)
        return resp.value

    def sc(self, addr: int, value: int):
        """Store-conditional; returns ``True`` on success."""
        resp = yield MemCmd(Op.SC, addr, value)
        return resp.status is Status.OK

    # -- LRSCwait extension ----------------------------------------------------------------

    def lrwait(self, addr: int):
        """Load-reserved-wait; returns the full :class:`MemResponse`.

        The response arrives only when this core reaches the head of
        the reservation queue — the core sleeps until then.  Callers
        must check for :data:`Status.QUEUE_FULL` on bounded hardware.
        """
        resp = yield MemCmd(Op.LRWAIT, addr)
        return resp

    def scwait(self, addr: int, value: int):
        """Store-conditional-wait; returns ``True`` on success."""
        resp = yield MemCmd(Op.SCWAIT, addr, value)
        return resp.status is Status.OK

    def mwait(self, addr: int, expected: int):
        """Sleep until ``addr`` differs from ``expected``; returns the
        observed value (or the full response's value on QUEUE_FULL —
        callers on bounded hardware should re-check and fall back to
        polling; see :class:`MemResponse.status`)."""
        resp = yield MemCmd(Op.MWAIT, addr, expected=expected)
        return resp

    # -- non-memory ---------------------------------------------------------------------------

    def compute(self, cycles: int):
        """Burn ``cycles`` of ALU time."""
        if cycles > 0:
            yield Compute(cycles)

    def retire(self, count: int = 1):
        """Mark ``count`` application-level operations as completed."""
        yield Retire(count)
