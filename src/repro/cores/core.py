"""The core model: an in-order, blocking RV32IMA-style hart.

Each core drives one kernel coroutine.  The FSM has three states whose
durations are accounted separately because the energy model prices them
differently (paper Table II: the whole point of LRSCwait is converting
*active polling* cycles into *sleep* cycles):

* ``ACTIVE`` — executing compute instructions or issuing a request;
* ``STALLED`` — blocked on an ordinary memory response (short, bounded
  by the interconnect round trip plus bank queueing);
* ``SLEEPING`` — parked on a withheld LRwait/Mwait response; the core
  is clock-gated and produces zero traffic until woken.

Issue timing: every memory instruction costs one active cycle, after
which the request enters the network; the kernel resumes the cycle the
response arrives.  Compute commands run at IPC 1.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..engine.errors import KernelError, ProtocolViolation
from ..engine.simulator import Simulator
from ..engine.stats import CoreStats
from ..interconnect.messages import MemRequest, MemResponse, Op, Status, WAIT_OPS
from ..interconnect.network import Network
from ..arch.address_map import AddressMap
from .api import Compute, MemCmd, Retire
from .qnode import Qnode

#: FSM state labels.
IDLE, ACTIVE, STALLED, SLEEPING, FINISHED = (
    "idle", "active", "stalled", "sleeping", "finished")


class Core:
    """One simulated hart plus its Qnode."""

    def __init__(self, core_id: int, sim: Simulator, network: Network,
                 address_map: AddressMap, stats: CoreStats) -> None:
        self.core_id = core_id
        self.sim = sim
        self.network = network
        self.address_map = address_map
        self.stats = stats
        # The hub object is stable for the simulator's lifetime, so the
        # hot paths below can cache it (one load + branch when off).
        self._telemetry = sim.telemetry
        # The Qnode needs qnode_cycles - 1 extra cycles to process and
        # forward a WakeUpRequest (the first cycle overlaps the event
        # that triggered it, so the default of 1 adds nothing).
        qnode_delay = address_map.config.latency.qnode_cycles - 1
        if qnode_delay > 0:
            def send_wakeup(msg, _delay=qnode_delay):
                sim.schedule(_delay, network.send_wakeup, arg=msg)
        else:
            send_wakeup = network.send_wakeup
        self.qnode = Qnode(core_id, send_wakeup, self._send_stalled_wait)
        self.state = IDLE
        self._kernel: Optional[Generator] = None
        self._outstanding: Optional[MemRequest] = None
        self._wait_started = 0
        self.finish_cycle: Optional[int] = None
        network.register_core(core_id, self.deliver_response)
        network.register_qnode(core_id, self.qnode.on_successor_update)

    def reset(self) -> None:
        """Detach the kernel and return to ``IDLE`` (warm machine reuse).

        The state is assigned directly rather than through
        :meth:`_set_state`: a reset is bookkeeping between runs, not a
        simulated transition, so it must not emit trace or telemetry
        events.  Per-core counters live in :class:`CoreStats`, reset
        separately by the owning machine.
        """
        self.state = IDLE
        self._kernel = None
        self._outstanding = None
        self._wait_started = 0
        self.finish_cycle = None
        self.qnode.reset()

    # -- kernel control -----------------------------------------------------

    def load(self, kernel: Generator) -> None:
        """Attach a kernel coroutine; call before the simulation starts."""
        if self._kernel is not None:
            raise KernelError(f"core {self.core_id} already has a kernel")
        self._kernel = kernel
        self._set_state(ACTIVE)

    def start(self) -> None:
        """Schedule the first instruction at the current cycle."""
        if self._kernel is None:
            return
        self.sim.schedule(0, self._resume)

    def _resume(self) -> None:
        """Bound re-entry callback: scheduling it allocates no closure."""
        self._advance(None)

    @property
    def finished(self) -> bool:
        """True when the kernel ran to completion."""
        return self.state == FINISHED

    @property
    def blocked_description(self) -> Optional[str]:
        """Human-readable blockage info for deadlock reports."""
        if self.state in (STALLED, SLEEPING) and self._outstanding is not None:
            req = self._outstanding
            return (f"core {self.core_id} {self.state} on {req.op.value} "
                    f"@0x{req.addr:x} since cycle {self._wait_started}")
        return None

    # -- execution loop ---------------------------------------------------------

    def _advance(self, send_value) -> None:
        """Feed the kernel until it blocks on memory or time."""
        assert self._kernel is not None
        while True:
            try:
                cmd = self._kernel.send(send_value)
            except StopIteration:
                self._finish()
                return
            except ProtocolViolation:
                raise
            except Exception as exc:  # surface kernel bugs with context
                raise KernelError(
                    f"kernel on core {self.core_id} raised "
                    f"{type(exc).__name__}: {exc}") from exc
            send_value = None
            if isinstance(cmd, Compute):
                if cmd.cycles <= 0:
                    continue
                self.stats.active_cycles += cmd.cycles
                self.stats.instructions += cmd.cycles
                self.sim.schedule(cmd.cycles, self._resume)
                return
            if isinstance(cmd, Retire):
                self.stats.ops_completed += cmd.count
                continue
            if isinstance(cmd, MemCmd):
                self._issue(cmd)
                return
            raise KernelError(
                f"core {self.core_id}: kernel yielded {cmd!r}, expected "
                f"Compute/Retire/MemCmd")

    def _finish(self) -> None:
        self._set_state(FINISHED)
        self.finish_cycle = self.sim.now

    def _set_state(self, state: str) -> None:
        """State transition with tracing/telemetry hooks (VCD, timelines)."""
        if self.state != state:
            self.state = state
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.log(self.sim.now, f"core{self.core_id}",
                           "core_state", state)
            cb = self._telemetry.on_core_state
            if cb is not None:
                cb(self.sim.now, self.core_id, state)

    # -- memory issue ----------------------------------------------------------------

    def _issue(self, cmd: MemCmd) -> None:
        """Spend the issue cycle, then inject the request."""
        req = MemRequest(op=cmd.op, core_id=self.core_id, addr=cmd.addr,
                         value=cmd.value, expected=cmd.expected,
                         issued_at=self.sim.now)
        self.stats.active_cycles += 1
        self.stats.instructions += 1
        self.stats.count_request(cmd.op.value)
        self._outstanding = req
        self._set_state(SLEEPING if cmd.op in WAIT_OPS else STALLED)
        # The request leaves the core after the 1-cycle issue stage.
        self.sim.schedule(1, self._send, arg=req)

    def _send(self, req: MemRequest) -> None:
        self._wait_started = self.sim.now
        bank_id = self.address_map.bank_of(req.addr)
        if req.op in WAIT_OPS:
            if not self.qnode.try_issue_wait(req, bank_id):
                return  # stalled inside the Qnode; released later
        elif req.op is Op.SCWAIT:
            # The SCwait passes the Qnode on its way out (Fig. 2 / 6).
            self.network.send_request(req, bank_id)
            self.qnode.on_scwait_pass()
            return
        self.network.send_request(req, bank_id)

    def _send_stalled_wait(self, req: MemRequest, bank_id: int) -> None:
        """Qnode callback: a buffered wait op finally enters the network."""
        self.network.send_request(req, bank_id)

    # -- response delivery ----------------------------------------------------------------

    def deliver_response(self, resp: MemResponse) -> None:
        """Network delivery of the response to the outstanding request."""
        req = self._outstanding
        if req is None or resp.core_id != self.core_id:
            raise KernelError(
                f"core {self.core_id}: unexpected response {resp}")
        waited = self.sim.now - self._wait_started
        if self.state == SLEEPING:
            self.stats.sleep_cycles += waited
        else:
            self.stats.stalled_cycles += waited
        cb = self._telemetry.on_response
        if cb is not None:
            cb(self.sim.now, self.core_id, resp, waited)
        self._outstanding = None
        self._set_state(ACTIVE)
        self._account_status(resp)
        # The Qnode observes every response first (WakeUp dispatch).
        self.qnode.on_response(resp)
        self._advance(resp)

    def _account_status(self, resp: MemResponse) -> None:
        if resp.op in (Op.SC, Op.SCWAIT):
            if resp.status is Status.OK:
                self.stats.sc_successes += 1
            else:
                self.stats.sc_failures += 1
        elif resp.op in WAIT_OPS and resp.status is Status.QUEUE_FULL:
            self.stats.wait_rejections += 1
