"""The per-core hardware queue node (Qnode) of Colibri (paper §IV).

Each core owns exactly one Qnode; since a core can wait in at most one
reservation queue at a time (§III-b), one node suffices and total Qnode
state scales as O(n).  The Qnode:

* remembers which queue (address/bank) the core is currently linked
  into;
* accepts :class:`SuccessorUpdate` messages *even while the core
  sleeps* ("allowing the queue to be enlarged independent of the cores'
  state", §IV);
* emits the :class:`WakeUpRequest` when the core's SCwait passes on its
  way to memory (or, if the successor link was still in flight at that
  moment, when the SuccessorUpdate finally arrives and "bounces back",
  §IV-A.1);
* does the same bookkeeping for Mwait completions (§IV-B), where the
  *response* rather than an SCwait triggers the successor wake-up.

One hardware-faithful subtlety: the Qnode is a single register set.  If
the core wants to enter a *new* queue while the node still owes a
bounced WakeUpRequest for the previous one (state ``passed``), the new
wait operation stalls inside the Qnode until the bounce resolves.  This
is rare — it requires the previous SCwait to race a concurrent enqueue —
but the model implements the stall rather than pretending the node can
track two queues.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..engine.errors import ProtocolViolation, SimulationError
from ..interconnect.messages import (
    MemRequest,
    MemResponse,
    Op,
    Status,
    SuccessorUpdate,
    WakeUpRequest,
)


class Qnode:
    """Hardware queue node sitting between one core and the network."""

    def __init__(self, core_id: int, send_wakeup: Callable[[WakeUpRequest], None],
                 release_stalled: Callable[[MemRequest, int], None]) -> None:
        self.core_id = core_id
        self._send_wakeup = send_wakeup
        #: Callback that actually injects a stalled wait op into the
        #: network once the node frees up (wired to the core model).
        self._release_stalled = release_stalled
        # -- queue-membership registers --
        self.armed_addr: Optional[int] = None
        self.armed_bank: Optional[int] = None
        self.successor: Optional[int] = None
        #: Response consumed, successor link still in flight: the next
        #: SuccessorUpdate for ``armed_addr`` must bounce as a WakeUp.
        self.passed: bool = False
        #: WakeUp already emitted at SCwait pass time.
        self.dispatched: bool = False
        #: Wait op the core issued while the node still owed a bounce.
        self._stalled: Optional[tuple] = None

    def reset(self) -> None:
        """Disarm completely (warm machine reuse)."""
        self.armed_addr = None
        self.armed_bank = None
        self.successor = None
        self.passed = False
        self.dispatched = False
        self._stalled = None

    # -- state queries -----------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while the node represents membership in some queue."""
        return self.armed_addr is not None

    @property
    def busy_with_pass(self) -> bool:
        """True while the node owes a bounced WakeUpRequest."""
        return self.passed

    # -- core-side events -----------------------------------------------------

    def try_issue_wait(self, req: MemRequest, bank_id: int) -> bool:
        """Core issues LRwait/Mwait: arm the node or stall the request.

        Returns ``True`` when the request may enter the network now;
        ``False`` when it was buffered until the pending pass resolves.
        """
        if self.passed:
            if self._stalled is not None:
                raise ProtocolViolation(
                    f"core {self.core_id}: second wait op while one is "
                    f"already stalled at the Qnode")
            self._stalled = (req, bank_id)
            return False
        if self.armed:
            raise ProtocolViolation(
                f"core {self.core_id}: wait op to 0x{req.addr:x} while "
                f"still linked into queue 0x{self.armed_addr:x} "
                f"(violates the one-outstanding-LRwait rule, §III-b)")
        self._arm(req.addr, bank_id)
        return True

    def on_scwait_pass(self) -> None:
        """The core's SCwait passes through on its way to memory.

        If the successor is already linked, the WakeUpRequest departs
        immediately — the paper's fast path (Fig. 2 step 6).
        """
        if not self.armed:
            raise ProtocolViolation(
                f"core {self.core_id}: SCwait without queue membership")
        if self.successor is not None:
            self._emit_wakeup(self.successor)
            self.dispatched = True

    def on_response(self, resp: MemResponse) -> None:
        """Filter every memory response on its way into the core."""
        if resp.op is Op.SCWAIT:
            self._resolve_exit(resp)
        elif resp.op in (Op.LRWAIT, Op.MWAIT):
            if resp.status is Status.QUEUE_FULL:
                self._disarm()  # never enqueued
            elif resp.op is Op.MWAIT:
                # Mwait completion doubles as the dequeue (§IV-B).
                self._resolve_exit(resp)
            # A successful LRwait response leaves the node armed: the
            # core now holds the head and will exit via SCwait.

    def _resolve_exit(self, resp: MemResponse) -> None:
        """Common dequeue path for SCwait and Mwait responses."""
        if self.dispatched:
            self._disarm()
        elif self.successor is not None:
            # The link arrived while the request/response was in flight.
            self._emit_wakeup(self.successor)
            self._disarm()
        elif resp.successor_pending:
            # Controller saw tail != head; the SuccessorUpdate will
            # arrive and must bounce.  Stay armed.
            self.passed = True
        else:
            self._disarm()

    # -- network-side events ------------------------------------------------------

    def on_successor_update(self, msg: SuccessorUpdate) -> None:
        """A SuccessorUpdate arrives (possibly while the core sleeps)."""
        if not self.armed or msg.addr != self.armed_addr:
            raise SimulationError(
                f"core {self.core_id}: SuccessorUpdate for 0x{msg.addr:x} "
                f"but node is linked to "
                f"{'nothing' if not self.armed else hex(self.armed_addr)}")
        if self.passed:
            # The bounce of §IV-A.1: forward straight back as a WakeUp.
            self._emit_wakeup(msg.successor)
            self._disarm()
        else:
            self.successor = msg.successor

    # -- internals --------------------------------------------------------------------

    def _arm(self, addr: int, bank_id: int) -> None:
        self.armed_addr = addr
        self.armed_bank = bank_id
        self.successor = None
        self.passed = False
        self.dispatched = False

    def _disarm(self) -> None:
        self.armed_addr = None
        self.armed_bank = None
        self.successor = None
        self.passed = False
        self.dispatched = False
        if self._stalled is not None:
            req, bank_id = self._stalled
            self._stalled = None
            self._arm(req.addr, bank_id)
            self._release_stalled(req, bank_id)

    def _emit_wakeup(self, successor: int) -> None:
        assert self.armed_addr is not None and self.armed_bank is not None
        self._send_wakeup(WakeUpRequest(
            bank_id=self.armed_bank, addr=self.armed_addr,
            from_core=self.core_id, successor=successor))
