"""Design-space exploration: search campaigns over scenario specs.

The repo's figures evaluate hand-picked points; this package searches
the paper's whole design space.  A :class:`SearchSpace` declares axes
(spec fields, workload parameters, memory variants) with constraints; a
registered *sampler* (``grid``, ``random``, ``halving``) proposes
prioritized batches; :class:`Objective`\\ s score each evaluated point
from run metrics or telemetry summaries; and a :class:`Campaign` runs
the whole thing through the sharded scenario runner and result cache —
cache hits cost zero budget — journaling every evaluation into a
resumable, schema-validated JSON document::

    from repro.dse import Campaign, SearchSpace, parse_objectives
    from repro.scenarios import default_spec

    campaign = Campaign(
        base=default_spec("histogram", num_cores=8),
        space=SearchSpace.from_axes({"bins": [1, 4, 16],
                                     "variant": ["lrsc", "colibri"]}),
        sampler="halving",
        objectives=parse_objectives(["min:cycles", "min:energy"]),
        budget=12)
    result = campaign.run()
    print(result.best().overrides, [e.overrides for e in result.frontier()])

The ``repro explore`` / ``repro frontier`` CLI drives it directly, and
``python -m repro.dse journal.json`` schema-validates journals in CI.
"""

from .campaign import Campaign, CampaignResult, Evaluation
from .journal import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    journal_path,
    load_journal,
    write_journal,
)
from .objectives import (
    Objective,
    parse_objective,
    parse_objectives,
    pareto_front,
    probe_summaries,
)
from .report import journal_frontier, journal_ranking, render_journal
from .samplers import (
    Batch,
    Sampler,
    UnknownSamplerError,
    create_sampler,
    get_sampler,
    list_samplers,
    register_sampler,
    unregister_sampler,
)
from .schema import validate_journal
from .space import SearchSpace

__all__ = [
    "Batch",
    "Campaign",
    "CampaignResult",
    "Evaluation",
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "Objective",
    "Sampler",
    "SearchSpace",
    "UnknownSamplerError",
    "create_sampler",
    "get_sampler",
    "journal_frontier",
    "journal_path",
    "journal_ranking",
    "list_samplers",
    "load_journal",
    "pareto_front",
    "parse_objective",
    "parse_objectives",
    "probe_summaries",
    "register_sampler",
    "render_journal",
    "unregister_sampler",
    "validate_journal",
    "write_journal",
]
