"""``python -m repro.dse <journal.json> [...]`` — schema validation.

Thin wrapper over :func:`repro.dse.schema.main` so CI can validate
campaign journals without tripping runpy's already-imported-module
warning (the same arrangement as ``python -m repro.telemetry``).
"""

import sys

from .schema import main

if __name__ == "__main__":
    sys.exit(main())
