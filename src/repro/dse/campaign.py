"""The campaign engine: budgeted, journaled design-space search.

A :class:`Campaign` drives one sampler over one
:class:`~repro.dse.space.SearchSpace`, evaluating proposals through the
standard scenario machinery (:func:`~repro.scenarios.run.run_scenarios`
with the shared worker pool and :class:`~repro.eval.runner.ResultCache`)
and journaling every evaluation as it lands.

The contract that makes campaigns practical:

* **Budget counts simulations, not proposals.**  A point served from
  the result cache — or already present in the journal, or proposed
  twice within one campaign — costs zero budget; only fresh simulation
  spends it.  Exhausting the budget truncates the in-flight batch at a
  deterministic point and marks the journal ``status="budget"``.
* **Determinism.**  Proposals are a pure function of (space, sampler,
  budget, seed); evaluations are pure functions of their specs; results
  are reassembled in proposal order.  The journal is therefore
  byte-identical for any ``--jobs`` value.
* **Resume by replay.**  A resumed campaign re-drives the sampler from
  scratch and satisfies the first N proposals positionally from the
  journal's N records — zero re-simulation — then continues where the
  killed run stopped.  Replayed paid evaluations still count against
  the budget (they were paid for), so an interrupted-and-resumed
  campaign converges to exactly the journal an uninterrupted one
  writes.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Optional

from ..engine.errors import ConfigError
from ..obs import OBS
from ..scenarios.registry import get_workload
from ..scenarios.run import (
    METRICS,
    apply_settings,
    run_scenario,
    run_scenarios,
    scenario_cache_key,
)
from ..scenarios.spec import ScenarioSpec
from .journal import (
    check_resumable,
    new_journal,
    write_journal,
)
from .objectives import _BASE_SCALARS, pareto_front
from .samplers import Sampler, create_sampler
from .space import SearchSpace

#: Private cache-miss sentinel (permits cached ``None`` results).
_MISS = object()


@dataclass
class Evaluation:
    """One journaled evaluation: a proposal and its measured outcome."""

    index: int
    batch: int
    rung: int
    fidelity: str
    overrides: dict
    spec: dict
    spec_hash: str
    #: True when this record cost zero budget: a result-cache hit, a
    #: journal replay of one, or a repeat of a point already evaluated
    #: earlier in the same campaign.
    cached: bool
    objectives: dict
    scalars: dict
    #: Simulation wall-clock attributed to this record, in
    #: milliseconds: fresh points carry their batch's simulate time
    #: amortized evenly across the batch's fresh points (the runner
    #: reassembles results in proposal order, so per-point walls are
    #: not individually observable); free points carry 0.0.  The one
    #: journal field that is *not* deterministic — journal comparisons
    #: in tests strip it.
    wall_ms: float = 0.0
    #: True when the record was served by the :class:`ResultCache`
    #: (``cached`` is broader: it also covers repeats and replays).
    cache_hit: bool = False

    def to_record(self) -> dict:
        return {
            "index": self.index,
            "batch": self.batch,
            "rung": self.rung,
            "fidelity": self.fidelity,
            "overrides": dict(self.overrides),
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "cached": self.cached,
            "objectives": dict(self.objectives),
            "scalars": dict(self.scalars),
            "wall_ms": self.wall_ms,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Evaluation":
        # Tolerate records missing post-v1 fields (wall_ms, cache_hit):
        # old journals replay with the fields' defaults.
        return cls(**{f.name: record[f.name]
                      for f in dataclasses.fields(cls)
                      if f.name in record})


@dataclass
class CampaignResult:
    """A finished (or budget/interrupt-stopped) campaign."""

    journal: dict
    evaluations: list
    paid: int
    status: str
    objectives: list
    journal_file: Optional[str] = None

    def _by_records(self, select) -> list:
        """Map a record-level selection back onto the evaluations.

        Comparability and ranking are defined once, on journal
        records (:mod:`repro.dse.report`), so the live campaign and
        ``repro frontier`` can never disagree about the same journal.
        """
        records = [e.to_record() for e in self.evaluations]
        return [self.evaluations[record["index"]]
                for record in select(records)]

    def comparable(self) -> list:
        """The evaluations rankings compare (see
        :func:`repro.dse.report.comparable_records`)."""
        from .report import comparable_records
        return self._by_records(comparable_records)

    def ranking(self) -> list:
        """Comparable evaluations, best first by the primary objective
        (ties broken by evaluation order)."""
        from .report import rank_records
        return self._by_records(
            lambda records: rank_records(records, self.objectives))

    def best(self) -> Optional[Evaluation]:
        ranked = self.ranking()
        return ranked[0] if ranked else None

    def frontier(self) -> list:
        """Non-dominated comparable evaluations, in evaluation order."""
        pool = self.comparable()
        rows = [e.objectives for e in pool]
        return [pool[i] for i in pareto_front(rows, self.objectives)]


class Campaign:
    """One configured design-space search (see the module docstring).

    ``sampler`` is a registered name (options via ``sampler_options``)
    or a ready :class:`~repro.dse.samplers.Sampler` instance.  When
    ``journal_file`` is set the journal is rewritten atomically after
    every batch; ``resume`` (a loaded journal dict) replays its records
    before anything simulates.  ``cache``/``jobs``/``batch`` flow to
    :func:`run_scenarios` unchanged — except for telemetry objectives,
    which force probed, serial, cache-less evaluation (probed machines
    cannot be pooled, so ``batch`` never applies to them).
    """

    def __init__(self, base: ScenarioSpec, space: SearchSpace, sampler,
                 objectives, budget: int, seed: int = 0, jobs: int = 1,
                 cache=None, journal_file: Optional[str] = None,
                 resume: Optional[dict] = None,
                 sampler_options: Optional[dict] = None,
                 batch: bool = False) -> None:
        if not isinstance(budget, int) or budget < 1:
            raise ConfigError(
                f"campaign budget must be a positive int, got {budget!r}")
        if batch and jobs != 1:
            raise ConfigError(
                f"batch execution runs all points in one warm process and "
                f"is incompatible with jobs={jobs!r}; drop --jobs or "
                f"--batch")
        if not objectives:
            raise ConfigError("a campaign needs at least one objective")
        self.base = base
        self.space = space
        if isinstance(sampler, str):
            sampler = create_sampler(sampler, **(sampler_options or {}))
        elif sampler_options:
            raise ConfigError(
                "sampler_options only apply when sampler is a name")
        if not isinstance(sampler, Sampler):
            raise ConfigError(
                f"sampler must be a registered name or Sampler instance, "
                f"got {sampler!r}")
        self.sampler = sampler
        self.objectives = list(objectives)
        self.budget = budget
        self.seed = seed
        self.jobs = jobs
        self.batch = batch
        self.cache = cache
        self.journal_file = journal_file
        self.probes = sorted({o.probe for o in self.objectives
                              if o.probe is not None})
        # Telemetry objectives must name registered probes — catch the
        # typo now, not after the first batch has simulated.
        for probe in self.probes:
            from ..telemetry import get_probe
            get_probe(probe)
        self._metric_names = {name for name in
                              (o.required_metric() for o in self.objectives)
                              if name is not None}
        workload = get_workload(base.workload)
        self.smoke_overrides = dict(workload.smoke)
        # Plain-metric objectives must name something a result will
        # actually carry — the universal scalars, a METRICS extractor,
        # or an extra the workload declares.  A typo must fail here,
        # before a single (possibly expensive) simulation is paid for.
        known = (set(METRICS) | set(_BASE_SCALARS)
                 | set(getattr(workload, "extra_metrics", ())))
        for objective in self.objectives:
            if objective.probe is None and objective.metric not in known:
                raise ConfigError(
                    f"unknown objective metric {objective.metric!r} for "
                    f"workload {base.workload!r}; known: {sorted(known)}")
        header = self._header()
        if resume is not None:
            check_resumable(resume, header)
        self.resume = resume
        #: Journal-write guard: while this run's evaluation list is
        #: still shorter than the journal being resumed, writing would
        #: *shrink* the on-disk journal — an interrupt mid-resume (or a
        #: resume under a smaller budget) must never destroy paid
        #: records, so :meth:`_write` skips the file until the replay
        #: has fully caught up.
        self._resume_count = (len(resume["evaluations"])
                              if resume is not None else 0)
        self.header = header
        # Fail fast on an invalid base/axes combination without paying
        # O(grid) spec validations up front (a 100k-point space with a
        # 20-point budget must not validate 100k specs): check the
        # first admitted point here; every *proposed* point is still
        # validated by _spec_for before its batch simulates.
        self._spec_for(space.points()[0], "full")

    def _header(self) -> dict:
        """The campaign-identity block of the journal."""
        options = {key: value for key, value in vars(self.sampler).items()
                   if isinstance(value, (int, float, str, bool))}
        return {
            "workload": self.base.workload,
            "base_spec": self.base.to_dict(),
            "space": self.space.to_dict(),
            "sampler": {"name": self.sampler.name, "options": options},
            "objectives": [o.name for o in self.objectives],
            "budget": self.budget,
            "seed": self.seed,
        }

    def _spec_for(self, combo: dict, fidelity: str) -> ScenarioSpec:
        """The concrete spec of one proposal at one fidelity."""
        spec = self.base
        if fidelity == "smoke" and self.smoke_overrides:
            # Smoke underneath, axes on top: the combination under test
            # must survive the shrink.
            spec = apply_settings(spec, self.smoke_overrides)
        spec = apply_settings(spec, combo)
        if self._metric_names:
            metrics = tuple(sorted(set(spec.metrics) | self._metric_names))
            spec = dataclasses.replace(spec, metrics=metrics)
        spec.validate()
        return spec

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Drive the sampler to completion, budget, or space exhaustion."""
        journal = new_journal(self.header)
        replay = list(self.resume["evaluations"]) if self.resume else []
        evaluations: list = []
        seen: dict = {}              # spec_hash -> Evaluation (this run)
        paid = 0
        status = "complete"
        rng = random.Random(self.seed)
        generator = self.sampler.batches(self.space, self.budget, rng)
        scores = None
        batch_index = 0
        events = OBS.events
        if events is not None:
            events.emit("campaign_started", workload=self.base.workload,
                        sampler=self.sampler.name, budget=self.budget,
                        seed=self.seed, jobs=self.jobs,
                        batch=self.batch, resumed=len(replay))
        with OBS.span("campaign", cat="campaign",
                      workload=self.base.workload, budget=self.budget,
                      sampler=self.sampler.name):
            try:
                while True:
                    try:
                        batch = generator.send(scores)
                    except StopIteration:
                        break
                    outcome = self._run_batch(batch, batch_index, replay,
                                              evaluations, seen, paid)
                    paid, truncated = outcome
                    self._write(journal, evaluations, paid, "partial")
                    monitor = OBS.heartbeat
                    if monitor is not None:
                        monitor.update(
                            points=len(evaluations),
                            last_seq=(events.last_seq
                                      if events is not None else None))
                    if truncated:
                        status = "budget"
                        break
                    primary = self.objectives[0]
                    start = len(evaluations) - len(batch.combos)
                    scores = [primary.canonical(
                        evaluations[start + offset]
                        .objectives[primary.metric])
                        for offset in range(len(batch.combos))]
                    batch_index += 1
            except BaseException:
                # A failing objective extraction (or a Ctrl-C) must not
                # discard the simulations that already finished: flush
                # what landed so --resume can replay it after the fix.
                # ``paid`` is recomputed from the records themselves —
                # the local is stale when the failing batch already
                # appended paid ones.
                flushed_paid = sum(1 for e in evaluations if not e.cached)
                self._write(journal, evaluations, flushed_paid, "partial")
                if OBS.events is not None:
                    OBS.events.emit("campaign_finished", status="partial",
                                    points=len(evaluations),
                                    paid=flushed_paid)
                raise
            finally:
                generator.close()
            journal = self._finalize(journal, evaluations, paid, status)
        return CampaignResult(journal=journal, evaluations=evaluations,
                              paid=paid, status=status,
                              objectives=list(self.objectives),
                              journal_file=self.journal_file)

    def _run_batch(self, batch, batch_index: int, replay: list,
                   evaluations: list, seen: dict, paid: int):
        """Evaluate one batch up to the budget; returns (paid, truncated).

        Proposals resolve, in priority order, against (1) the journal
        being resumed (positional replay), (2) points already evaluated
        this campaign, (3) the result cache, and only then (4) fresh
        simulation — the single path that costs budget.
        """
        with OBS.span("schedule-batch", cat="schedule", batch=batch_index,
                      rung=batch.rung, fidelity=batch.fidelity):
            return self._schedule_batch(batch, batch_index, replay,
                                        evaluations, seen, paid)

    def _schedule_batch(self, batch, batch_index: int, replay: list,
                        evaluations: list, seen: dict, paid: int):
        planned = []                 # (combo, spec, source, payload)
        fresh_specs = []
        batch_hashes = set()         # planned earlier in *this* batch
        truncated = False
        for combo in batch.combos:
            spec = self._spec_for(combo, batch.fidelity)
            spec_hash = spec.stable_hash()
            position = len(evaluations) + len(planned)
            if position < len(replay):
                record = replay[position]
                if record["spec_hash"] != spec_hash \
                        or record["fidelity"] != batch.fidelity:
                    raise ConfigError(
                        f"journal evaluation {position} does not match "
                        f"this campaign's proposal (journal spec "
                        f"{record['spec_hash'][:12]}, proposed "
                        f"{spec_hash[:12]}) — the resumed journal was "
                        f"written by a different campaign")
                cost = 0 if record["cached"] else 1
                if paid + cost > self.budget:
                    truncated = True
                    break
                paid += cost
                batch_hashes.add(spec_hash)
                planned.append((combo, spec, "replay", record))
                continue
            if spec_hash in seen or spec_hash in batch_hashes:
                # Already evaluated this campaign — or earlier in this
                # very batch; either way the result is known (or about
                # to be) and the repeat costs nothing.  The payload is
                # resolved from ``seen`` at record-build time, after
                # the first occurrence has landed there.
                planned.append((combo, spec, "repeat", None))
                continue
            cached = False
            hit = None
            if self.cache is not None and not self.probes:
                hit = self.cache.lookup_hash(scenario_cache_key(spec),
                                             _MISS)
                cached = hit is not _MISS
            batch_hashes.add(spec_hash)
            if not cached:
                if paid + 1 > self.budget:
                    truncated = True
                    break
                paid += 1
                fresh_specs.append(spec)
                planned.append((combo, spec, "fresh", None))
            else:
                planned.append((combo, spec, "cache", hit))
        events = OBS.events
        if events is not None:
            events.emit("batch_scheduled", batch=batch_index,
                        rung=batch.rung, fidelity=batch.fidelity,
                        points=len(planned), fresh=len(fresh_specs),
                        truncated=truncated)
        sim_start = time.perf_counter()
        computed = self._simulate(fresh_specs)
        sim_ms = (time.perf_counter() - sim_start) * 1000.0
        # Per-point simulate walls are not individually observable (the
        # runner reassembles results in proposal order), so the batch's
        # simulate time amortizes evenly across its fresh points.
        fresh_wall = round(sim_ms / len(computed), 3) if computed else 0.0
        fresh_iter = iter(computed)
        for combo, spec, source, payload in planned:
            index = len(evaluations)
            if source == "replay":
                evaluation = Evaluation.from_record(payload)
                evaluation.index = index
                evaluation.batch = batch_index
            elif source == "repeat":
                # The repeat itself simulates nothing and hits no
                # cache, whatever its first occurrence did.
                evaluation = dataclasses.replace(
                    seen[spec.stable_hash()], index=index,
                    batch=batch_index, rung=batch.rung,
                    fidelity=batch.fidelity, overrides=dict(combo),
                    cached=True, wall_ms=0.0, cache_hit=False)
            else:
                result = payload if source == "cache" else next(fresh_iter)
                values = {
                    objective.metric: objective.value(
                        result.scalars(), result.telemetry)
                    for objective in self.objectives}
                evaluation = Evaluation(
                    index=index, batch=batch_index, rung=batch.rung,
                    fidelity=batch.fidelity, overrides=dict(combo),
                    spec=spec.to_dict(), spec_hash=spec.stable_hash(),
                    cached=(source == "cache"),
                    objectives=values,
                    scalars=_json_scalars(result.scalars()),
                    wall_ms=0.0 if source == "cache" else fresh_wall,
                    cache_hit=(source == "cache"))
            seen.setdefault(evaluation.spec_hash, evaluation)
            evaluations.append(evaluation)
            if events is not None:
                # The single source of point_finished records for every
                # resolution path, so event-log totals reconcile exactly
                # against the journal (replays included — a resumed
                # campaign's log re-reports the replayed records).
                events.emit("point_finished", index=evaluation.index,
                            spec_hash=evaluation.spec_hash,
                            cache_hit=evaluation.cache_hit,
                            paid=not evaluation.cached,
                            wall_ms=evaluation.wall_ms, source=source)
        if OBS.enabled:
            OBS.inc("campaign.points", len(planned))
            OBS.inc("campaign.paid", len(fresh_specs))
            OBS.inc("campaign.free", len(planned) - len(fresh_specs))
            OBS.gauge("campaign.budget_remaining", self.budget - paid)
        return paid, truncated

    def _simulate(self, specs: list) -> list:
        """Fresh simulations, pooled — or probed and serial when the
        objectives read telemetry (probe data is per-execution and
        never cached, so those runs stay in-process)."""
        if not specs:
            return []
        if self.probes:
            return [run_scenario(spec, probes=list(self.probes))
                    for spec in specs]
        return run_scenarios(specs, jobs=self.jobs, cache=self.cache,
                             batch=self.batch)

    # -- journal --------------------------------------------------------------

    def _write(self, journal: dict, evaluations: list, paid: int,
               status: str) -> None:
        journal["evaluations"] = [e.to_record() for e in evaluations]
        journal["paid"] = paid
        journal["status"] = status
        if self.journal_file is not None \
                and len(evaluations) >= self._resume_count:
            write_journal(self.journal_file, journal)
            if OBS.events is not None:
                OBS.events.emit("journal_written",
                                evaluations=len(evaluations),
                                status=status)

    def _finalize(self, journal: dict, evaluations: list, paid: int,
                  status: str) -> dict:
        result = CampaignResult(journal=journal, evaluations=evaluations,
                                paid=paid, status=status,
                                objectives=list(self.objectives))
        best = result.best()
        journal["best"] = best.index if best is not None else None
        journal["frontier"] = [e.index for e in result.frontier()]
        self._write(journal, evaluations, paid, status)
        if OBS.events is not None:
            OBS.events.emit("campaign_finished", status=status,
                            points=len(evaluations), paid=paid)
        if self.cache is not None:
            # A batch served entirely from the cache never reaches
            # run_scenarios' flush; settle the sidecar totals here.
            self.cache.flush_counters()
        return journal


def _json_scalars(scalars: dict) -> dict:
    """Keep only the JSON-scalar entries of a result's scalars dict."""
    return {key: value for key, value in scalars.items()
            if isinstance(value, (int, float, str, bool))
            or value is None}
