"""The campaign journal: durable, resumable search state.

One JSON document per campaign (``journal.json`` in the campaign
directory) recording the campaign's full identity — base spec, search
space, sampler, objectives, budget, seed — plus one record per
evaluation in execution order.  The journal is rewritten atomically
after every batch, so a killed campaign loses at most the batch in
flight; ``repro explore --resume DIR`` replays the records instead of
re-simulating them (see :mod:`repro.dse.campaign`).

Layout is validated by :mod:`repro.dse.schema`; ``repro frontier``
renders rankings and Pareto frontiers from the journal alone.
"""

from __future__ import annotations

import json
import os

from ..engine.errors import ConfigError
from .schema import SchemaError, validate_journal

#: Bump when the journal layout changes incompatibly.  Version 2 added
#: per-evaluation ``wall_ms``/``cache_hit`` time attribution; version-1
#: journals carry neither but stay valid and resumable (the fields
#: default on replay), hence :data:`COMPATIBLE_VERSIONS`.
JOURNAL_VERSION = 2

#: Journal versions this code can validate and resume.
COMPATIBLE_VERSIONS = (1, 2)

#: File name inside a campaign directory.
JOURNAL_NAME = "journal.json"


def journal_path(directory: str) -> str:
    """The journal file of a campaign directory."""
    return os.path.join(directory, JOURNAL_NAME)


def write_journal(path: str, document: dict) -> str:
    """Atomically write ``document``; returns the path.

    Atomic replace means a kill mid-write leaves the previous journal
    intact — resume never sees a torn file.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    os.replace(tmp, path)
    return path


def load_journal(path: str) -> dict:
    """Read and schema-validate a journal file."""
    try:
        with open(path) as stream:
            data = json.load(stream)
    except OSError as exc:
        raise ConfigError(f"cannot read journal {path!r}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"journal {path!r} is not valid JSON: {exc}")
    try:
        validate_journal(data)
    except SchemaError as exc:
        raise ConfigError(f"journal {path!r} is malformed: {exc}")
    return data


def load_journal_tolerant(path: str):
    """Best-effort journal read for monitoring: ``(data, warnings)``.

    ``repro status`` must render something useful from whatever a
    killed campaign left behind, so unlike :func:`load_journal` this
    salvages a truncated document (largest valid JSON prefix) and skips
    schema validation — evaluation records are consumed defensively by
    the caller.  Unreadable or unsalvageable files still raise
    :class:`~repro.engine.errors.ConfigError`.
    """
    from ..obs.artifacts import load_artifact
    kind, data, warnings = load_artifact(path, tolerant=True)
    if kind != "journal":
        raise ConfigError(f"{path!r} is not a campaign journal "
                          f"(detected: {kind})")
    return data, warnings


def new_journal(campaign: dict) -> dict:
    """A fresh (no evaluations yet) journal document."""
    return {
        "version": JOURNAL_VERSION,
        "status": "partial",
        "paid": 0,
        "campaign": campaign,
        "evaluations": [],
        "best": None,
        "frontier": [],
    }


def check_resumable(journal: dict, campaign: dict) -> None:
    """Reject resuming under a different campaign configuration.

    A journal replays deterministically only when space, sampler,
    objectives, seed and base spec all match; resuming with anything
    else changed would silently mix two different searches.  The one
    deliberate exception is ``budget``: a budget-exhausted campaign is
    *meant* to be resumed with a larger budget (replay is positional
    and hash-checked, so a budget-sensitive custom sampler that
    proposes differently still fails loudly rather than mixing runs).
    """
    if journal.get("version") not in COMPATIBLE_VERSIONS:
        raise ConfigError(
            f"journal version {journal.get('version')!r} is not among "
            f"the versions this code resumes {COMPATIBLE_VERSIONS}")
    recorded = journal["campaign"]
    for key in sorted(set(recorded) | set(campaign)):
        if key != "budget" and recorded.get(key) != campaign.get(key):
            raise ConfigError(
                f"cannot resume: journal was written for {key}="
                f"{recorded.get(key)!r}, this invocation has "
                f"{campaign.get(key)!r} — rerun with matching options "
                f"or start a fresh --out directory")
