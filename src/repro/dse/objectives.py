"""Objectives: what a search campaign optimizes.

An :class:`Objective` is a direction (``min``/``max``) over a named
scalar of a finished run.  The scalar vocabulary is:

* the headline :meth:`~repro.scenarios.run.ScenarioResult.scalars`
  (``cycles``, ``throughput``, ``messages``, ``active_cycles``,
  ``sleep_cycles``) plus anything the workload's ``finish`` attaches;
* every named stat extractor in :data:`repro.scenarios.run.METRICS`
  (``energy_pj_per_op``, ``sc_failures``, ...) — campaigns add these to
  the spec's ``metrics`` field automatically;
* telemetry probe summaries, spelled ``telemetry.<probe>.<key>`` (see
  :func:`probe_summaries`) — these force probed, cache-less runs.

Objectives parse from CLI strings (``min:cycles``, ``max:throughput``,
``energy``), and :func:`pareto_front` computes the non-dominated subset
of a set of evaluated points for any number of objectives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.errors import ConfigError
from ..scenarios.run import METRICS

#: Friendly shorthand -> (goal, metric).  ``runtime``/``energy`` are
#: the paper's trade-off axes (Fig. 3-6 vs Table II).
OBJECTIVE_ALIASES = {
    "runtime": ("min", "cycles"),
    "cycles": ("min", "cycles"),
    "energy": ("min", "energy_pj_per_op"),
    "throughput": ("max", "throughput"),
    "messages": ("min", "messages"),
}

#: Scalars every ScenarioResult carries without extra metrics.
_BASE_SCALARS = ("cycles", "throughput", "messages", "active_cycles",
                 "sleep_cycles")

GOALS = ("min", "max")


@dataclass(frozen=True)
class Objective:
    """One optimization target: ``goal`` direction over ``metric``."""

    metric: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if self.goal not in GOALS:
            raise ConfigError(
                f"objective goal must be one of {GOALS}, got {self.goal!r}")
        if not self.metric or not isinstance(self.metric, str):
            raise ConfigError(
                f"objective metric must be a non-empty string, "
                f"got {self.metric!r}")

    @property
    def name(self) -> str:
        """Canonical ``goal:metric`` spelling (journal/CLI identity)."""
        return f"{self.goal}:{self.metric}"

    @property
    def probe(self):
        """The telemetry probe this objective needs, or ``None``."""
        if self.metric.startswith("telemetry."):
            parts = self.metric.split(".")
            if len(parts) != 3 or not all(parts):
                raise ConfigError(
                    f"telemetry objectives are spelled "
                    f"'telemetry.<probe>.<key>', got {self.metric!r}")
            return parts[1]
        return None

    def required_metric(self):
        """The METRICS extractor name to add to specs, or ``None``."""
        if self.probe is None and self.metric in METRICS \
                and self.metric not in _BASE_SCALARS:
            return self.metric
        return None

    def value(self, scalars: dict, telemetry=None) -> float:
        """Extract this objective's raw value from one evaluation.

        ``scalars`` is :meth:`ScenarioResult.scalars` (or the journal's
        recorded copy); ``telemetry`` the run's
        :class:`~repro.telemetry.report.TelemetryReport` when probed.
        """
        probe = self.probe
        if probe is not None:
            if telemetry is None:
                raise ConfigError(
                    f"objective {self.name!r} needs telemetry but the "
                    f"run was not probed")
            key = self.metric.split(".")[2]
            summary = probe_summaries(telemetry).get(probe, {})
            if key not in summary:
                raise ConfigError(
                    f"probe {probe!r} has no summary {key!r}; "
                    f"available: {sorted(summary) or '(none)'}")
            return float(summary[key])
        if self.metric not in scalars:
            raise ConfigError(
                f"unknown objective metric {self.metric!r}; known scalars: "
                f"{sorted(set(scalars) | set(METRICS))}")
        try:
            return float(scalars[self.metric])
        except (TypeError, ValueError):
            raise ConfigError(
                f"objective metric {self.metric!r} is not numeric "
                f"(got {scalars[self.metric]!r}); pick a numeric metric")

    def canonical(self, value: float) -> float:
        """The value as a minimization score (negated for ``max``)."""
        return value if self.goal == "min" else -value


def parse_objective(text: str) -> Objective:
    """``"min:cycles"`` / ``"max:throughput"`` / alias -> Objective."""
    if not text or not isinstance(text, str):
        raise ConfigError(
            f"objective must be a non-empty string, got {text!r}")
    head, sep, rest = text.partition(":")
    if sep and head in GOALS:
        # An explicit goal keeps its direction; the metric part still
        # resolves through the aliases ("min:energy" works).
        metric = OBJECTIVE_ALIASES.get(rest, (None, rest))[1]
        return Objective(metric=metric, goal=head)
    if text in OBJECTIVE_ALIASES:
        goal, metric = OBJECTIVE_ALIASES[text]
        return Objective(metric=metric, goal=goal)
    if sep:
        raise ConfigError(
            f"objective {text!r} must start with 'min:' or 'max:'")
    # Bare metric name: minimize by default (most stats are costs).
    return Objective(metric=text, goal="min")


def parse_objectives(texts) -> list:
    """Parse several, rejecting duplicates (order = priority order)."""
    objectives = [parse_objective(text) for text in texts]
    seen = set()
    for objective in objectives:
        if objective.metric in seen:
            raise ConfigError(
                f"objective metric {objective.metric!r} given twice")
        seen.add(objective.metric)
    return objectives


def pareto_front(rows, objectives) -> list:
    """Indices of the non-dominated rows.

    ``rows`` is a sequence of per-objective value dicts (``{metric:
    value}``); a row is dominated when another row is no worse on every
    objective and strictly better on at least one.  Returned indices
    are in input order, so ties and single-objective fronts stay
    deterministic.
    """
    scored = [tuple(obj.canonical(row[obj.metric]) for obj in objectives)
              for row in rows]
    front = []
    for index, candidate in enumerate(scored):
        dominated = False
        for other_index, other in enumerate(scored):
            if other_index == index:
                continue
            if all(o <= c for o, c in zip(other, candidate)) \
                    and any(o < c for o, c in zip(other, candidate)):
                dominated = True
                break
            # Exact duplicates: keep only the first occurrence.
            if other == candidate and other_index < index:
                dominated = True
                break
        if not dominated:
            front.append(index)
    return front


def probe_summaries(report) -> dict:
    """Flat scalar summaries per probe section of a telemetry report.

    These are the values ``telemetry.<probe>.<key>`` objectives read.
    Known built-in probes get purposeful aggregates; user-registered
    probes fall back to the numeric scalars at the top of their section.
    """
    probes = report.probes if hasattr(report, "probes") else report
    summaries = {}
    for name, section in probes.items():
        summary = {key: value for key, value in section.items()
                   if isinstance(value, (int, float))
                   and not isinstance(value, bool)}
        builder = _PROBE_SUMMARIES.get(name)
        if builder is not None:
            summary.update(builder(section))
        summaries[name] = summary
    return summaries


def _summarize_bank_contention(section: dict) -> dict:
    banks = section["banks"]
    return {
        "peak_bank_accesses": max((b["accesses"] for b in banks), default=0),
        "total_conflicts": sum(b["conflicts"] for b in banks),
        "total_queued_cycles": sum(b["queued_cycles"] for b in banks),
        "total_failed_responses": sum(b["failed_responses"] for b in banks),
    }


def _summarize_core_timeline(section: dict) -> dict:
    totals = section["state_totals"]
    return {f"{state}_cycles": cycles for state, cycles in totals.items()}


def _summarize_queue_occupancy(section: dict) -> dict:
    banks = [b for b in section["banks"] if b["samples"]]
    return {
        "max_depth": max((b["max_depth"] for b in banks), default=0),
        "mean_depth": (sum(b["mean_depth"] for b in banks) / len(banks)
                       if banks else 0.0),
    }


def _summarize_message_latency(section: dict) -> dict:
    entries = section["round_trip"].values()
    count = sum(entry["count"] for entry in entries)
    total = sum(entry["total_cycles"]
                for entry in section["round_trip"].values())
    return {
        "responses": count,
        "mean_round_trip_cycles": (total / count) if count else 0.0,
        "max_round_trip_cycles": max(
            (entry["max_cycles"]
             for entry in section["round_trip"].values()), default=0),
    }


_PROBE_SUMMARIES = {
    "bank_contention": _summarize_bank_contention,
    "core_timeline": _summarize_core_timeline,
    "queue_occupancy": _summarize_queue_occupancy,
    "message_latency": _summarize_message_latency,
}
