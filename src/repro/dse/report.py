"""Rendering and export of campaign outcomes.

Everything here works from the *journal document* alone — plain dicts,
no live campaign state — so ``repro frontier`` renders a journal read
back from disk exactly like ``repro explore`` renders the campaign it
just ran.  Tables and the two-objective frontier scatter come from
:mod:`repro.eval.reporting`, the shared ASCII layer.
"""

from __future__ import annotations

from ..eval.reporting import render_frontier, render_table
from .objectives import parse_objectives


def comparable_records(records) -> list:
    """The records rankings compare: full fidelity when any exist
    (halving's smoke rungs steer the search, they don't answer it),
    else everything.  The single definition of comparability — both
    :class:`~repro.dse.campaign.CampaignResult` and the journal
    renderers defer here so a live campaign and ``repro frontier``
    can never rank the same journal differently.
    """
    full = [record for record in records if record["fidelity"] == "full"]
    return full or list(records)


def rank_records(records, objectives) -> list:
    """Comparable records, best first by the primary objective
    (ties broken by evaluation order)."""
    primary = objectives[0]
    return sorted(comparable_records(records),
                  key=lambda record: (primary.canonical(
                      record["objectives"][primary.metric]),
                      record["index"]))


def _comparable(journal: dict) -> list:
    return comparable_records(journal["evaluations"])


def journal_ranking(journal: dict) -> list:
    """Comparable records, best first by the primary objective."""
    objectives = parse_objectives(journal["campaign"]["objectives"])
    return rank_records(journal["evaluations"], objectives)


def journal_frontier(journal: dict) -> list:
    """The journal's non-dominated records, in evaluation order."""
    indices = set(journal.get("frontier", ()))
    return [record for record in journal["evaluations"]
            if record["index"] in indices]


def render_journal(journal: dict, width: int = 56, top: int = 10) -> str:
    """Full ASCII view: summary, ranking, frontier (plot when 2-D)."""
    campaign = journal["campaign"]
    objectives = parse_objectives(campaign["objectives"])
    records = journal["evaluations"]
    cached = sum(1 for record in records if record["cached"])
    # Journal axes are ordered [key, values] pairs (declaration order
    # survives the sorted-keys JSON writer); a dict view keeps it.
    axes = dict(campaign["space"]["axes"])
    summary_rows = [
        ("workload", campaign["workload"]),
        ("space", " x ".join(f"{key}[{len(values)}]"
                             for key, values in axes.items())),
        ("sampler", campaign["sampler"]["name"]),
        ("objectives", ", ".join(campaign["objectives"])),
        ("budget", f"{journal['paid']} paid / {campaign['budget']} "
                   f"({cached} free of {len(records)} evaluations)"),
        ("status", journal["status"]),
    ]
    # v2 journals attribute simulation time per record; a v1 journal
    # (or an all-free campaign) sums to zero and the row stays useful.
    wall_ms = sum(record.get("wall_ms", 0.0) for record in records)
    if wall_ms > 0:
        hits = sum(1 for record in records
                   if record.get("cache_hit", False))
        summary_rows.append(
            ("wall", f"{wall_ms / 1000.0:.2f}s simulated "
                     f"({hits} cache hits)"))
    parts = [render_table(["field", "value"], summary_rows,
                          title="campaign")]
    ranking = journal_ranking(journal)
    parts.append(_ranking_table(ranking[:top], axes, objectives,
                                title=f"ranking (top {min(top, len(ranking))}"
                                      f" of {len(ranking)} comparable)"))
    frontier = journal_frontier(journal)
    if frontier:
        parts.append(_ranking_table(
            frontier, axes, objectives,
            title=f"Pareto frontier ({len(frontier)} non-dominated)"))
    if len(objectives) == 2 and len(_comparable(journal)) > 1:
        parts.append(_frontier_plot(journal, objectives, width))
    return "\n\n".join(parts)


def _ranking_table(records: list, axes: dict, objectives: list,
                   title: str) -> str:
    axis_keys = list(axes)
    headers = (["#"] + axis_keys
               + [objective.name for objective in objectives]
               + ["fidelity", "cost"])
    rows = []
    for record in records:
        row = [record["index"]]
        row.extend(record["overrides"].get(key, "") for key in axis_keys)
        row.extend(record["objectives"][objective.metric]
                   for objective in objectives)
        row.extend([record["fidelity"],
                    "free" if record["cached"] else "paid"])
        rows.append(row)
    return render_table(headers, rows, title=title)


def _frontier_plot(journal: dict, objectives: list, width: int) -> str:
    comparable = _comparable(journal)
    x_obj, y_obj = objectives
    points = [(record["objectives"][x_obj.metric],
               record["objectives"][y_obj.metric])
              for record in comparable]
    frontier_set = set(journal.get("frontier", ()))
    frontier = [position for position, record in enumerate(comparable)
                if record["index"] in frontier_set]
    return render_frontier(
        points, frontier, x_label=x_obj.name, y_label=y_obj.name,
        width=width,
        title=f"trade-off: {x_obj.name} vs {y_obj.name}")
