"""Search strategies: how a campaign walks its space.

A *sampler* proposes prioritized batches of axis combinations for the
:class:`~repro.dse.campaign.Campaign` to evaluate, and may adapt later
batches to the scores of earlier ones.  The protocol is a generator
conversation::

    generator = sampler.batches(space, budget, rng)
    batch = generator.send(None)          # first proposal
    batch = generator.send(scores)        # scores of the last batch,
                                          # aligned with batch.combos
                                          # (lower is better)

Samplers never simulate and never see budget spend — the campaign owns
both; ``budget`` is advisory sizing information only.  Randomness comes
exclusively through the ``rng`` argument (a seeded
:class:`random.Random`), so a campaign's proposals are a pure function
of (space, budget, seed).

Sampler classes register under a name with :func:`register_sampler` —
the same registry idiom as workloads and telemetry probes, including
``replace=True`` shadowing — and the CLI looks them up for
``repro explore --sampler <name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.errors import ConfigError

#: Evaluation fidelities a batch may request.  ``smoke`` applies the
#: workload's tiny smoke overrides underneath the axis combination —
#: the cheap low-rung measurement successive halving promotes from.
FIDELITIES = ("full", "smoke")


class UnknownSamplerError(ConfigError):
    """A campaign named a sampler that is not registered."""


@dataclass
class Batch:
    """One prioritized batch of proposals.

    ``combos`` are evaluated in list order — samplers put their most
    promising candidates first, so budget exhaustion truncates the
    least interesting tail.  ``rung`` counts adaptive rounds (0 for
    one-shot samplers).
    """

    combos: list
    fidelity: str = "full"
    rung: int = 0

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITIES:
            raise ConfigError(
                f"batch fidelity must be one of {FIDELITIES}, "
                f"got {self.fidelity!r}")


class Sampler:
    """Base class: subclasses implement :meth:`batches`."""

    #: Registry name, filled by :func:`register_sampler`.
    name: str = ""
    description: str = ""

    def batches(self, space, budget: int, rng):
        """Yield :class:`Batch` proposals; receives score lists back."""
        raise NotImplementedError(
            f"sampler {type(self).__name__} does not implement batches()")


#: name -> sampler class.
_REGISTRY: dict = {}


def register_sampler(name: str, *, replace: bool = False):
    """Class decorator registering a sampler class under ``name``."""
    if not name or not isinstance(name, str):
        raise ConfigError(
            f"sampler name must be a non-empty string, got {name!r}")

    def decorator(cls):
        if name in _REGISTRY and not replace:
            raise ConfigError(
                f"sampler {name!r} already registered "
                f"({_REGISTRY[name].__name__}); "
                f"pass replace=True to shadow it")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_sampler(name: str) -> None:
    """Remove a registration (mainly for tests tearing down fixtures)."""
    _REGISTRY.pop(name, None)


def get_sampler(name: str) -> type:
    """The registered sampler class, or :class:`UnknownSamplerError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSamplerError(
            f"no sampler registered under {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY)) or '(none)'}")


def create_sampler(name: str, **options) -> Sampler:
    """A fresh sampler instance; ``options`` go to the constructor."""
    cls = get_sampler(name)
    try:
        return cls(**options)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"sampler {name!r} rejected options {sorted(options)}: {exc}")


def list_samplers() -> list:
    """``(name, sampler_class)`` pairs, sorted by name."""
    return sorted(_REGISTRY.items())


# -- built-in samplers --------------------------------------------------------


@register_sampler("grid")
class GridSampler(Sampler):
    """Exhaustive: every admitted point, in grid order, full fidelity.

    The reference strategy — with enough budget it *is* ground truth,
    and the halving golden test compares against it.  Points are
    proposed in chunks of ``batch_size`` so the campaign journal
    checkpoints between chunks: a killed 500-point grid loses at most
    one chunk, not everything.
    """

    description = "exhaustive cartesian grid, full fidelity"

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def batches(self, space, budget, rng):
        points = space.points()
        for rung, start in enumerate(range(0, len(points),
                                           self.batch_size)):
            yield Batch(points[start:start + self.batch_size],
                        fidelity="full", rung=rung)


@register_sampler("random")
class RandomSampler(Sampler):
    """Uniform search without replacement, in seeded-shuffle order.

    Proposes ``batch_size`` points at a time until the space (or the
    campaign's budget) runs out.  All randomness flows through the
    campaign's seeded ``rng``, so the proposal order is reproducible.
    """

    description = "uniform random without replacement (seeded)"

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def batches(self, space, budget, rng):
        points = space.points()
        rng.shuffle(points)
        for rung, start in enumerate(range(0, len(points),
                                           self.batch_size)):
            yield Batch(points[start:start + self.batch_size],
                        fidelity="full", rung=rung)


@register_sampler("halving")
class HalvingSampler(Sampler):
    """Successive halving: smoke rungs prune, survivors run full.

    Every candidate is first measured at *smoke* fidelity (the
    workload's tiny smoke overrides under the axis combination — cheap,
    but rank-informative).  Each rung keeps the best ``1/eta`` of its
    candidates (never fewer than ``finalists``), and once the field is
    down to ``finalists`` the survivors run at full fidelity, best
    smoke score first.  The campaign ranks only full-fidelity results,
    so smoke rungs steer the search without contaminating the answer.
    """

    description = ("successive halving: smoke-fidelity rungs prune, "
                   "finalists run full")

    def __init__(self, eta: int = 2, finalists: int = 2) -> None:
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if finalists < 1:
            raise ValueError(f"finalists must be >= 1, got {finalists}")
        self.eta = eta
        self.finalists = finalists

    def batches(self, space, budget, rng):
        candidates = space.points()
        rung = 0
        while len(candidates) > self.finalists:
            scores = yield Batch(list(candidates), fidelity="smoke",
                                 rung=rung)
            ranked = sorted(range(len(candidates)),
                            key=lambda i: (scores[i], i))
            keep = max(self.finalists,
                       -(-len(candidates) // self.eta))
            # Always shrink, or a too-large ``finalists`` floor loops.
            keep = min(keep, len(candidates) - 1)
            candidates = [candidates[i] for i in ranked[:keep]]
            rung += 1
        yield Batch(list(candidates), fidelity="full", rung=rung)
