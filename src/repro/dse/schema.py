"""Structural validation of campaign journals.

The journal is the campaign's durable state — resume, ``repro
frontier`` and CI artifacts all read it back — so, exactly like
exported telemetry reports, it is validated against the documented
layout with plain functions and zero schema dependencies.  A campaign
whose journal drifts from this shape fails the pipeline rather than
shipping an unreadable artifact.

Run standalone over one or more files::

    python -m repro.dse journal.json [more.json ...]

exits 0 when every file validates, 2 with a message otherwise.
"""

from __future__ import annotations

import json
import sys

from ..telemetry.schema import SchemaError, _require

#: Journal states: ``complete`` (sampler exhausted), ``budget``
#: (evaluation budget ran out first), ``partial`` (interrupted —
#: resumable with ``repro explore --resume``).
STATUSES = ("complete", "budget", "partial")


def validate_journal(data: dict) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid journal."""
    if not isinstance(data, dict):
        raise SchemaError(
            f"journal must be a dict, got {type(data).__name__}")
    from .journal import COMPATIBLE_VERSIONS
    version = _require(data, "version", int, "journal")
    if version not in COMPATIBLE_VERSIONS:
        raise SchemaError(
            f"journal: version must be one of {COMPATIBLE_VERSIONS}, "
            f"got {version!r}")
    status = _require(data, "status", str, "journal")
    if status not in STATUSES:
        raise SchemaError(
            f"journal: status must be one of {STATUSES}, got {status!r}")
    _require(data, "paid", int, "journal")
    campaign = _require(data, "campaign", dict, "journal")
    _require(campaign, "workload", str, "journal.campaign")
    _require(campaign, "base_spec", dict, "journal.campaign")
    space = _require(campaign, "space", dict, "journal.campaign")
    axes = _require(space, "axes", list, "journal.campaign.space")
    for pair in axes:
        if not (isinstance(pair, list) and len(pair) == 2
                and isinstance(pair[0], str)
                and isinstance(pair[1], list) and pair[1]):
            raise SchemaError(
                f"journal.campaign.space: bad axis {pair!r} "
                f"(want [key, [value, ...]] pairs in declaration order)")
    sampler = _require(campaign, "sampler", dict, "journal.campaign")
    _require(sampler, "name", str, "journal.campaign.sampler")
    objectives = _require(campaign, "objectives", list, "journal.campaign")
    for text in objectives:
        if not isinstance(text, str) or ":" not in text:
            raise SchemaError(
                f"journal.campaign: bad objective {text!r} "
                f"(want 'min:<metric>' / 'max:<metric>')")
    _require(campaign, "budget", int, "journal.campaign")
    _require(campaign, "seed", int, "journal.campaign")
    evaluations = _require(data, "evaluations", list, "journal")
    for position, record in enumerate(evaluations):
        _check_evaluation(record, position, objectives)
    best = data.get("best")
    if best is not None and not isinstance(best, int):
        raise SchemaError("journal: 'best' must be an evaluation index "
                          f"or null, got {best!r}")
    frontier = data.get("frontier", [])
    if not isinstance(frontier, list) or \
            not all(isinstance(i, int) for i in frontier):
        raise SchemaError(
            f"journal: 'frontier' must be a list of evaluation "
            f"indices, got {frontier!r}")
    indices = {record["index"] for record in evaluations}
    for index in frontier + ([best] if best is not None else []):
        if index not in indices:
            raise SchemaError(
                f"journal: index {index} not among the evaluations")


def _check_evaluation(record, position: int, objectives) -> None:
    where = f"journal.evaluations[{position}]"
    if not isinstance(record, dict):
        raise SchemaError(f"{where}: must be a dict")
    index = _require(record, "index", int, where)
    if index != position:
        raise SchemaError(
            f"{where}: index {index} out of order (want {position})")
    _require(record, "batch", int, where)
    _require(record, "rung", int, where)
    fidelity = _require(record, "fidelity", str, where)
    if fidelity not in ("full", "smoke"):
        raise SchemaError(f"{where}: bad fidelity {fidelity!r}")
    _require(record, "overrides", dict, where)
    _require(record, "spec", dict, where)
    spec_hash = _require(record, "spec_hash", str, where)
    if len(spec_hash) != 64:
        raise SchemaError(f"{where}: spec_hash must be a SHA-256 hex "
                          f"digest, got {spec_hash!r}")
    if "cached" not in record or not isinstance(record["cached"], bool):
        raise SchemaError(f"{where}: 'cached' must be a bool")
    # v2 time-attribution fields; optional so v1 journals still pass.
    if "wall_ms" in record:
        wall = record["wall_ms"]
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) \
                or wall < 0:
            raise SchemaError(
                f"{where}: 'wall_ms' must be a number >= 0, got {wall!r}")
    if "cache_hit" in record and not isinstance(record["cache_hit"], bool):
        raise SchemaError(f"{where}: 'cache_hit' must be a bool")
    values = _require(record, "objectives", dict, where)
    for text in objectives:
        metric = text.split(":", 1)[1]
        if metric not in values:
            raise SchemaError(
                f"{where}: missing objective value {metric!r}")
        if not isinstance(values[metric], (int, float)) \
                or isinstance(values[metric], bool):
            raise SchemaError(
                f"{where}: objective {metric!r} must be numeric, "
                f"got {values[metric]!r}")
    _require(record, "scalars", dict, where)


def main(argv=None) -> int:
    """Validate journal files given on the command line."""
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.dse journal.json [...]")
        return 2
    for path in paths:
        try:
            with open(path) as stream:
                data = json.load(stream)
            validate_journal(data)
        except (OSError, ValueError, SchemaError) as exc:
            print(f"schema: {path}: {exc}")
            return 2
        print(f"schema: {path}: ok ({data['status']}, "
              f"{len(data['evaluations'])} evaluations, "
              f"{data['paid']} paid)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
