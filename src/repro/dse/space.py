"""Declarative search spaces over scenario specs.

A :class:`SearchSpace` names the *axes* of a design-space exploration —
each axis is a setting key (a :class:`~repro.scenarios.spec.ScenarioSpec`
field alias, a workload parameter, or a ``variant.<param>`` key ranging
over one parameter of any registered atomic variant — exactly the
vocabulary of ``apply_settings``/``repro sweep --axis``) with its
candidate values — plus optional *constraints* that prune invalid
combinations before any simulation runs.  Like specs, spaces are frozen plain data: they
round-trip through ``to_dict``/``from_dict`` into the campaign journal,
so a journal alone reconstructs exactly what was searched.

Constraints are boolean expressions over the axis keys (plus the
handful of arithmetic builtins below), evaluated per combination::

    SearchSpace.from_axes(
        {"bins": [1, 4, 16], "cores": [8, 16]},
        constraints=["bins <= cores"])

A combination survives only if every constraint evaluates truthy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..engine.errors import ConfigError
from ..scenarios.spec import _freeze_value

#: Names a constraint expression may use besides the axis keys.
_CONSTRAINT_BUILTINS = {"abs": abs, "min": min, "max": max, "len": len}


@dataclass(frozen=True)
class SearchSpace:
    """The cartesian axes and pruning constraints of one exploration.

    ``axes`` is a tuple of ``(key, (value, ...))`` pairs in declaration
    order — the order fixes the enumeration order of :meth:`points`,
    which every deterministic sampler depends on.  ``constraints`` is a
    tuple of expression strings.
    """

    axes: tuple
    constraints: tuple = ()

    def __post_init__(self) -> None:
        axes = self.axes
        if isinstance(axes, dict):
            axes = tuple(axes.items())
        frozen = []
        seen = set()
        for entry in axes:
            if not (isinstance(entry, (tuple, list)) and len(entry) == 2):
                raise ConfigError(
                    f"axes entries must be (key, values) pairs, got {entry!r}")
            key, values = entry
            if not key or not isinstance(key, str):
                raise ConfigError(
                    f"axis keys must be non-empty strings, got {key!r}")
            if key in seen:
                raise ConfigError(f"duplicate axis {key!r}")
            seen.add(key)
            values = tuple(_freeze_value(v, f"axis {key!r}") for v in values)
            if not values:
                raise ConfigError(f"axis {key!r} has no values")
            frozen.append((key, values))
        if not frozen:
            raise ConfigError("a search space needs at least one axis")
        object.__setattr__(self, "axes", tuple(frozen))
        constraints = self.constraints
        if isinstance(constraints, str):
            constraints = (constraints,)
        for expr in constraints:
            if not expr or not isinstance(expr, str):
                raise ConfigError(
                    f"constraints must be non-empty strings, got {expr!r}")
        object.__setattr__(self, "constraints", tuple(constraints))

    @classmethod
    def from_axes(cls, axes: dict, constraints=()) -> "SearchSpace":
        """Build from an axes dict (insertion order = axis order)."""
        return cls(axes=tuple(axes.items()), constraints=tuple(constraints))

    # -- enumeration ----------------------------------------------------------

    @property
    def keys(self) -> list:
        """Axis keys in declaration order."""
        return [key for key, _values in self.axes]

    def grid_size(self) -> int:
        """Size of the unconstrained cartesian grid."""
        size = 1
        for _key, values in self.axes:
            size *= len(values)
        return size

    def admits(self, combo: dict) -> bool:
        """Whether every constraint accepts this combination.

        Dotted axis keys (the ``variant.<param>`` axes that range over
        a registered variant's parameters) are exposed to constraint
        expressions with the dots replaced by underscores, since
        ``variant.queue_slots`` is not a Python name — write
        ``variant_queue_slots <= cores``.
        """
        for expr in self.constraints:
            scope = dict(_CONSTRAINT_BUILTINS)
            scope.update(combo)
            scope.update({key.replace(".", "_"): value
                          for key, value in combo.items() if "." in key})
            try:
                accepted = eval(expr, {"__builtins__": {}}, scope)  # noqa: S307
            except Exception as exc:
                raise ConfigError(
                    f"constraint {expr!r} failed on {combo}: {exc}")
            if not accepted:
                return False
        return True

    def points(self) -> list:
        """Every admitted combination, in deterministic grid order.

        The order is the cartesian product with the *last* axis varying
        fastest (``itertools.product`` order over the declared axes),
        minus the combinations rejected by a constraint.
        """
        keys = self.keys
        combos = []
        for values in itertools.product(
                *(values for _key, values in self.axes)):
            combo = dict(zip(keys, values))
            if self.admits(combo):
                combos.append(combo)
        if not combos:
            raise ConfigError(
                f"constraints {list(self.constraints)} prune the entire "
                f"{self.grid_size()}-point grid; nothing to explore")
        return combos

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        # Axes serialize as an *ordered list* of [key, values] pairs,
        # not a mapping: the journal is written with sorted JSON keys,
        # which would silently alphabetize a dict and change the
        # enumeration order a round-tripped space produces.
        return {
            "axes": [[key, list(values)] for key, values in self.axes],
            "constraints": list(self.constraints),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        if not isinstance(data, dict) or "axes" not in data:
            raise ConfigError(f"search-space data needs 'axes', got {data!r}")
        unknown = sorted(set(data) - {"axes", "constraints"})
        if unknown:
            raise ConfigError(f"unknown search-space fields {unknown}")
        axes = data["axes"]
        # Pair-list form (the journal layout) or a plain dict, whose
        # insertion order is the declaration order.
        pairs = axes.items() if isinstance(axes, dict) else axes
        return cls(axes=tuple(tuple(pair) for pair in pairs),
                   constraints=tuple(data.get("constraints", ())))

    def describe(self) -> str:
        """One-line summary for titles and logs."""
        axes = " x ".join(f"{key}[{len(values)}]"
                          for key, values in self.axes)
        if self.constraints:
            axes += f" | {len(self.constraints)} constraint(s)"
        return axes
