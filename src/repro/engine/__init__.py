"""Discrete-event simulation kernel (clock, events, stats, tracing)."""

from .errors import (
    ConfigError,
    DeadlockError,
    KernelError,
    MemoryError_,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from .events import Event, EventQueue, PRIORITY_EARLY, PRIORITY_LATE, PRIORITY_NORMAL
from .simulator import Simulator
from .stats import BankStats, CoreStats, NetworkStats, SimStats
from .trace import TraceRecord, Tracer
from .vcd import VcdWriter, write_vcd

__all__ = [
    "ConfigError",
    "DeadlockError",
    "KernelError",
    "MemoryError_",
    "ProtocolViolation",
    "ReproError",
    "SimulationError",
    "Event",
    "EventQueue",
    "PRIORITY_EARLY",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "Simulator",
    "BankStats",
    "CoreStats",
    "NetworkStats",
    "SimStats",
    "TraceRecord",
    "Tracer",
    "VcdWriter",
    "write_vcd",
]
