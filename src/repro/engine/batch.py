"""Warm-machine pooling for batched simulation.

Campaign throughput — many *small* simulations per second, not one big
one — is dominated by per-point setup: ``Machine`` construction wires
banks, adapters, cores, Qnodes and the network from scratch for every
scenario point, and at smoke fidelity that construction rivals the run
itself.  :class:`BatchRunner` amortizes it: machines are pooled under an
opaque hashable key (the scenario layer derives it from shape + variant
+ seed) and *reset* to their post-build state between points instead of
rebuilt.  ``Machine.reset()`` is bit-exact by contract — every component
restores its post-construction state and the per-core RNG streams
rewind — so a warm machine is observationally identical to a fresh one.

The pool is deliberately conservative about what it reuses: a machine
whose bank adapters do not declare themselves
:attr:`~repro.memory.adapter.AtomicAdapter.RESETTABLE` (e.g. a
third-party variant that predates the reset contract) is rebuilt for
every point, trading the speedup for guaranteed correctness.

This module knows nothing about scenario specs; the grouping policy
lives in :mod:`repro.scenarios.batch`.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..obs import OBS


class BatchRunner:
    """A pool of reusable machines, keyed by machine-equivalence class.

    Two keys are equivalence classes: ``acquire(key, build)`` must only
    be called with the same ``key`` for ``build`` thunks that construct
    interchangeable machines (same shape, variant, seed).  The caller
    loads kernels / runs / harvests stats between ``acquire`` calls; the
    runner resets the machine on the *next* acquisition, so harvested
    state must be copied out before then.
    """

    def __init__(self) -> None:
        self._machines: dict = {}
        #: Machines constructed from scratch (cold points).
        self.builds = 0
        #: Points served by resetting a pooled machine (warm points).
        self.resets = 0

    def acquire(self, key: Hashable, build: Callable[[], "Machine"]):
        """A machine for ``key``: pooled-and-reset when possible, else
        freshly built via ``build()`` (and pooled for next time)."""
        machine = self._machines.get(key)
        if machine is not None and machine.resettable:
            machine.reset()
            self.resets += 1
            if OBS.enabled:
                OBS.inc("pool.reset")
            return machine
        machine = build()
        self.builds += 1
        if OBS.enabled:
            OBS.inc("pool.build")
        self._machines[key] = machine
        return machine

    @property
    def pooled(self) -> int:
        """Distinct machine groups currently held warm."""
        return len(self._machines)

    def clear(self) -> None:
        """Drop every pooled machine (frees the simulated memory)."""
        self._machines.clear()
