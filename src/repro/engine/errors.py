"""Exception hierarchy for the reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with one clause.  Protocol violations (e.g. a
core issuing a second outstanding LRwait, which the paper's §III-b
deadlock-freedom constraint forbids) raise dedicated subclasses so the
test suite can assert that the constraint checking works.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(ReproError):
    """Invalid or inconsistent :class:`~repro.arch.config.SystemConfig`."""


class SimulationError(ReproError):
    """The simulation reached an impossible or corrupt state."""


class DeadlockError(SimulationError):
    """The event queue drained while cores were still blocked.

    This is how the simulator surfaces real deadlocks: a core sleeping
    on an LRwait/Mwait whose wake-up can never arrive leaves the queue
    empty with unfinished kernels.
    """


class ProtocolViolation(SimulationError):
    """Software violated a constraint of the LRSCwait ISA extension.

    Examples: two outstanding LRwait operations from one core (§III-b),
    or an SCwait without a preceding LRwait.
    """


class MemoryError_(SimulationError):
    """Out-of-range or misaligned memory access on the simulated SPM."""


class KernelError(SimulationError):
    """A software kernel coroutine raised an exception while running."""
