"""Discrete-event kernel primitives.

The simulator is event-driven rather than cycle-stepped: every state
change in the modelled hardware (a message arriving at a bank, a core
finishing a compute burst, a Qnode bouncing a ``WakeUpRequest``) is an
:class:`Event` scheduled at an integer cycle.  Sleeping cores therefore
cost no host time, which is what makes simulating the paper's
polling-free primitives cheap: a core blocked in ``LRwait`` produces no
events until the memory controller releases its response.

Determinism
-----------
Events are ordered by ``(cycle, priority, sequence)``.  The sequence
number is a monotonically increasing insertion counter, so two events
scheduled for the same cycle with the same priority fire in the order
they were scheduled.  Combined with seeded RNGs this makes every
simulation bit-reproducible, which the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for events that must observe state *before* normal events in
#: the same cycle (e.g. statistics sampling probes).
PRIORITY_EARLY = -1
#: Priority for events that must run after all normal activity of a
#: cycle (e.g. end-of-cycle invariant checks in debug mode).
PRIORITY_LATE = 1


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Instances are ordered by ``(cycle, priority, seq)`` so they can live
    directly in a binary heap.  ``fn`` is excluded from comparisons.
    """

    cycle: int
    priority: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it lazily when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic binary-heap event queue.

    The queue only deals in *absolute* cycles; relative scheduling is the
    simulator's job.  Cancelled events are dropped lazily on pop, which
    keeps cancellation O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cycle: int, fn: Callable[[], None],
             priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn`` to run at absolute time ``cycle``.

        Returns the :class:`Event` handle, which supports ``cancel()``.
        """
        if cycle < 0:
            raise ValueError(f"cannot schedule event at negative cycle {cycle}")
        event = Event(cycle, priority, next(self._counter), fn)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_cycle(self) -> Optional[int]:
        """Cycle of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].cycle

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
