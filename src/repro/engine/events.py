"""Discrete-event kernel primitives.

The simulator is event-driven rather than cycle-stepped: every state
change in the modelled hardware (a message arriving at a bank, a core
finishing a compute burst, a Qnode bouncing a ``WakeUpRequest``) is an
:class:`Event` scheduled at an integer cycle.  Sleeping cores therefore
cost no host time, which is what makes simulating the paper's
polling-free primitives cheap: a core blocked in ``LRwait`` produces no
events until the memory controller releases its response.

Determinism
-----------
Events are ordered by ``(cycle, priority, sequence)``.  The sequence
number is a monotonically increasing insertion counter, so two events
scheduled for the same cycle with the same priority fire in the order
they were scheduled.  Combined with seeded RNGs this makes every
simulation bit-reproducible, which the test suite relies on.

Performance
-----------
The heap stores plain ``[cycle, priority, seq, fn, arg]`` lists, not
event objects: list comparison runs element-wise at C speed during
every ``heappush``/``heappop`` sift (``seq`` is unique, so ``fn`` is
never compared), and scheduling allocates nothing but the entry itself.
``arg`` is :data:`NO_ARG` for plain thunks; otherwise the run loop
calls ``fn(arg)``, which lets message delivery schedule a bound handler
plus payload instead of allocating a closure per message.  Cancellation
clears the entry's ``fn`` slot in place; the queue drops dead entries
lazily on pop, keeping cancellation O(1).

:class:`Event` handles exist only where a caller may want to cancel:
:meth:`EventQueue.push` appends the handle as a fifth entry slot so the
pop side can hand the same object back.  The simulator's hot
``schedule`` path (see :mod:`repro.engine.simulator`) bypasses handle
creation entirely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for events that must observe state *before* normal events in
#: the same cycle (e.g. statistics sampling probes).
PRIORITY_EARLY = -1
#: Priority for events that must run after all normal activity of a
#: cycle (e.g. end-of-cycle invariant checks in debug mode).
PRIORITY_LATE = 1

#: Sentinel marking a no-argument callback (``arg`` slot), so ``None``
#: stays usable as a real argument value.
NO_ARG = object()

#: Heap-entry slot indices (entries are ``[cycle, priority, seq, fn,
#: arg]`` lists, plus an optional trailing :class:`Event` handle).
(SLOT_CYCLE, SLOT_PRIORITY, SLOT_SEQ, SLOT_FN, SLOT_ARG,
 SLOT_HANDLE) = range(6)


class Event:
    """A cancellable handle onto one scheduled callback.

    The handle is a view over the queue's heap entry: ``cancel()``
    clears the entry's callback slot in place, which the run loop and
    ``pop()`` treat as a dead entry.  Handles order by
    ``(cycle, priority, seq)``.
    """

    __slots__ = ("_entry",)

    def __init__(self, cycle: int, priority: int, seq: int,
                 fn: Optional[Callable[[], None]],
                 cancelled: bool = False) -> None:
        self._entry = [cycle, priority, seq, None if cancelled else fn,
                       NO_ARG, self]

    @classmethod
    def _adopt(cls, entry: list) -> "Event":
        """Wrap an existing handle-less heap entry (lazy materialize)."""
        event = object.__new__(cls)
        entry.append(event)
        event._entry = entry
        return event

    @property
    def cycle(self) -> int:
        return self._entry[SLOT_CYCLE]

    @property
    def priority(self) -> int:
        return self._entry[SLOT_PRIORITY]

    @property
    def seq(self) -> int:
        return self._entry[SLOT_SEQ]

    @property
    def fn(self) -> Optional[Callable[[], None]]:
        """The scheduled callback; ``None`` once cancelled."""
        return self._entry[SLOT_FN]

    @property
    def cancelled(self) -> bool:
        return self._entry[SLOT_FN] is None

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it lazily when popped."""
        self._entry[SLOT_FN] = None

    def _key(self) -> tuple:
        entry = self._entry
        return (entry[SLOT_CYCLE], entry[SLOT_PRIORITY], entry[SLOT_SEQ])

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        flag = " cancelled" if self.cancelled else ""
        return (f"Event(cycle={self.cycle}, priority={self.priority}, "
                f"seq={self.seq}{flag})")


class EventQueue:
    """A deterministic binary-heap event queue.

    The queue only deals in *absolute* cycles; relative scheduling is
    the simulator's job.  ``_heap`` holds the raw entry lists described
    in the module docstring; :class:`~repro.engine.simulator.Simulator`
    drains it directly with :mod:`heapq` to skip a method call per
    event.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cycle: int, fn: Callable[[], None],
             priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn`` to run at absolute time ``cycle``.

        Returns the :class:`Event` handle, which supports ``cancel()``.
        """
        if cycle < 0:
            raise ValueError(f"cannot schedule event at negative cycle {cycle}")
        event = Event(cycle, priority, next(self._counter), fn)
        heapq.heappush(self._heap, event._entry)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Handle-less entries (scheduled through the simulator's raw fast
        path) get a handle materialized on the way out, so callers see
        a uniform API.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[SLOT_FN] is None:
                continue
            if len(entry) > SLOT_HANDLE:
                return entry[SLOT_HANDLE]
            return Event._adopt(entry)
        return None

    def peek_cycle(self) -> Optional[int]:
        """Cycle of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][SLOT_FN] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][SLOT_CYCLE]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
