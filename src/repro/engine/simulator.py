"""The simulation kernel.

:class:`Simulator` owns the clock and the event queue and offers the
scheduling API every modelled component uses.  It knows nothing about
cores, banks or messages — those register *completion conditions* and
*blocked-agent reporting* hooks so the kernel can distinguish a finished
run from a deadlocked one (paper §III: LRSCwait is blocking, so a buggy
kernel that never issues its SCwait deadlocks its successors; we detect
and report exactly that).
"""

from __future__ import annotations

from typing import Callable, Optional

from .errors import DeadlockError, SimulationError
from .events import Event, EventQueue, PRIORITY_NORMAL
from .trace import Tracer


class Simulator:
    """Deterministic discrete-event simulator with an integer cycle clock."""

    def __init__(self, max_cycles: int = 100_000_000,
                 tracer: Optional[Tracer] = None) -> None:
        self.now: int = 0
        self.max_cycles = max_cycles
        self.tracer = tracer or Tracer(enabled=False)
        self._queue = EventQueue()
        #: Callbacks returning a human-readable description of any agent
        #: still blocked; consulted when the event queue drains.
        self._blocked_reporters: list[Callable[[], list]] = []
        self._finished = False

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[[], None],
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Run ``fn`` ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} at cycle {self.now}")
        return self._queue.push(self.now + delay, fn, priority)

    def schedule_at(self, cycle: int, fn: Callable[[], None],
                    priority: int = PRIORITY_NORMAL) -> Event:
        """Run ``fn`` at absolute ``cycle`` (must not be in the past)."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule at {cycle}, now is {self.now}")
        return self._queue.push(cycle, fn, priority)

    # -- deadlock detection hooks -------------------------------------------

    def add_blocked_reporter(self, fn: Callable[[], list]) -> None:
        """Register a callback listing agents that are still blocked.

        Each callback returns a list of strings describing blocked
        agents (empty when none).  When the event queue drains, a
        non-empty union means deadlock.
        """
        self._blocked_reporters.append(fn)

    def _blocked_agents(self) -> list:
        agents: list = []
        for reporter in self._blocked_reporters:
            agents.extend(reporter())
        return agents

    # -- run loop ------------------------------------------------------------

    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain events until done; return the final cycle.

        ``until`` is an optional predicate evaluated after every event;
        when it returns ``True`` the run stops early (used by
        time-boxed workloads).  If the queue drains while registered
        reporters still list blocked agents, :class:`DeadlockError` is
        raised with the agent list — this is the §III progress-guarantee
        failure mode made observable.
        """
        while True:
            event = self._queue.pop()
            if event is None:
                blocked = self._blocked_agents()
                if blocked:
                    raise DeadlockError(
                        "event queue drained with blocked agents: "
                        + "; ".join(blocked))
                self._finished = True
                return self.now
            if event.cycle > self.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles} "
                    f"(runaway simulation?)")
            if event.cycle < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = event.cycle
            event.fn()
            if until is not None and until():
                self._finished = True
                return self.now

    def run_for(self, cycles: int) -> int:
        """Run until the clock passes ``self.now + cycles`` or events drain.

        Unlike :meth:`run`, draining the queue early is *not* treated as
        deadlock here; time-boxed workloads legitimately stop issuing
        work.  Returns the final cycle.
        """
        deadline = self.now + cycles
        while True:
            next_cycle = self._queue.peek_cycle()
            if next_cycle is None or next_cycle > deadline:
                self.now = min(deadline, self.max_cycles)
                return self.now
            event = self._queue.pop()
            assert event is not None
            self.now = event.cycle
            event.fn()

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
