"""The simulation kernel.

:class:`Simulator` owns the clock and the event queue and offers the
scheduling API every modelled component uses.  It knows nothing about
cores, banks or messages — those register *completion conditions* and
*blocked-agent reporting* hooks so the kernel can distinguish a finished
run from a deadlocked one (paper §III: LRSCwait is blocking, so a buggy
kernel that never issues its SCwait deadlocks its successors; we detect
and report exactly that).

Hot-path design
---------------
``schedule``/``schedule_at`` allocate nothing but the raw heap entry —
no :class:`~repro.engine.events.Event` handle — because no modelled
component ever cancels (use :meth:`Simulator.schedule_event` when you
need a cancellable handle).  The run loop drains the heap directly with
:mod:`heapq`, writes the clock only when the cycle actually changes (a
burst of same-cycle events costs one clock update, and the runaway /
monotonicity guards run per cycle instead of per event), and hoists the
``until`` predicate out of the loop entirely when none is installed.
Together with the C-speed list-entry comparisons this roughly halves
the per-event cost of the seed kernel (see ``BENCH_engine.json``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

from .errors import DeadlockError, SimulationError
from .events import Event, EventQueue, NO_ARG, PRIORITY_NORMAL
from .trace import Tracer


class Simulator:
    """Deterministic discrete-event simulator with an integer cycle clock."""

    __slots__ = ("now", "max_cycles", "tracer", "telemetry", "_queue",
                 "_heap", "_counter", "_blocked_reporters", "_finished")

    def __init__(self, max_cycles: int = 100_000_000,
                 tracer: Optional[Tracer] = None,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.now: int = 0
        self.max_cycles = max_cycles
        self.tracer = tracer or Tracer(enabled=False)
        if telemetry is None:
            # Deferred import: at construction time every module is
            # loaded, so this cannot cycle regardless of the order in
            # which the engine/telemetry packages import each other.
            from ..telemetry.hub import Telemetry
            telemetry = Telemetry()
        #: Telemetry hook hub shared by every component of this
        #: simulation; probes subscribe here (see :mod:`repro.telemetry`).
        self.telemetry = telemetry
        self._queue = EventQueue()
        # Aliases into the queue's internals for the zero-indirection
        # hot path; the queue never reassigns either.
        self._heap = self._queue._heap
        self._counter = self._queue._counter
        #: Callbacks returning a human-readable description of any agent
        #: still blocked; consulted when the event queue drains.
        self._blocked_reporters: list = []
        self._finished = False

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, fn: Callable,
                 priority: int = PRIORITY_NORMAL, arg=NO_ARG,
                 _heappush=heappush, _next=next) -> None:
        """Run ``fn`` ``delay`` cycles from now (``delay >= 0``).

        This is the fire-and-forget fast path: it returns no handle.
        Use :meth:`schedule_event` if the event may need cancelling.
        With ``arg`` the callback fires as ``fn(arg)`` — delivery paths
        use this to avoid allocating a closure per message.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} at cycle {self.now}")
        _heappush(self._heap,
                  [self.now + delay, priority, _next(self._counter), fn, arg])

    def schedule_at(self, cycle: int, fn: Callable,
                    priority: int = PRIORITY_NORMAL, arg=NO_ARG,
                    _heappush=heappush, _next=next) -> None:
        """Run ``fn`` at absolute ``cycle`` (must not be in the past)."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule at {cycle}, now is {self.now}")
        _heappush(self._heap,
                  [cycle, priority, _next(self._counter), fn, arg])

    def schedule_event(self, delay: int, fn: Callable[[], None],
                       priority: int = PRIORITY_NORMAL) -> Event:
        """Like :meth:`schedule` but returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} at cycle {self.now}")
        return self._queue.push(self.now + delay, fn, priority)

    def reset(self) -> None:
        """Rewind the clock and drop every queued event (warm reuse).

        Used by the batch runner to return a finished simulator to its
        post-construction state without rebuilding.  The heap is cleared
        *in place* — components hold aliases into it — and the event
        counter deliberately keeps counting: sequence numbers only break
        ties between same-cycle entries relatively, so continuing the
        count cannot change any observable ordering.  Registered blocked
        reporters are kept; they belong to the machine, not to one run.
        """
        self.now = 0
        self._finished = False
        del self._heap[:]

    # -- deadlock detection hooks -------------------------------------------

    def add_blocked_reporter(self, fn: Callable[[], list]) -> None:
        """Register a callback listing agents that are still blocked.

        Each callback returns a list of strings describing blocked
        agents (empty when none).  When the event queue drains, a
        non-empty union means deadlock.
        """
        self._blocked_reporters.append(fn)

    def _blocked_agents(self) -> list:
        agents: list = []
        for reporter in self._blocked_reporters:
            agents.extend(reporter())
        return agents

    # -- run loop ------------------------------------------------------------

    def run(self, until: Optional[Callable[[], bool]] = None,
            _heappop=heappop) -> int:
        """Drain events until done; return the final cycle.

        ``until`` is an optional predicate evaluated after every event;
        when it returns ``True`` the run stops early (used by
        time-boxed workloads).  If the queue drains while registered
        reporters still list blocked agents, :class:`DeadlockError` is
        raised with the agent list — this is the §III progress-guarantee
        failure mode made observable.
        """
        heap = self._heap
        max_cycles = self.max_cycles
        no_arg = NO_ARG
        now = self.now
        if until is None:
            while heap:
                entry = _heappop(heap)
                fn = entry[3]
                if fn is None:          # cancelled, dropped lazily
                    continue
                cycle = entry[0]
                if cycle != now:
                    if cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded max_cycles={max_cycles} "
                            f"(runaway simulation?)")
                    if cycle < now:
                        raise SimulationError(
                            "event queue went backwards in time")
                    now = self.now = cycle
                arg = entry[4]
                if arg is no_arg:
                    fn()
                else:
                    fn(arg)
        else:
            while heap:
                entry = _heappop(heap)
                fn = entry[3]
                if fn is None:
                    continue
                cycle = entry[0]
                if cycle != now:
                    if cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded max_cycles={max_cycles} "
                            f"(runaway simulation?)")
                    if cycle < now:
                        raise SimulationError(
                            "event queue went backwards in time")
                    now = self.now = cycle
                arg = entry[4]
                if arg is no_arg:
                    fn()
                else:
                    fn(arg)
                if until():
                    self._finished = True
                    return now
        blocked = self._blocked_agents()
        if blocked:
            raise DeadlockError(
                "event queue drained with blocked agents: "
                + "; ".join(blocked))
        self._finished = True
        return now

    def run_for(self, cycles: int, _heappop=heappop) -> int:
        """Run until the clock passes ``self.now + cycles`` or events drain.

        Unlike :meth:`run`, draining the queue early is *not* treated as
        deadlock here; time-boxed workloads legitimately stop issuing
        work.  Returns the final cycle.
        """
        deadline = self.now + cycles
        heap = self._heap
        no_arg = NO_ARG
        while heap:
            entry = heap[0]
            if entry[0] > deadline:
                break
            _heappop(heap)
            fn = entry[3]
            if fn is None:
                continue
            self.now = entry[0]
            arg = entry[4]
            if arg is no_arg:
                fn()
            else:
                fn(arg)
        self.now = min(deadline, self.max_cycles)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of queued entries (cancelled-but-unpopped included)."""
        return len(self._heap)
