"""Simulation statistics.

The energy model (Table II) and all throughput/fairness results
(Figs. 3-6) are pure functions of the counters collected here, so the
counters are the contract between the behavioural simulator and the
evaluation harness.  Every counter is documented with the physical event
it counts.

Three granularities exist:

* :class:`CoreStats` — one per simulated core.  Splits core time into
  *active* (fetching/executing), *stalled* (waiting for an ordinary
  memory response) and *sleeping* (waiting for a withheld LRwait/Mwait
  response — the polling-free state the paper introduces).
* :class:`BankStats` — one per SPM bank; counts port usage and
  conflicts, i.e. the serialization the paper attributes contention to.
* :class:`NetworkStats` — global message/hop counts, i.e. the traffic
  that retries and polling inject and that LRSCwait removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Per-core activity counters."""

    core_id: int = 0
    #: Cycles spent executing instructions (compute or issuing requests).
    active_cycles: int = 0
    #: Cycles stalled on an in-flight ordinary memory operation.
    stalled_cycles: int = 0
    #: Cycles asleep waiting for a withheld LRwait/Mwait response.
    sleep_cycles: int = 0
    #: Dynamic instruction count (compute instructions, modelled 1/cycle).
    instructions: int = 0
    #: Memory requests issued, by mnemonic (``"lw"``, ``"sc"``...).
    requests: dict = field(default_factory=dict)
    #: Failed SC / SCwait operations (each one costs a retry round trip).
    sc_failures: int = 0
    #: Successful SC / SCwait operations.
    sc_successes: int = 0
    #: LRwait/Mwait requests rejected because the hardware queue was full.
    wait_rejections: int = 0
    #: Completed application-level operations (histogram updates,
    #: queue accesses...).  Kernels bump this through ``CoreApi.retire()``.
    ops_completed: int = 0

    def count_request(self, mnemonic: str) -> None:
        """Record one issued memory request of the given mnemonic."""
        self.requests[mnemonic] = self.requests.get(mnemonic, 0) + 1

    def reset(self) -> None:
        """Zero every counter (warm machine reuse); keeps ``core_id``."""
        self.active_cycles = 0
        self.stalled_cycles = 0
        self.sleep_cycles = 0
        self.instructions = 0
        self.requests.clear()
        self.sc_failures = 0
        self.sc_successes = 0
        self.wait_rejections = 0
        self.ops_completed = 0

    def snapshot(self) -> "CoreStats":
        """A detached, equal copy (cheap ``deepcopy`` for warm reuse)."""
        return CoreStats(
            core_id=self.core_id, active_cycles=self.active_cycles,
            stalled_cycles=self.stalled_cycles,
            sleep_cycles=self.sleep_cycles,
            instructions=self.instructions,
            requests=dict(self.requests), sc_failures=self.sc_failures,
            sc_successes=self.sc_successes,
            wait_rejections=self.wait_rejections,
            ops_completed=self.ops_completed)

    @property
    def total_requests(self) -> int:
        """All memory requests issued by this core."""
        return sum(self.requests.values())

    @property
    def total_cycles(self) -> int:
        """Accounted lifetime of the core (active + stalled + sleeping)."""
        return self.active_cycles + self.stalled_cycles + self.sleep_cycles


@dataclass
class BankStats:
    """Per-bank port counters."""

    bank_id: int = 0
    #: Requests serviced by the bank port (one per cycle max).
    accesses: int = 0
    #: Requests that found the port busy and had to queue.
    conflicts: int = 0
    #: Cycles the port spent busy (== accesses for a 1/cycle port).
    busy_cycles: int = 0
    #: Reservations placed (LR / LRwait / Mwait accepted).
    reservations_placed: int = 0
    #: Reservations killed by an interfering write.
    reservations_invalidated: int = 0

    def reset(self) -> None:
        """Zero every counter (warm machine reuse); keeps ``bank_id``."""
        self.accesses = 0
        self.conflicts = 0
        self.busy_cycles = 0
        self.reservations_placed = 0
        self.reservations_invalidated = 0

    def snapshot(self) -> "BankStats":
        """A detached, equal copy (cheap ``deepcopy`` for warm reuse)."""
        return BankStats(
            bank_id=self.bank_id, accesses=self.accesses,
            conflicts=self.conflicts, busy_cycles=self.busy_cycles,
            reservations_placed=self.reservations_placed,
            reservations_invalidated=self.reservations_invalidated)

    @property
    def conflict_rate(self) -> float:
        """Fraction of requests that queued behind a busy port."""
        if self.accesses == 0:
            return 0.0
        return self.conflicts / self.accesses


@dataclass
class NetworkStats:
    """Global interconnect counters."""

    #: Messages injected, by message kind name.
    messages: dict = field(default_factory=dict)
    #: Sum over messages of the hop count of their route.
    hops: int = 0
    #: Total cycles requests queued at saturated tile-ingress ports —
    #: the interference metric behind Fig. 5.
    ingress_wait_cycles: int = 0

    def count_message(self, kind: str, hop_count: int) -> None:
        """Record one delivered message of ``kind`` traversing ``hop_count`` hops."""
        self.messages[kind] = self.messages.get(kind, 0) + 1
        self.hops += hop_count

    def reset(self) -> None:
        """Zero every counter (warm machine reuse)."""
        self.messages.clear()
        self.hops = 0
        self.ingress_wait_cycles = 0

    def snapshot(self) -> "NetworkStats":
        """A detached, equal copy (cheap ``deepcopy`` for warm reuse)."""
        return NetworkStats(messages=dict(self.messages), hops=self.hops,
                            ingress_wait_cycles=self.ingress_wait_cycles)

    @property
    def total_messages(self) -> int:
        """All messages delivered by the interconnect."""
        return sum(self.messages.values())


@dataclass
class SimStats:
    """Aggregated statistics of one simulation run."""

    cores: list = field(default_factory=list)
    banks: list = field(default_factory=list)
    network: NetworkStats = field(default_factory=NetworkStats)
    #: Final simulated cycle at which the run terminated.
    cycles: int = 0
    #: The :class:`~repro.memory.variants.VariantSpec` of the machine
    #: that produced this run (set by :class:`~repro.machine.Machine`);
    #: lets the energy model apply the variant's registered cost hook.
    variant: object = None

    def reset(self) -> None:
        """Zero every counter tree (warm machine reuse); keeps
        ``variant`` and the per-core/per-bank object identities."""
        for core in self.cores:
            core.reset()
        for bank in self.banks:
            bank.reset()
        self.network.reset()
        self.cycles = 0

    def snapshot(self) -> "SimStats":
        """A detached copy that compares equal to this tree.

        The hand-rolled equivalent of ``copy.deepcopy`` for the one
        shape that matters on the batch hot path — detaching a pooled
        machine's counters into a result costs microseconds instead of
        the ~half millisecond generic deepcopy spends re-discovering
        the structure.  ``variant`` is shared, not copied: it is the
        immutable spec of the producing machine.
        """
        return SimStats(
            cores=[core.snapshot() for core in self.cores],
            banks=[bank.snapshot() for bank in self.banks],
            network=self.network.snapshot(),
            cycles=self.cycles, variant=self.variant)

    # -- aggregate helpers -------------------------------------------------

    @property
    def total_ops(self) -> int:
        """Application-level operations retired across all cores."""
        return sum(c.ops_completed for c in self.cores)

    @property
    def throughput(self) -> float:
        """Operations retired per cycle (the y-axis of Figs. 3, 4, 6)."""
        if self.cycles == 0:
            return 0.0
        return self.total_ops / self.cycles

    @property
    def total_sc_failures(self) -> int:
        """System-wide failed SC/SCwait count (retry traffic)."""
        return sum(c.sc_failures for c in self.cores)

    @property
    def total_requests(self) -> int:
        """System-wide memory requests issued."""
        return sum(c.total_requests for c in self.cores)

    @property
    def total_active_cycles(self) -> int:
        """Sum of active cycles over all cores."""
        return sum(c.active_cycles for c in self.cores)

    @property
    def total_sleep_cycles(self) -> int:
        """Sum of sleeping cycles over all cores."""
        return sum(c.sleep_cycles for c in self.cores)

    @property
    def total_stalled_cycles(self) -> int:
        """Sum of stall cycles over all cores."""
        return sum(c.stalled_cycles for c in self.cores)

    def ops_per_core(self) -> list:
        """Retired op count per core (fairness band of Fig. 6)."""
        return [c.ops_completed for c in self.cores]

    def fairness_range(self) -> tuple:
        """``(min, max)`` per-core retired ops — the shaded band in Fig. 6."""
        ops = self.ops_per_core()
        participating = [o for o in ops if o > 0] or ops
        if not participating:
            return (0, 0)
        return (min(participating), max(participating))

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-core retired operations.

        1.0 means perfectly even progress; 1/n means a single core made
        all the progress.  The paper reports fairness qualitatively via
        the min/max band; Jain's index condenses it to a scalar for
        tests and tables.
        """
        ops = self.ops_per_core()
        total = sum(ops)
        if total == 0:
            return 1.0
        square_sum = sum(o * o for o in ops)
        return (total * total) / (len(ops) * square_sum)
