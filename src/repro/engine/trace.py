"""Lightweight simulation tracing.

Tracing exists for debugging protocol interleavings (e.g. the Colibri
``SuccessorUpdate`` / ``WakeUpRequest`` races argued correct in paper
§IV-A).  It is disabled by default and costs one branch per call when
off.  When on, records are kept in memory as tuples and can be rendered
or filtered after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class TraceRecord:
    """One traced occurrence."""

    cycle: int
    source: str
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"[{self.cycle:>8}] {self.source:<16} {self.kind:<20} {self.detail}"


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    enabled: bool = False
    records: list = field(default_factory=list)
    #: Optional whitelist of record kinds; ``None`` records everything.
    kinds: Optional[set] = None

    def log(self, cycle: int, source: str, kind: str, detail: str = "") -> None:
        """Record one occurrence if tracing is on and the kind passes."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(cycle, source, kind, detail))

    def filter(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> Iterable[TraceRecord]:
        """Yield records matching the given kind and/or source prefix."""
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and not record.source.startswith(source):
                continue
            yield record

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump of (up to ``limit``) records."""
        chosen = self.records if limit is None else self.records[:limit]
        return "\n".join(str(record) for record in chosen)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
