"""VCD (Value Change Dump) export of simulation traces.

Turns a :class:`~repro.engine.trace.Tracer` recording into a waveform
file viewable in GTKWave or any EDA waveform viewer:

* one string signal per **core** showing its FSM state (``active`` /
  ``stalled`` / ``sleeping`` / ``finished``);
* one string signal per **bank** showing the operation it services
  each cycle (``lrwait``, ``scwait``, ``amoadd``, ``wakeup_request``,
  …), returning to idle the cycle after.

String-typed VCD variables (``$var string``) are a GTKWave extension
that every mainstream viewer renders; they keep the dump
self-describing without an opcode legend.

Usage::

    tracer = Tracer(enabled=True)
    machine = Machine(config, variant, tracer=tracer)
    ...run...
    write_vcd(tracer, machine.config, "run.vcd")
"""

from __future__ import annotations

from typing import Optional, TextIO

from ..arch.config import SystemConfig
from .trace import Tracer

#: Trace kinds that represent a bank servicing something.
_IDLE = "idle"


def _identifier(index: int) -> str:
    """Compact VCD identifier codes (printable ASCII 33..126)."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index, 94)
        chars.append(chr(33 + digit))
    return "".join(chars)


class VcdWriter:
    """Minimal VCD writer for string-valued signals."""

    def __init__(self, stream: TextIO, timescale: str = "1ns") -> None:
        self.stream = stream
        self.timescale = timescale
        self._signals: dict = {}   # name -> id code
        self._header_done = False
        self._time: Optional[int] = None
        self._pending: list = []

    def add_signal(self, scope: str, name: str) -> str:
        """Declare one string signal; returns its id code."""
        if self._header_done:
            raise ValueError("cannot add signals after the header")
        code = _identifier(len(self._signals))
        self._signals[(scope, name)] = code
        return code

    def _write_header(self) -> None:
        write = self.stream.write
        write(f"$timescale {self.timescale} $end\n")
        scopes: dict = {}
        for (scope, name), code in self._signals.items():
            scopes.setdefault(scope, []).append((name, code))
        for scope in sorted(scopes):
            write(f"$scope module {scope} $end\n")
            for name, code in scopes[scope]:
                write(f"$var string 1 {code} {name} $end\n")
            write("$upscope $end\n")
        write("$enddefinitions $end\n")
        self._header_done = True

    def change(self, time: int, code: str, value: str) -> None:
        """Record a value change (times must be non-decreasing)."""
        if not self._header_done:
            self._write_header()
        if self._time is None or time > self._time:
            self._flush_pending()
            self.stream.write(f"#{time}\n")
            self._time = time
        elif time < self._time:
            raise ValueError("VCD changes must be time-ordered")
        safe = value.replace(" ", "_") or _IDLE
        self._pending.append(f"s{safe} {code}\n")

    def _flush_pending(self) -> None:
        for line in self._pending:
            self.stream.write(line)
        self._pending.clear()

    def finalize(self, end_time: Optional[int] = None) -> None:
        """Flush buffered changes and close the dump."""
        if not self._header_done:
            self._write_header()
        self._flush_pending()
        if end_time is not None and (self._time is None
                                     or end_time > self._time):
            self.stream.write(f"#{end_time}\n")


def write_vcd(tracer: Optional[Tracer], config: SystemConfig, path: str,
              core_states: Optional[dict] = None) -> int:
    """Convert a trace recording into a VCD file; returns #changes.

    Core signals come from ``core_state`` records; bank signals from
    the per-request service records, with an automatic return-to-idle
    one cycle after each service (banks are single-cycle here).

    ``core_states`` merges telemetry core-state timelines in as the
    same core signals: a mapping ``core_id -> [(state, start, end),
    ...]`` as produced by the ``core_timeline`` probe (each span opens a
    change at its start cycle).  With ``tracer=None`` the dump contains
    only those telemetry signals — the ``repro trace --format vcd``
    path, which needs no Tracer at all.
    """
    core_records = []
    bank_records = []
    records = tracer.records if tracer is not None else []
    for record in records:
        if record.kind == "core_state":
            core_records.append(record)
        elif record.source.startswith("bank"):
            bank_records.append(record)

    changes: list = []  # (time, source, value)
    for record in core_records:
        changes.append((record.cycle, record.source, record.detail))
    for core_id, spans in sorted((core_states or {}).items()):
        for state, start, _end in spans:
            changes.append((start, f"core{core_id}", state))
    for record in bank_records:
        changes.append((record.cycle, record.source, record.kind))
        changes.append((record.cycle + config.latency.bank_cycles,
                        record.source, _IDLE))
    # Return-to-idle entries may be overridden by a same-cycle service:
    # sort by time, idle-first so the service wins within a cycle.
    changes.sort(key=lambda c: (c[0], 0 if c[2] == _IDLE else 1))

    sources = sorted({source for _t, source, _v in changes})
    with open(path, "w") as stream:
        writer = VcdWriter(stream)
        codes = {}
        for source in sources:
            scope = "cores" if source.startswith("core") else "banks"
            codes[source] = writer.add_signal(scope, source)
        last: dict = {}
        count = 0
        for time, source, value in changes:
            if last.get(source) == value:
                continue
            writer.change(time, codes[source], value)
            last[source] = value
            count += 1
        writer.finalize()
    return count
