"""Evaluation harness: one runner per table and figure of the paper."""

from .analysis import (
    bank_pressure,
    core_time_breakdown,
    message_breakdown,
    summarize,
)
from .export import export_all
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, QueuePoint, queue_spec, run_fig6, \
    run_queue_point
from .harness import (
    FIG3_SERIES,
    FIG4_SERIES,
    HistogramPoint,
    SeriesSpec,
    TABLE2_SERIES,
    histogram_spec,
    run_histogram_point,
    sweep_bins,
)
from .reporting import render_series, render_table
from .runner import (
    ExperimentCall,
    ResultCache,
    jobs_argument,
    resolve_jobs,
    run_experiments,
    run_grid,
)
from .table1 import Table1Result, run_table1, scaling_table
from .table2 import Table2Result, run_table2, table2_specs

__all__ = [
    "bank_pressure",
    "core_time_breakdown",
    "message_breakdown",
    "summarize",
    "export_all",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "QueuePoint",
    "queue_spec",
    "run_fig6",
    "run_queue_point",
    "FIG3_SERIES",
    "FIG4_SERIES",
    "HistogramPoint",
    "SeriesSpec",
    "TABLE2_SERIES",
    "histogram_spec",
    "run_histogram_point",
    "sweep_bins",
    "table2_specs",
    "render_series",
    "render_table",
    "ExperimentCall",
    "ResultCache",
    "jobs_argument",
    "resolve_jobs",
    "run_experiments",
    "run_grid",
    "Table1Result",
    "run_table1",
    "scaling_table",
    "Table2Result",
    "run_table2",
]
