"""Post-run analysis: where did the cycles and messages go?

The raw :class:`~repro.engine.stats.SimStats` counters answer *what*
happened; this module turns them into the diagnoses a user of the
library actually asks for:

* :func:`bank_pressure` — per-bank access counts and conflict rates,
  sorted hottest-first (is one bin/bank the bottleneck?);
* :func:`core_time_breakdown` — system-wide active/stall/sleep split
  (is the workload polling or sleeping?);
* :func:`message_breakdown` — interconnect traffic by message kind
  (how much is retries, how much is Colibri protocol overhead?);
* :func:`summarize` — a one-page report combining all of the above.

Everything is a pure function of a finished run's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.stats import SimStats
from .reporting import render_table

#: Message kinds that exist only because of retries/polling: the LR/SC
#: pair re-issued after failures is indistinguishable from first tries,
#: so retry traffic is estimated from failed-SC counts instead.
PROTOCOL_KINDS = ("successor_update", "wakeup_request")


@dataclass
class BankPressure:
    """Hot-bank summary."""

    bank_id: int
    accesses: int
    conflicts: int
    share: float  # fraction of all bank accesses

    @property
    def conflict_rate(self) -> float:
        """Fraction of this bank's requests that queued."""
        if self.accesses == 0:
            return 0.0
        return self.conflicts / self.accesses


def bank_pressure(stats: SimStats, top: int = 8) -> list:
    """The ``top`` hottest banks, sorted by access count."""
    total = sum(b.accesses for b in stats.banks) or 1
    ranked = sorted(stats.banks, key=lambda b: b.accesses, reverse=True)
    return [BankPressure(bank_id=b.bank_id, accesses=b.accesses,
                         conflicts=b.conflicts,
                         share=b.accesses / total)
            for b in ranked[:top] if b.accesses > 0]


def core_time_breakdown(stats: SimStats) -> dict:
    """System-wide fractions of core time by state."""
    total = (stats.total_active_cycles + stats.total_stalled_cycles
             + stats.total_sleep_cycles) or 1
    return {
        "active": stats.total_active_cycles / total,
        "stalled": stats.total_stalled_cycles / total,
        "sleeping": stats.total_sleep_cycles / total,
    }


def message_breakdown(stats: SimStats) -> dict:
    """Messages by kind, plus derived shares.

    Returns a dict with ``by_kind``, ``protocol_share`` (Colibri
    SuccessorUpdate/WakeUpRequest overhead) and ``retry_estimate``
    (failed SC/SCwait round trips, requests + responses).
    """
    by_kind = dict(stats.network.messages)
    total = sum(by_kind.values()) or 1
    protocol = sum(by_kind.get(kind, 0) for kind in PROTOCOL_KINDS)
    retry_messages = 4 * stats.total_sc_failures  # LR+SC req/resp pairs
    return {
        "by_kind": by_kind,
        "total": total,
        "protocol_share": protocol / total,
        "retry_estimate": min(1.0, retry_messages / total),
    }


def summarize(stats: SimStats, title: str = "run summary") -> str:
    """A one-page plain-text report of a finished run."""
    time_split = core_time_breakdown(stats)
    messages = message_breakdown(stats)
    overview = render_table(
        ["metric", "value"],
        [
            ("cycles", stats.cycles),
            ("ops retired", stats.total_ops),
            ("ops/cycle", round(stats.throughput, 4)),
            ("SC failures", stats.total_sc_failures),
            ("Jain fairness", round(stats.jain_fairness(), 4)),
            ("core time active", f"{time_split['active']:.1%}"),
            ("core time stalled", f"{time_split['stalled']:.1%}"),
            ("core time sleeping", f"{time_split['sleeping']:.1%}"),
            ("messages", messages["total"]),
            ("protocol share", f"{messages['protocol_share']:.1%}"),
            ("retry share (est.)", f"{messages['retry_estimate']:.1%}"),
            ("ingress wait cycles", stats.network.ingress_wait_cycles),
        ],
        title=title)
    hot = bank_pressure(stats, top=5)
    hot_table = render_table(
        ["bank", "accesses", "share", "conflict rate"],
        [(b.bank_id, b.accesses, f"{b.share:.1%}",
          f"{b.conflict_rate:.1%}") for b in hot],
        title="hottest banks")
    return overview + "\n\n" + hot_table
