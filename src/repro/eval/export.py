"""Machine-readable export of experiment results.

Reproduction artifacts should be diffable and plottable without
re-running anything, so every experiment result can be serialized to a
plain-JSON document with a stable schema:

``{"experiment": ..., "parameters": {...}, "series"/"rows": ...}``

:func:`export_all` runs the complete evaluation at a chosen scale and
writes one JSON file per experiment plus an ``index.json`` — this is
what EXPERIMENTS.md's numbers are generated from.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Optional, Sequence

from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2


def fig3_to_dict(result: Fig3Result) -> dict:
    """Schema: bins on the x axis, throughput per series."""
    return {
        "experiment": "fig3",
        "parameters": {"num_cores": result.num_cores,
                       "bins": result.bins},
        "series": result.throughput_series(),
        "headline": {
            "colibri_over_lrsc_at_max_contention":
                result.speedup_over_lrsc(result.bins[0]),
        },
    }


def fig4_to_dict(result: Fig4Result) -> dict:
    """Schema mirrors fig3 with the lock-series legend."""
    return {
        "experiment": "fig4",
        "parameters": {"num_cores": result.num_cores,
                       "bins": result.bins},
        "series": result.throughput_series(),
        "headline": {
            "colibri_wins_everywhere": result.colibri_wins_everywhere(),
        },
    }


def fig5_to_dict(result: Fig5Result) -> dict:
    """Schema: relative worker throughput per poller:worker series."""
    return {
        "experiment": "fig5",
        "parameters": {"num_cores": result.num_cores,
                       "bins": result.bins},
        "series": result.series,
    }


def fig6_to_dict(result: Fig6Result) -> dict:
    """Schema: throughput and fairness per core count."""
    return {
        "experiment": "fig6",
        "parameters": {"core_counts": result.core_counts},
        "series": result.throughput_series(),
        "fairness": result.fairness_series(),
        "headline": {
            "colibri_over_lrsc_at_max":
                result.speedup(result.core_counts[-1]),
        },
    }


def table1_to_dict(result: Table1Result) -> dict:
    """Schema: one row per architecture with model and paper columns."""
    return {
        "experiment": "table1",
        "rows": [
            {"architecture": label, "model_kge": model_kge,
             "model_percent": model_pct, "paper_kge": paper_kge,
             "paper_percent": paper_pct}
            for label, model_kge, model_pct, paper_kge, paper_pct
            in result.rows
        ],
        "headline": {"max_relative_error": result.max_relative_error()},
    }


def table2_to_dict(result: Table2Result) -> dict:
    """Schema: one row per atomic-access flavour."""
    return {
        "experiment": "table2",
        "parameters": {"num_cores": result.num_cores},
        "rows": [
            {"access": label, "power_mw": power, "pj_per_op": pj,
             "delta_percent": delta}
            for label, power, pj, delta in result.rows
        ],
        "headline": {
            "lrsc_over_colibri": result.ratio("LRSC"),
            "lock_over_colibri": result.ratio("Atomic Add lock"),
        },
    }


def write_json(path: str, document: dict) -> str:
    """Write one JSON document (sorted keys, indented); returns path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence]) -> str:
    """Write one tidy CSV table; returns path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        writer.writerows(rows)
    return path


def sweep_to_dict(base_spec, axes: dict, outcomes) -> dict:
    """Schema for ``repro sweep`` exports: one row per grid point.

    ``outcomes`` is the ``[(overrides, result)]`` list
    :func:`repro.scenarios.run.sweep` returns; each row carries the
    point's axis values plus every scalar of its result, so the JSON is
    plottable without re-running anything — the same contract as the
    figure documents above.
    """
    return {
        "experiment": "sweep",
        "parameters": {
            "workload": base_spec.workload,
            "base_spec": base_spec.to_dict(),
            "axes": {key: list(values) for key, values in axes.items()},
        },
        "rows": [dict(combo, **result.scalars())
                 for combo, result in outcomes],
    }


def sweep_table(axes: dict, outcomes) -> tuple:
    """``(headers, rows)`` for the CSV rendering of a sweep."""
    axis_keys = list(axes)
    scalar_keys = sorted({key for _combo, result in outcomes
                          for key in result.scalars()})
    headers = axis_keys + scalar_keys
    rows = []
    for combo, result in outcomes:
        scalars = result.scalars()
        rows.append([combo.get(key, "") for key in axis_keys]
                    + [scalars.get(key, "") for key in scalar_keys])
    return headers, rows


def export_all(directory: str, num_cores: int = 64,
               fig5_cores: Optional[int] = None,
               updates_per_core: int = 8) -> dict:
    """Run everything and write one JSON per experiment + an index.

    Returns the index dict (experiment -> file name).
    """
    fig5_cores = fig5_cores or max(num_cores, 128)
    os.makedirs(directory, exist_ok=True)
    documents = {
        "table1": table1_to_dict(run_table1()),
        "table2": table2_to_dict(run_table2(
            num_cores=num_cores, updates_per_core=updates_per_core)),
        "fig3": fig3_to_dict(run_fig3(
            num_cores=num_cores, updates_per_core=updates_per_core)),
        "fig4": fig4_to_dict(run_fig4(
            num_cores=num_cores, updates_per_core=updates_per_core)),
        "fig5": fig5_to_dict(run_fig5(num_cores=fig5_cores)),
        "fig6": fig6_to_dict(run_fig6(max_cores=num_cores)),
    }
    index = {}
    for name, document in documents.items():
        file_name = f"{name}.json"
        with open(os.path.join(directory, file_name), "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        index[name] = file_name
    with open(os.path.join(directory, "index.json"), "w") as handle:
        json.dump(index, handle, indent=2, sort_keys=True)
    return index
