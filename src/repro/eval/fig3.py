"""Fig. 3 — histogram throughput of LRSCwait implementations vs LRSC.

Paper setup: 256 cores, bins swept 1…1024, y = updates/cycle (log-log).
Series: Atomic Add (roofline), LRSCwait_ideal, LRSCwait_128, LRSCwait_1,
Colibri, LRSC.

Expected shape (paper §V-A):

* LRSCwait_ideal on top of the wait-family across all contentions;
* Colibri within a small penalty of ideal (extra node-update round
  trips) — 6.5× over LRSC at 1 bin, ~13 % at 1024 bins;
* bounded LRSCwait_q collapses once more than ``q`` cores contend;
* Atomic Add above everything (single-instruction roofline).

On scaled systems ``LRSCwait_128`` generalizes to ``q = cores/2``
(the paper's 128 is exactly half of 256).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scenarios.spec import ScenarioSpec
from .harness import FIG3_SERIES, histogram_spec, sweep_bins
from .reporting import render_series

#: Default bin sweep (paper: 1..1024; scaled runs cap at #banks).
FULL_BINS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]

#: Approximate series read off the published Fig. 3 at the sweep's
#: extremes (updates/cycle at 1 bin and 1024 bins, 256 cores) — used
#: for shape comparison in EXPERIMENTS.md, not for exact matching.
PAPER_REFERENCE = {
    "Atomic Add": {"1": 0.30, "1024": 16.0},
    "LRSCwait_ideal": {"1": 0.14, "1024": 7.0},
    "LRSCwait_128": {"1": 0.05, "1024": 6.0},
    "LRSCwait_1": {"1": 0.05, "1024": 6.0},
    "Colibri": {"1": 0.13, "1024": 6.5},
    "LRSC": {"1": 0.02, "1024": 5.8},
}


@dataclass
class Fig3Result:
    """Measured Fig. 3 series."""

    num_cores: int
    bins: list
    points: dict  # label -> [HistogramPoint]

    def throughput_series(self) -> dict:
        """label -> [updates/cycle], aligned with ``bins``."""
        return {label: [p.throughput for p in pts]
                for label, pts in self.points.items()}

    def speedup_over_lrsc(self, num_bins: int) -> float:
        """Colibri/LRSC throughput ratio at one contention level."""
        index = self.bins.index(num_bins)
        colibri = self.points["Colibri"][index].throughput
        lrsc = self.points["LRSC"][index].throughput
        return colibri / lrsc if lrsc else float("inf")

    def render(self) -> str:
        """The figure as a numeric table."""
        return render_series(
            "#Bins", self.bins, self.throughput_series(),
            title=(f"Fig. 3 — histogram updates/cycle "
                   f"({self.num_cores} cores)"))


def point_spec(label: str, num_bins: int, num_cores: int = 64,
               updates_per_core: int = 8, seed: int = 0) -> ScenarioSpec:
    """The scenario spec of one Fig. 3 point, by legend label."""
    by_label = {series.label: series for series in FIG3_SERIES}
    return histogram_spec(by_label[label], num_cores, num_bins,
                          updates_per_core, seed=seed)


def run_fig3(num_cores: int = 64, bins_list=None, updates_per_core: int = 8,
             seed: int = 0, jobs: int = 1, cache=None) -> Fig3Result:
    """Regenerate Fig. 3 at the given scale.

    ``jobs``/``cache`` shard and memoize the sweep's independent points
    (see :mod:`repro.eval.runner`); results are identical for any
    ``jobs`` value.
    """
    if bins_list is None:
        max_banks = (num_cores // 4) * 16
        bins_list = [b for b in FULL_BINS if b <= max_banks]
    points = sweep_bins(FIG3_SERIES, num_cores, bins_list,
                        updates_per_core, seed=seed, jobs=jobs, cache=cache)
    return Fig3Result(num_cores=num_cores, bins=list(bins_list),
                      points=points)
