"""Fig. 4 — lock implementations vs generic RMW atomics.

Paper setup: same histogram as Fig. 3; series Colibri (raw LRSCwait
RMW), Colibri lock, Mwait lock (an MCS lock sleeping on Mwait), LRSC,
LRSC lock, Atomic Add lock.  Spin locks use a 128-cycle backoff.

Expected shape (§V-A): Colibri wins everywhere; LRSC/AMO spin locks
collapse at high contention (polling + retry traffic); the Mwait MCS
lock sits between (management overhead at low contention, graceful at
high contention).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scenarios.spec import ScenarioSpec
from .fig3 import FULL_BINS
from .harness import FIG4_SERIES, histogram_spec, sweep_bins
from .reporting import render_series

#: Approximate values read off the published Fig. 4 (updates/cycle,
#: 256 cores) at the contention extremes.
PAPER_REFERENCE = {
    "Colibri": {"1": 0.13, "1024": 6.5},
    "Colibri lock": {"1": 0.035, "1024": 1.2},
    "Mwait lock": {"1": 0.04, "1024": 0.8},
    "LRSC": {"1": 0.02, "1024": 5.8},
    "LRSC lock": {"1": 0.012, "1024": 1.1},
    "Atomic Add lock": {"1": 0.012, "1024": 1.3},
}


@dataclass
class Fig4Result:
    """Measured Fig. 4 series."""

    num_cores: int
    bins: list
    points: dict

    def throughput_series(self) -> dict:
        """label -> [updates/cycle], aligned with ``bins``."""
        return {label: [p.throughput for p in pts]
                for label, pts in self.points.items()}

    def colibri_wins_everywhere(self) -> bool:
        """The paper's headline: Colibri best at every contention."""
        series = self.throughput_series()
        colibri = series["Colibri"]
        return all(
            colibri[i] >= max(values[i] for values in series.values())
            for i in range(len(self.bins)))

    def render(self) -> str:
        """The figure as a numeric table."""
        return render_series(
            "#Bins", self.bins, self.throughput_series(),
            title=(f"Fig. 4 — lock vs RMW histogram updates/cycle "
                   f"({self.num_cores} cores)"))


def point_spec(label: str, num_bins: int, num_cores: int = 64,
               updates_per_core: int = 8, seed: int = 0) -> ScenarioSpec:
    """The scenario spec of one Fig. 4 point, by legend label."""
    by_label = {series.label: series for series in FIG4_SERIES}
    return histogram_spec(by_label[label], num_cores, num_bins,
                          updates_per_core, seed=seed)


def run_fig4(num_cores: int = 64, bins_list=None, updates_per_core: int = 8,
             seed: int = 0, jobs: int = 1, cache=None) -> Fig4Result:
    """Regenerate Fig. 4 at the given scale.

    ``jobs``/``cache`` shard and memoize the sweep's independent points
    (see :mod:`repro.eval.runner`); results are identical for any
    ``jobs`` value.
    """
    if bins_list is None:
        max_banks = (num_cores // 4) * 16
        bins_list = [b for b in FULL_BINS if b <= max_banks]
    points = sweep_bins(FIG4_SERIES, num_cores, bins_list,
                        updates_per_core, seed=seed, jobs=jobs, cache=cache)
    return Fig4Result(num_cores=num_cores, bins=list(bins_list),
                      points=points)
