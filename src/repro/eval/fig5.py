"""Fig. 5 — matmul performance under interference from atomics.

Paper setup: 256 cores partitioned into pollers (atomic histogram
updates) and workers (matmul); poller:worker ∈ {128:128, 192:64, 248:8,
252:4}; bins swept 1…16; y = worker throughput relative to an
interference-free run.

Expected shape (§V-B): Colibri pollers leave workers essentially
untouched (≈1.0) even at 252:4 and 1 bin, because sleeping cores inject
no traffic; LRSC pollers crush workers (down to ≈0.26 at 252:4)
despite their 128-cycle backoff.

On scaled systems the ratios keep the paper's *worker fractions*:
{1/2, 1/4, 1/32, 1/64} of the cores are workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import SystemConfig
from ..memory.variants import VariantSpec
from ..scenarios.run import run_spec_grid
from .reporting import render_series

#: Worker fractions matching the paper's 256-core ratios.
PAPER_WORKER_FRACTIONS = (0.5, 0.25, 1 / 32, 1 / 64)

#: Bin sweep of the published figure.
FULL_BINS = [1, 4, 8, 12, 16]

#: Approximate values read off the published Fig. 5 (relative worker
#: throughput at 1 bin).
PAPER_REFERENCE = {
    "Colibri, 252:4": 0.99,
    "LRSC, 128:128": 0.88,
    "LRSC, 192:64": 0.80,
    "LRSC, 248:8": 0.45,
    "LRSC, 252:4": 0.26,
}


@dataclass
class Fig5Result:
    """Measured Fig. 5 series."""

    num_cores: int
    bins: list
    series: dict  # label -> [relative throughput per bin count]

    def render(self) -> str:
        """The figure as a numeric table."""
        return render_series(
            "#Bins", self.bins, self.series,
            title=(f"Fig. 5 — relative matmul throughput under "
                   f"interference ({self.num_cores} cores)"))

    def worst_case(self, label: str) -> float:
        """Minimum relative throughput across the sweep for a series."""
        return min(self.series[label])


def _ratio_label(method: str, num_cores: int, num_workers: int) -> str:
    return f"{method}, {num_cores - num_workers}:{num_workers}"


def run_fig5(num_cores: int = 64, bins_list=None, matmul_dim: int = 12,
             seed: int = 0, jobs: int = 1, cache=None) -> Fig5Result:
    """Regenerate Fig. 5 at the given scale.

    Runs Colibri at the most adversarial ratio plus LRSC at every
    paper ratio, exactly like the published figure.  Each (ratio,
    bins) point is an ``interference`` scenario spec; ``jobs``/
    ``cache`` shard and memoize them (see :mod:`repro.scenarios.run`).
    """
    # Late import: repro.eval's package init reaches this module while
    # repro.scenarios.workloads (which registers the workload) may
    # itself still be mid-import via the scenarios package init.
    from ..scenarios.workloads import interference_spec
    if bins_list is None:
        bins_list = FULL_BINS
    bins_list = list(bins_list)
    worker_counts = sorted(
        {max(1, round(num_cores * fraction))
         for fraction in PAPER_WORKER_FRACTIONS},
        reverse=True)
    config = SystemConfig.scaled(num_cores)
    # Colibri at the fewest-workers (most pollers) ratio, then LRSC at
    # every paper ratio — one sweep row per (method, workers) combo.
    fewest = worker_counts[-1]
    combos = [("Colibri", VariantSpec.colibri(), "wait", fewest)]
    combos.extend(("LRSC", VariantSpec.lrsc(), "lrsc", workers)
                  for workers in worker_counts)
    rows = [(_ratio_label(name, num_cores, workers),
             (variant, method, workers))
            for name, variant, method, workers in combos]
    grid = run_spec_grid(
        rows, bins_list,
        lambda row, bins: interference_spec(
            config, row[0], row[1], row[2], bins,
            matmul_dim=matmul_dim, seed=seed),
        jobs=jobs, cache=cache)
    series = {label: [result.point.relative_throughput for result in row]
              for label, row in grid.items()}
    return Fig5Result(num_cores=num_cores, bins=bins_list,
                      series=series)
