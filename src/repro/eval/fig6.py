"""Fig. 6 — concurrent queue throughput and fairness vs core count.

Paper setup: one shared MCS-style queue; cores swept 1…256, each core
alternating enqueue/dequeue; y = queue accesses/cycle, with a shaded
band from the slowest to the fastest core (fairness).  Series: Colibri
(LRSCwait queue), Atomic Add lock (lock-based queue), LRSC.

Expected shape (§V-C): Colibri sustains throughput to the full system
(1.5×/1.48× at 8 cores, ~9× at 64 cores) and its band stays narrow;
LRSC and the lock collapse beyond ~8 cores with a wide band (some
cores starve).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.variants import VariantSpec
from ..scenarios.run import run_scenario, run_spec_grid
from ..scenarios.spec import ScenarioSpec, variant_string
from .points import QueuePoint
from .reporting import render_series

#: Queue method per legend label.
SERIES_METHODS = {
    "Colibri": ("wait", VariantSpec.colibri()),
    "Atomic Add lock": ("lock", VariantSpec.amo()),
    "LRSC": ("lrsc", VariantSpec.lrsc()),
}

#: Approximate published values (accesses/cycle) at 8 and 64 cores.
PAPER_REFERENCE = {
    "Colibri": {"8": 0.115, "64": 0.135},
    "Atomic Add lock": {"8": 0.078, "64": 0.020},
    "LRSC": {"8": 0.075, "64": 0.015},
}


@dataclass
class Fig6Result:
    """Measured Fig. 6 series."""

    core_counts: list
    points: dict  # label -> [QueuePoint]

    def throughput_series(self) -> dict:
        """label -> [accesses/cycle] aligned with ``core_counts``."""
        return {label: [p.throughput for p in pts]
                for label, pts in self.points.items()}

    def fairness_series(self) -> dict:
        """label -> [Jain index] aligned with ``core_counts``."""
        return {label: [p.jain_fairness for p in pts]
                for label, pts in self.points.items()}

    def speedup(self, num_cores: int, over: str = "LRSC") -> float:
        """Colibri speedup over a baseline at one core count."""
        index = self.core_counts.index(num_cores)
        colibri = self.points["Colibri"][index].throughput
        base = self.points[over][index].throughput
        return colibri / base if base else float("inf")

    def render(self) -> str:
        """Throughput and fairness tables."""
        throughput = render_series(
            "#Cores", self.core_counts, self.throughput_series(),
            title="Fig. 6 — queue accesses/cycle")
        fairness = render_series(
            "#Cores", self.core_counts, self.fairness_series(),
            title="Fig. 6 (band) — Jain fairness of per-core ops")
        return throughput + "\n\n" + fairness


def queue_spec(label: str, system_cores: int, active_cores: int,
               ops_per_core: int, seed: int = 0) -> ScenarioSpec:
    """The scenario spec of one Fig. 6 (series, #active cores) point."""
    method, variant = SERIES_METHODS[label]
    return ScenarioSpec(
        workload="queue",
        num_cores=system_cores,
        variant=variant_string(variant),
        params={"method": method, "active_cores": active_cores,
                "ops_per_core": ops_per_core, "label": label},
        seed=seed)


def run_queue_point(label: str, system_cores: int, active_cores: int,
                    ops_per_core: int, seed: int = 0) -> QueuePoint:
    """One queue measurement: ``active_cores`` of ``system_cores`` work."""
    spec = queue_spec(label, system_cores, active_cores, ops_per_core,
                      seed=seed)
    return run_scenario(spec).point


def run_fig6(max_cores: int = 64, core_counts=None, ops_per_core: int = 16,
             seed: int = 0, jobs: int = 1, cache=None) -> Fig6Result:
    """Regenerate Fig. 6 at the given scale.

    The *system* stays at ``max_cores`` (bank count fixed) while the
    number of cores using the queue sweeps, as in the paper.  Points
    are independent scenario specs; ``jobs``/``cache`` shard and
    memoize them (see :mod:`repro.scenarios.run`).
    """
    if core_counts is None:
        core_counts = [c for c in (1, 2, 4, 8, 16, 32, 64, 128, 256)
                       if c <= max_cores]
    core_counts = list(core_counts)
    grid = run_spec_grid(
        [(label, label) for label in SERIES_METHODS],
        core_counts,
        lambda label, active: queue_spec(label, max_cores, active,
                                         ops_per_core, seed=seed),
        jobs=jobs, cache=cache)
    points = {label: [result.point for result in row]
              for label, row in grid.items()}
    return Fig6Result(core_counts=core_counts, points=points)
