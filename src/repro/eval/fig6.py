"""Fig. 6 — concurrent queue throughput and fairness vs core count.

Paper setup: one shared MCS-style queue; cores swept 1…256, each core
alternating enqueue/dequeue; y = queue accesses/cycle, with a shaded
band from the slowest to the fastest core (fairness).  Series: Colibri
(LRSCwait queue), Atomic Add lock (lock-based queue), LRSC.

Expected shape (§V-C): Colibri sustains throughput to the full system
(1.5×/1.48× at 8 cores, ~9× at 64 cores) and its band stays narrow;
LRSC and the lock collapse beyond ~8 cores with a wide band (some
cores starve).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.mcs_queue import ConcurrentQueue, queue_worker_kernel
from ..arch.config import SystemConfig
from ..machine import Machine
from ..memory.variants import VariantSpec
from .reporting import render_series

#: Queue method per legend label.
SERIES_METHODS = {
    "Colibri": ("wait", VariantSpec.colibri()),
    "Atomic Add lock": ("lock", VariantSpec.amo()),
    "LRSC": ("lrsc", VariantSpec.lrsc()),
}

#: Approximate published values (accesses/cycle) at 8 and 64 cores.
PAPER_REFERENCE = {
    "Colibri": {"8": 0.115, "64": 0.135},
    "Atomic Add lock": {"8": 0.078, "64": 0.020},
    "LRSC": {"8": 0.075, "64": 0.015},
}


@dataclass
class QueuePoint:
    """One (method, #cores) queue measurement.

    Every core performs the same number of accesses, so fairness shows
    in the spread of per-core *rates* (ops / own finish time): an
    unfair scheme lets lucky cores finish long before starved ones —
    that spread is the paper's shaded band.
    """

    label: str
    num_cores: int
    throughput: float
    cycles: int
    min_core_rate: float
    max_core_rate: float
    jain_fairness: float

    @property
    def fairness_band(self) -> float:
        """max/min per-core rate (1.0 = perfectly fair)."""
        if self.min_core_rate == 0:
            return float("inf")
        return self.max_core_rate / self.min_core_rate


@dataclass
class Fig6Result:
    """Measured Fig. 6 series."""

    core_counts: list
    points: dict  # label -> [QueuePoint]

    def throughput_series(self) -> dict:
        """label -> [accesses/cycle] aligned with ``core_counts``."""
        return {label: [p.throughput for p in pts]
                for label, pts in self.points.items()}

    def fairness_series(self) -> dict:
        """label -> [Jain index] aligned with ``core_counts``."""
        return {label: [p.jain_fairness for p in pts]
                for label, pts in self.points.items()}

    def speedup(self, num_cores: int, over: str = "LRSC") -> float:
        """Colibri speedup over a baseline at one core count."""
        index = self.core_counts.index(num_cores)
        colibri = self.points["Colibri"][index].throughput
        base = self.points[over][index].throughput
        return colibri / base if base else float("inf")

    def render(self) -> str:
        """Throughput and fairness tables."""
        throughput = render_series(
            "#Cores", self.core_counts, self.throughput_series(),
            title="Fig. 6 — queue accesses/cycle")
        fairness = render_series(
            "#Cores", self.core_counts, self.fairness_series(),
            title="Fig. 6 (band) — Jain fairness of per-core ops")
        return throughput + "\n\n" + fairness


def run_queue_point(label: str, system_cores: int, active_cores: int,
                    ops_per_core: int, seed: int = 0) -> QueuePoint:
    """One queue measurement: ``active_cores`` of ``system_cores`` work."""
    method, variant = SERIES_METHODS[label]
    config = SystemConfig.scaled(system_cores)
    machine = Machine(config, variant, seed=seed)
    queue = ConcurrentQueue(machine, method,
                            nodes_per_core=ops_per_core // 2 + 2)
    machine.load_range(
        range(active_cores),
        lambda api: queue_worker_kernel(queue, api, ops_per_core))
    stats = machine.run()
    rates = []
    for core_id in range(active_cores):
        finish = machine.cores[core_id].finish_cycle or stats.cycles
        rates.append(stats.cores[core_id].ops_completed / max(1, finish))
    total = sum(rates)
    jain = (total * total / (len(rates) * sum(r * r for r in rates))
            if total else 1.0)
    return QueuePoint(
        label=label,
        num_cores=active_cores,
        throughput=stats.throughput,
        cycles=stats.cycles,
        min_core_rate=min(rates),
        max_core_rate=max(rates),
        jain_fairness=jain)


def run_fig6(max_cores: int = 64, core_counts=None, ops_per_core: int = 16,
             seed: int = 0, jobs: int = 1, cache=None) -> Fig6Result:
    """Regenerate Fig. 6 at the given scale.

    The *system* stays at ``max_cores`` (bank count fixed) while the
    number of cores using the queue sweeps, as in the paper.
    ``jobs``/``cache`` shard and memoize the independent (method,
    #cores) points (see :mod:`repro.eval.runner`).
    """
    from .runner import ExperimentCall, run_grid
    if core_counts is None:
        core_counts = [c for c in (1, 2, 4, 8, 16, 32, 64, 128, 256)
                       if c <= max_cores]
    points = run_grid(
        [(label, label) for label in SERIES_METHODS],
        core_counts,
        lambda label, active: ExperimentCall(
            run_queue_point, (label, max_cores, active, ops_per_core),
            {"seed": seed}),
        jobs=jobs, cache=cache)
    return Fig6Result(core_counts=list(core_counts), points=points)
