"""Shared experiment runners.

The histogram experiments (Figs. 3 and 4, Table II) all run the same
workload with different (variant, update-method, lock) combinations;
:data:`SERIES` names each combination exactly as the paper's legends
do, and :func:`run_histogram_point` produces one measured point with
throughput, traffic and energy attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algorithms.histogram import Histogram
from ..arch.config import SystemConfig
from ..machine import Machine
from ..memory.variants import VariantSpec
from ..power.energy import EnergyModel, EnergyReport
from ..sync.backoff import FixedBackoff
from ..sync.locks import (
    AmoSpinLock,
    ColibriSpinLock,
    LrscSpinLock,
    MwaitMcsLock,
)


@dataclass(frozen=True)
class SeriesSpec:
    """One legend entry: hardware variant + software update scheme."""

    label: str
    variant_kind: str          # "amo" | "lrsc" | "lrscwait" | "colibri"
    method: str                # "amo" | "lrsc" | "wait" | "lock"
    lock: Optional[str] = None  # "amo" | "lrsc" | "colibri" | "mcs"
    #: For lrscwait: queue slots; None = ideal, "half" = num_cores // 2.
    queue_slots: Optional[object] = None

    def variant(self, num_cores: int) -> VariantSpec:
        """Materialize the hardware variant for a system size."""
        if self.variant_kind == "lrscwait":
            slots = self.queue_slots
            if slots == "half":
                slots = max(1, num_cores // 2)
            if slots is None:
                return VariantSpec.lrscwait_ideal()
            return VariantSpec.lrscwait(int(slots))
        if self.variant_kind == "colibri":
            return VariantSpec.colibri()
        if self.variant_kind == "lrsc":
            return VariantSpec.lrsc()
        return VariantSpec.amo()

    def lock_class(self):
        """The lock implementation for ``method == "lock"`` series."""
        return {
            "amo": AmoSpinLock,
            "lrsc": LrscSpinLock,
            "colibri": ColibriSpinLock,
            "mcs": MwaitMcsLock,
        }[self.lock]


#: Fig. 3 legend (generic RMW primitives).
FIG3_SERIES = [
    SeriesSpec("Atomic Add", "amo", "amo"),
    SeriesSpec("LRSCwait_ideal", "lrscwait", "wait", queue_slots=None),
    SeriesSpec("LRSCwait_half", "lrscwait", "wait", queue_slots="half"),
    SeriesSpec("LRSCwait_1", "lrscwait", "wait", queue_slots=1),
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
]

#: Fig. 4 legend (lock-based schemes vs. generic RMW).
FIG4_SERIES = [
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("Colibri lock", "colibri", "lock", lock="colibri"),
    SeriesSpec("Mwait lock", "colibri", "lock", lock="mcs"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
    SeriesSpec("LRSC lock", "lrsc", "lock", lock="lrsc"),
    SeriesSpec("Atomic Add lock", "amo", "lock", lock="amo"),
]

#: Table II rows (histogram at maximum contention).
TABLE2_SERIES = [
    SeriesSpec("Atomic Add", "amo", "amo"),
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
    SeriesSpec("Atomic Add lock", "amo", "lock", lock="amo"),
]


@dataclass
class HistogramPoint:
    """One measured (series, #bins) histogram point."""

    label: str
    num_cores: int
    num_bins: int
    updates_per_core: int
    cycles: int
    throughput: float
    sc_failures: int
    wait_rejections: int
    sleep_cycles: int
    active_cycles: int
    messages: int
    energy: EnergyReport

    @property
    def pj_per_op(self) -> float:
        """Energy per histogram update."""
        return self.energy.pj_per_op


def run_histogram_point(series: SeriesSpec, num_cores: int, num_bins: int,
                        updates_per_core: int, seed: int = 0,
                        lock_backoff_window: int = 128) -> HistogramPoint:
    """Run one histogram configuration to completion and verify it."""
    config = SystemConfig.scaled(num_cores)
    machine = Machine(config, series.variant(num_cores), seed=seed)
    histogram = Histogram(machine, num_bins)
    if series.method == "lock":
        lock_cls = series.lock_class()
        if lock_cls is MwaitMcsLock:
            histogram.attach_locks(lock_cls)
        else:
            histogram.attach_locks(
                lock_cls, backoff=FixedBackoff(lock_backoff_window))
    machine.load_all(histogram.kernel_factory(
        "lock" if series.method == "lock" else series.method,
        updates_per_core))
    stats = machine.run()
    histogram.verify(num_cores * updates_per_core)
    energy = EnergyModel().evaluate(stats)
    return HistogramPoint(
        label=series.label,
        num_cores=num_cores,
        num_bins=num_bins,
        updates_per_core=updates_per_core,
        cycles=stats.cycles,
        throughput=stats.throughput,
        sc_failures=stats.total_sc_failures,
        wait_rejections=sum(c.wait_rejections for c in stats.cores),
        sleep_cycles=stats.total_sleep_cycles,
        active_cycles=stats.total_active_cycles,
        messages=stats.network.total_messages,
        energy=energy)


def sweep_bins(series_list, num_cores: int, bins_list, updates_per_core: int,
               seed: int = 0, jobs: int = 1, cache=None) -> dict:
    """Run a bin sweep for every series; returns label -> [points].

    Points are independent simulations, so ``jobs > 1`` shards them
    across a worker pool (deterministic: any ``jobs`` value returns
    identical results) and ``cache`` (a
    :class:`~repro.eval.runner.ResultCache`) skips already-simulated
    configurations.
    """
    from .runner import ExperimentCall, run_grid
    return run_grid(
        [(series.label, series) for series in series_list],
        bins_list,
        lambda series, num_bins: ExperimentCall(
            run_histogram_point,
            (series, num_cores, num_bins, updates_per_core),
            {"seed": seed}),
        jobs=jobs, cache=cache)
