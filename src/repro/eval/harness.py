"""Shared experiment runners, as scenario-spec factories.

The histogram experiments (Figs. 3 and 4, Table II) all run the same
workload with different (variant, update-method, lock) combinations;
:data:`SERIES` names each combination exactly as the paper's legends
do.  Since the scenario API landed, a :class:`SeriesSpec` is purely a
*naming* layer: :func:`histogram_spec` turns one (series, scale,
contention) combination into a :class:`~repro.scenarios.spec.
ScenarioSpec`, and :func:`run_histogram_point` /:func:`sweep_bins`
execute those specs through :func:`~repro.scenarios.run.run_scenario`
— same measured numbers, but every point is now serializable,
hashable, cacheable and shardable like any other scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.variants import VariantSpec
from ..scenarios.run import run_scenario, run_spec_grid
from ..scenarios.spec import ScenarioSpec, parse_variant, variant_string
from .points import HistogramPoint

__all__ = [
    "SeriesSpec", "HistogramPoint", "FIG3_SERIES", "FIG4_SERIES",
    "TABLE2_SERIES", "histogram_spec", "run_histogram_point",
    "sweep_bins",
]


@dataclass(frozen=True)
class SeriesSpec:
    """One legend entry: hardware variant + software update scheme.

    ``variant_kind`` names any registered atomic variant — the paper's
    legends use the four of Fig. 1, but a user-registered variant makes
    a series the same way (``SeriesSpec("Ticket", "ticket", "wait")``).
    """

    label: str
    variant_kind: str          # any registered variant name
    method: str                # "amo" | "lrsc" | "wait" | "lock"
    lock: Optional[str] = None  # "amo" | "lrsc" | "colibri" | "mcs"
    #: For lrscwait: queue slots; None = ideal, "half" = num_cores // 2.
    queue_slots: Optional[object] = None

    def variant(self, num_cores: int) -> VariantSpec:
        """Materialize the hardware variant for a system size."""
        text = self.variant_kind
        if text == "lrscwait":
            slots = "ideal" if self.queue_slots is None else self.queue_slots
            text = f"lrscwait:{slots}"
        return parse_variant(text, num_cores)

    def lock_class(self):
        """The lock implementation for ``method == "lock"`` series."""
        from ..scenarios.workloads import LOCK_CLASSES
        return LOCK_CLASSES[self.lock]


#: Fig. 3 legend (generic RMW primitives).
FIG3_SERIES = [
    SeriesSpec("Atomic Add", "amo", "amo"),
    SeriesSpec("LRSCwait_ideal", "lrscwait", "wait", queue_slots=None),
    SeriesSpec("LRSCwait_half", "lrscwait", "wait", queue_slots="half"),
    SeriesSpec("LRSCwait_1", "lrscwait", "wait", queue_slots=1),
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
]

#: Fig. 4 legend (lock-based schemes vs. generic RMW).
FIG4_SERIES = [
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("Colibri lock", "colibri", "lock", lock="colibri"),
    SeriesSpec("Mwait lock", "colibri", "lock", lock="mcs"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
    SeriesSpec("LRSC lock", "lrsc", "lock", lock="lrsc"),
    SeriesSpec("Atomic Add lock", "amo", "lock", lock="amo"),
]

#: Table II rows (histogram at maximum contention).
TABLE2_SERIES = [
    SeriesSpec("Atomic Add", "amo", "amo"),
    SeriesSpec("Colibri", "colibri", "wait"),
    SeriesSpec("LRSC", "lrsc", "lrsc"),
    SeriesSpec("Atomic Add lock", "amo", "lock", lock="amo"),
]


def histogram_spec(series: SeriesSpec, num_cores: int, num_bins: int,
                   updates_per_core: int, seed: int = 0,
                   lock_backoff_window: int = 128) -> ScenarioSpec:
    """The scenario spec of one (series, scale, contention) point."""
    params = {
        "bins": num_bins,
        "updates_per_core": updates_per_core,
        "method": series.method,
        "label": series.label,
    }
    if series.method == "lock":
        params["lock"] = series.lock
        params["lock_backoff_window"] = lock_backoff_window
    return ScenarioSpec(
        workload="histogram",
        num_cores=num_cores,
        variant=variant_string(series.variant(num_cores)),
        params=params,
        seed=seed)


def run_histogram_point(series: SeriesSpec, num_cores: int, num_bins: int,
                        updates_per_core: int, seed: int = 0,
                        lock_backoff_window: int = 128) -> HistogramPoint:
    """Run one histogram configuration to completion and verify it."""
    spec = histogram_spec(series, num_cores, num_bins, updates_per_core,
                          seed=seed,
                          lock_backoff_window=lock_backoff_window)
    return run_scenario(spec).point


def sweep_bins(series_list, num_cores: int, bins_list, updates_per_core: int,
               seed: int = 0, jobs: int = 1, cache=None) -> dict:
    """Run a bin sweep for every series; returns label -> [points].

    Points are independent scenario specs, so ``jobs > 1`` shards them
    across a worker pool (deterministic: any ``jobs`` value returns
    identical results) and ``cache`` (a
    :class:`~repro.eval.runner.ResultCache`) skips already-simulated
    configurations, keyed by each spec's ``stable_hash``.
    """
    grid = run_spec_grid(
        [(series.label, series) for series in series_list],
        bins_list,
        lambda series, num_bins: histogram_spec(
            series, num_cores, num_bins, updates_per_core, seed=seed),
        jobs=jobs, cache=cache)
    return {label: [result.point for result in row]
            for label, row in grid.items()}
