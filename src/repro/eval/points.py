"""Measured-point dataclasses shared by the figure runners and the
scenario workloads.

These used to live next to their runners (``HistogramPoint`` in
:mod:`repro.eval.harness`, ``QueuePoint`` in :mod:`repro.eval.fig6`),
but the scenario registry builds them too, and the runners are now
spec factories *on top of* the registry — so the result types sit
below both in a dependency-free module.  The original homes re-export
them, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power.energy import EnergyReport


@dataclass
class HistogramPoint:
    """One measured (series, #bins) histogram point."""

    label: str
    num_cores: int
    num_bins: int
    updates_per_core: int
    cycles: int
    throughput: float
    sc_failures: int
    wait_rejections: int
    sleep_cycles: int
    active_cycles: int
    messages: int
    energy: EnergyReport

    @property
    def pj_per_op(self) -> float:
        """Energy per histogram update."""
        return self.energy.pj_per_op


@dataclass
class QueuePoint:
    """One (method, #cores) queue measurement.

    Every core performs the same number of accesses, so fairness shows
    in the spread of per-core *rates* (ops / own finish time): an
    unfair scheme lets lucky cores finish long before starved ones —
    that spread is the paper's shaded band.
    """

    label: str
    num_cores: int
    throughput: float
    cycles: int
    min_core_rate: float
    max_core_rate: float
    jain_fairness: float

    @property
    def fairness_band(self) -> float:
        """max/min per-core rate (1.0 = perfectly fair)."""
        if self.min_core_rate == 0:
            return float("inf")
        return self.max_core_rate / self.min_core_rate
