"""ASCII rendering of experiment results.

Every experiment runner produces structured results; these helpers turn
them into aligned plain-text tables and series plots suitable for a
terminal, a log file, or EXPERIMENTS.md.  No plotting dependencies: the
"figures" are printed as the numeric series the paper's plots encode,
which is what reproduction comparisons actually need.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_value(value, precision: int = 4) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Monospace table with a header rule."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(x_label: str, x_values: Sequence,
                  series: dict, title: Optional[str] = None,
                  precision: int = 4) -> str:
    """A figure as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_ratio_line(label: str, numerator: float,
                      denominator: float) -> str:
    """One-line speedup statement, e.g. for headline claims."""
    if denominator == 0:
        return f"{label}: n/a"
    return f"{label}: {numerator / denominator:.2f}x"
