"""ASCII rendering of experiment results.

Every experiment runner produces structured results; these helpers turn
them into aligned plain-text tables and series plots suitable for a
terminal, a log file, or EXPERIMENTS.md.  No plotting dependencies: the
"figures" are printed as the numeric series the paper's plots encode,
which is what reproduction comparisons actually need.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_value(value, precision: int = 4) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Monospace table with a header rule."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(x_label: str, x_values: Sequence,
                  series: dict, title: Optional[str] = None,
                  precision: int = 4) -> str:
    """A figure as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_ratio_line(label: str, numerator: float,
                      denominator: float) -> str:
    """One-line speedup statement, e.g. for headline claims."""
    if denominator == 0:
        return f"{label}: n/a"
    return f"{label}: {numerator / denominator:.2f}x"


#: Density ramp for heatmap cells, lightest to darkest.
HEAT_GLYPHS = " .:-=+*#%@"


def _rebin(values: Sequence, width: int) -> list:
    """Sum a numeric series into at most ``width`` equal-range buckets."""
    values = list(values)
    if len(values) <= width:
        return values
    binned = [0] * width
    for index, value in enumerate(values):
        binned[index * width // len(values)] += value
    return binned


def render_heatmap(rows: Sequence[Sequence], row_labels: Sequence[str],
                   width: int = 64, title: Optional[str] = None,
                   glyphs: str = HEAT_GLYPHS) -> str:
    """An ASCII intensity grid: one labelled row per series.

    ``rows`` are equal-length numeric series (e.g. per-bank access
    counts over cycle windows); columns are rebinned down to ``width``
    and every cell maps its value — normalized by the global maximum —
    onto the ``glyphs`` density ramp.  This is the terminal rendering
    of the telemetry bank-contention heatmap.
    """
    binned = [_rebin(row, width) for row in rows]
    peak = max((value for row in binned for value in row), default=0)
    label_width = max((len(label) for label in row_labels), default=0)
    lines = []
    if title:
        lines.append(title)
    top = len(glyphs) - 1
    for label, row in zip(row_labels, binned):
        if peak:
            cells = "".join(glyphs[(value * top + peak - 1) // peak]
                            for value in row)
        else:
            cells = glyphs[0] * len(row)
        lines.append(f"{label:>{label_width}} |{cells}|")
    lines.append(f"{'':>{label_width}}  scale: ' '=0 "
                 f"'{glyphs[top]}'={format_value(peak)} (per cell max)")
    return "\n".join(lines)


def render_frontier(points: Sequence, frontier: Sequence[int],
                    x_label: str, y_label: str, width: int = 56,
                    height: int = 14, title: Optional[str] = None) -> str:
    """ASCII scatter of a two-objective trade-off.

    ``points`` are ``(x, y)`` pairs; ``frontier`` the indices of the
    non-dominated ones.  Frontier points render as ``*``, dominated
    ones as ``o`` (frontier wins a shared cell); the value ranges are
    annotated on the margins.  This is the terminal rendering behind
    ``repro frontier`` and ``repro explore``.
    """
    points = list(points)
    frontier = set(frontier)
    if not points:
        return f"{title or 'frontier'}: (no points)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1
    y_span = (y_hi - y_lo) or 1
    grid = [[" "] * width for _ in range(height)]
    for index, (x, y) in enumerate(points):
        col = min(int((x - x_lo) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_lo) / y_span * (height - 1)), height - 1)
        row = height - 1 - row          # larger y renders higher
        glyph = "*" if index in frontier else "o"
        if grid[row][col] != "*":
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {format_value(y_hi)}, "
                 f"bottom {format_value(y_lo)})")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {format_value(x_lo)} .. "
                 f"{format_value(x_hi)}   (*=frontier, o=dominated)")
    return "\n".join(lines)


def render_timeline(lanes: Sequence, end: int, width: int = 64,
                    glyphs: Optional[dict] = None,
                    title: Optional[str] = None) -> str:
    """ASCII state timeline: one labelled lane of glyphs per agent.

    ``lanes`` is ``[(label, spans)]`` with ``spans`` a list of
    ``(state, start, stop)`` covering ``[0, end)``; each character cell
    shows the state occupying most of its cycle range, mapped through
    ``glyphs`` (state name -> single character, '?' for unknown states).
    """
    glyphs = glyphs or {}
    end = max(end, 1)
    width = min(width, end)
    label_width = max((len(label) for label, _spans in lanes), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, spans in lanes:
        occupancy = [{} for _ in range(width)]
        for state, start, stop in spans:
            # The floor estimates can be off by one at cell boundaries;
            # widen the candidate range and let the overlap test decide.
            first = max(start * width // end - 1, 0)
            last = min((max(stop, start + 1) - 1) * width // end + 1,
                       width - 1)
            for cell in range(first, last + 1):
                cell_start = cell * end // width
                cell_stop = (cell + 1) * end // width
                overlap = min(stop, cell_stop) - max(start, cell_start)
                if overlap > 0:
                    bucket = occupancy[cell]
                    bucket[state] = bucket.get(state, 0) + overlap
        cells = "".join(
            glyphs.get(max(bucket, key=bucket.get), "?") if bucket else " "
            for bucket in occupancy)
        lines.append(f"{label:>{label_width}} |{cells}|")
    lines.append(f"{'':>{label_width}}  0 .. {end} cycles")
    return "\n".join(lines)
