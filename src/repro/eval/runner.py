"""Parallel experiment execution with deterministic ordering and caching.

Every figure and table of the paper is a sweep over *independent*
simulator configurations (series × contention level × scale), and every
simulation is a pure, deterministic function of its arguments.  That
makes sweeps embarrassingly parallel — and their points perfectly
cacheable.  This module provides both:

* :func:`run_experiments` shards a list of :class:`ExperimentCall`\\ s
  across a ``multiprocessing`` pool.  Results always come back in call
  order, so a sweep produces byte-identical output whether it ran with
  ``jobs=1`` in-process or ``jobs=N`` across workers — the test suite
  asserts exactly this.
* :class:`ResultCache` memoizes finished points on disk, keyed by a
  SHA-256 hash over the called function and a canonical rendering of
  its arguments.  Re-running a figure after editing one variant only
  re-simulates the points whose configuration actually changed; the
  rest come back as cache hits.

The experiment functions themselves (``run_histogram_point``,
``run_interference``, ``run_queue_point``) stay plain callables — they
know nothing about pooling or caching, so they remain directly usable
and testable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..obs import OBS

#: Bump when the cached result format changes incompatibly (e.g. a
#: measured dataclass gains fields); invalidates every existing entry.
CACHE_VERSION = 1

#: Sidecar file (inside the cache directory) accumulating lifetime
#: hit/miss/store/evict totals across processes; see
#: :meth:`ResultCache.flush_counters`.
COUNTERS_NAME = "counters.json"

#: Version stamp of the sidecar layout.
COUNTERS_VERSION = 1

_COUNTER_KEYS = ("hits", "misses", "stores", "evictions", "write_errors")

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


@dataclass(frozen=True)
class ExperimentCall:
    """One experiment point: a pure function plus its configuration.

    ``fn`` must be an importable module-level callable (the worker
    processes re-import it by qualified name via pickle) and its
    arguments must be picklable, which every experiment config in
    :mod:`repro.eval` is.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def invoke(self):
        """Run the point in the current process."""
        return self.fn(*self.args, **self.kwargs)

    def config_key(self) -> str:
        """SHA-256 hash of the function identity and canonical arguments.

        Two calls share a key iff they name the same function with the
        same configuration, so a cache keyed by this hash is invalidated
        exactly by config changes (and by :data:`CACHE_VERSION` bumps).
        """
        parts = [f"v{CACHE_VERSION}",
                 f"{self.fn.__module__}.{self.fn.__qualname__}"]
        parts.extend(_canonical(a) for a in self.args)
        parts.extend(f"{k}={_canonical(v)}"
                     for k, v in sorted(self.kwargs.items()))
        blob = "\x1f".join(parts)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical(value) -> str:
    """Deterministic text rendering of a configuration value.

    Dataclass reprs are field-ordered and nested dataclasses recurse,
    so config objects (``SeriesSpec``, ``VariantSpec``,
    ``SystemConfig``...) canonicalize for free; containers recurse
    explicitly so a dict's iteration order cannot leak into the key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return repr(value)
    if isinstance(value, dict):
        inner = ",".join(f"{_canonical(k)}:{_canonical(v)}"
                         for k, v in sorted(value.items(), key=repr))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(item) for item in value)
        return ("[" if isinstance(value, list) else "(") + inner + \
            ("]" if isinstance(value, list) else ")")
    return repr(value)


def source_fingerprint() -> str:
    """Hash of every ``repro`` source file (content, not mtime).

    Folded into cache keys so editing *simulator code* — not just a
    point's configuration — invalidates cached results.  Serving
    pre-edit numbers as current would be silently-wrong science in a
    reproduction repo; a few milliseconds of hashing per cache
    construction buys safety by default.
    """
    import repro
    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            with open(os.path.join(dirpath, name), "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


class ResultCache:
    """Disk-backed memo of finished experiment points.

    One pickle file per key, fronted by an in-process dict.  The key
    combines :meth:`ExperimentCall.config_key` with a fingerprint of
    the ``repro`` sources (see :func:`source_fingerprint`), so both
    config edits and code edits invalidate exactly what they touch.
    ``hits``/``misses``/``stores``/``write_errors`` are exposed for
    tests and for ``--jobs`` progress reporting.

    ``max_entries`` bounds the on-disk entry count with LRU-style
    pruning: every hit refreshes its file's timestamps, and a store
    that pushes the directory past the limit evicts the
    least-recently-used entries — to ~5% below the bound, so the
    directory scan amortizes over many stores — which automatically
    clears stale-fingerprint leftovers first (they stopped being
    touched when the sources changed).  Unbounded by default; pass a
    bound (CLI: ``--cache-max-entries``) for cache-heavy search
    campaigns, and manage existing directories with
    ``repro cache prune|stats``.
    """

    def __init__(self, path: str, fingerprint: Optional[str] = None,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}")
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.fingerprint = (source_fingerprint() if fingerprint is None
                            else fingerprint)
        self.max_entries = max_entries
        #: Lazily-initialized on-disk entry estimate; every store
        #: counts as +1 (overwrites over-count, which only means an
        #: occasional early re-scan), so the auto-prune scan in
        #: :meth:`store_hash` runs only when the bound can actually be
        #: exceeded instead of on every store.
        self._disk_count: Optional[int] = None
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.write_errors = 0
        self.evictions = 0
        #: Counter values already merged into the sidecar, so
        #: :meth:`flush_counters` writes deltas and stays idempotent.
        self._flushed = {key: 0 for key in _COUNTER_KEYS}

    def _key(self, call: ExperimentCall) -> str:
        return self._key_for(call.config_key())

    def _key_for(self, config_hash: str) -> str:
        blob = f"{self.fingerprint}\x1f{config_hash}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".pkl")

    def lookup(self, call: ExperimentCall):
        """Cached result for ``call``, or the module-private miss sentinel."""
        return self.lookup_hash(call.config_key(), _MISS)

    def lookup_hash(self, config_hash: str, default=None):
        """Cached result under a caller-computed config hash.

        The scenario layer keys entries by
        :meth:`~repro.scenarios.spec.ScenarioSpec.stable_hash` instead
        of an :class:`ExperimentCall`; both paths share the fingerprint
        folding and the hit/miss accounting.  Returns ``default`` on a
        miss (callers pass their own sentinel to permit cached
        ``None``\\ s).
        """
        key = self._key_for(config_hash)
        if key in self._memory:
            self.hits += 1
            if OBS.enabled:
                OBS.inc("cache.hit")
            self._touch(key)
            return self._memory[key]
        try:
            with open(self._file(key), "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError):
            self.misses += 1
            if OBS.enabled:
                OBS.inc("cache.miss")
            return default
        self._memory[key] = result
        self.hits += 1
        if OBS.enabled:
            OBS.inc("cache.hit")
        self._touch(key)
        return result

    def _touch(self, key: str) -> None:
        """Refresh an entry's LRU timestamp (best effort)."""
        try:
            os.utime(self._file(key))
        except OSError:
            pass

    def store(self, call: ExperimentCall, result) -> None:
        """Persist one finished point.

        A failing disk write (full volume, revoked permissions...)
        degrades to cache-less operation instead of discarding the
        already-computed simulation results with an exception.
        """
        self.store_hash(call.config_key(), result)

    def store_hash(self, config_hash: str, result) -> None:
        """Persist one finished point under a caller-computed hash."""
        key = self._key_for(config_hash)
        self._memory[key] = result
        tmp = self._file(key) + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle)
            os.replace(tmp, self._file(key))
        except OSError:
            self.write_errors += 1
            return
        self.stores += 1
        if OBS.enabled:
            OBS.inc("cache.store")
        if OBS.events is not None:
            OBS.events.emit("cache_store", key=key[:12])
        if self.max_entries is not None:
            if self._disk_count is None:
                self._disk_count = len(self._entries())
            else:
                self._disk_count += 1
            if self._disk_count > self.max_entries:
                # Evict ~5% below the bound so a cache sitting at
                # capacity re-scans the directory once per batch of
                # stores instead of on every single one.
                self.prune(self.max_entries - self.max_entries // 20)

    def _entries(self) -> list:
        """On-disk entries as ``(mtime, size, path)``, oldest first."""
        entries = []
        for name in os.listdir(self.path):
            if not name.endswith(".pkl"):
                continue
            full = os.path.join(self.path, name)
            try:
                info = os.stat(full)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, full))
        entries.sort()
        return entries

    def stats(self) -> dict:
        """On-disk footprint plus this process's hit/miss counters."""
        entries = self._entries()
        return {
            "path": self.path,
            "entries": len(entries),
            "bytes": sum(size for _mtime, size, _path in entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def _counters_file(self) -> str:
        return os.path.join(self.path, COUNTERS_NAME)

    def _read_counters(self) -> dict:
        """The sidecar's totals (zeros when absent or unreadable —
        counters are diagnostics, never worth failing a run over)."""
        try:
            with open(self._counters_file()) as stream:
                data = json.load(stream)
            counters = data["counters"]
            return {key: int(counters.get(key, 0))
                    for key in _COUNTER_KEYS}
        except (OSError, ValueError, TypeError, KeyError):
            return {key: 0 for key in _COUNTER_KEYS}

    def flush_counters(self) -> None:
        """Merge this process's unflushed hit/miss/store/evict deltas
        into the ``counters.json`` sidecar (read-modify-atomic-write).

        Called by the runner layers after every sweep/campaign batch,
        so ``repro cache stats`` reports *lifetime* rates across all
        the processes that ever used the directory.  Idempotent: each
        delta is written exactly once.  Best-effort like the cache
        itself — an unwritable sidecar degrades to in-process counts.
        """
        current = {"hits": self.hits, "misses": self.misses,
                   "stores": self.stores, "evictions": self.evictions,
                   "write_errors": self.write_errors}
        delta = {key: current[key] - self._flushed[key]
                 for key in _COUNTER_KEYS}
        if not any(delta.values()):
            return
        totals = self._read_counters()
        for key in _COUNTER_KEYS:
            totals[key] += delta[key]
        tmp = self._counters_file() + ".tmp"
        try:
            with open(tmp, "w") as stream:
                json.dump({"version": COUNTERS_VERSION,
                           "counters": totals}, stream, indent=2,
                          sort_keys=True)
                stream.write("\n")
            os.replace(tmp, self._counters_file())
        except OSError:
            return
        self._flushed = current

    def lifetime_stats(self) -> dict:
        """Sidecar totals plus this process's not-yet-flushed deltas."""
        totals = self._read_counters()
        current = {"hits": self.hits, "misses": self.misses,
                   "stores": self.stores, "evictions": self.evictions,
                   "write_errors": self.write_errors}
        for key in _COUNTER_KEYS:
            totals[key] += current[key] - self._flushed[key]
        return totals

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Evict least-recently-used entries beyond ``max_entries``.

        ``None`` falls back to the instance bound (a no-op when that is
        also unset).  Returns the number of entries removed.  Eviction
        is disk-wide — entries written under other fingerprints (or by
        other processes) count and age out like any others.
        """
        limit = self.max_entries if max_entries is None else max_entries
        if limit is None:
            return 0
        if limit < 0:
            raise ValueError(f"max_entries must be >= 0, got {limit}")
        entries = self._entries()
        removed = 0
        for _mtime, _size, full in entries[:max(0, len(entries) - limit)]:
            try:
                os.unlink(full)
            except OSError:
                continue
            key = os.path.basename(full)[:-len(".pkl")]
            self._memory.pop(key, None)
            removed += 1
        self.evictions += removed
        if removed and OBS.enabled:
            OBS.inc("cache.evict", removed)
        if removed and OBS.events is not None:
            OBS.events.emit("cache_evict", count=removed)
        self._disk_count = len(entries) - removed
        return removed

    def clear(self) -> None:
        """Drop every cached point (memory and disk)."""
        self._memory.clear()
        for name in os.listdir(self.path):
            if name.endswith(".pkl"):
                os.unlink(os.path.join(self.path, name))
        self._disk_count = 0


def _pool_worker_init(events_file: str, heartbeat_interval) -> None:
    """Pool initializer when the parent has the control plane open.

    Each worker opens its own appender on the shared ``events.jsonl``
    (the parent's handle inherited through fork would reuse its seq
    counter), starts its own heartbeat file, and announces itself.
    The farewell is a :class:`multiprocessing.util.Finalize` hook —
    pool workers exit through ``os._exit``, which skips ``atexit`` but
    does run multiprocessing's registered finalizers — so a normal
    ``Pool.close()``/``join()`` (see :func:`run_experiments`) emits
    ``worker_exited`` and removes the heartbeat file, while only an
    abnormal death skips it: exactly the case heartbeats exist to
    expose.
    """
    from multiprocessing.util import Finalize
    # Forked workers inherit the parent's EventLog/Heartbeat objects;
    # closing those would delete the *coordinator's* heartbeat file.
    # Drop the references without touching disk, then open our own.
    OBS.events = None
    OBS.heartbeat = None
    OBS.open_events(events_file, role="worker",
                    heartbeat_interval=heartbeat_interval)
    OBS.events.emit("worker_spawned", role="worker")
    Finalize(None, _pool_worker_exit, exitpriority=100)


def _pool_worker_exit() -> None:
    monitor = OBS.heartbeat
    if OBS.events is not None:
        OBS.events.emit("worker_exited",
                        points=monitor.points if monitor else 0)
    OBS.close_events()


def _invoke(payload: tuple):
    """Pool worker: unpack and run one call (module-level for pickling)."""
    fn, args, kwargs = payload
    return fn(*args, **kwargs)


def _invoke_observed(payload: tuple):
    """Observed pool worker: run one call under a fresh obs session and
    ship ``(result, snapshot)`` back for deterministic merging.

    Each call gets its own session (workers are reused across calls,
    and a per-call snapshot is what lets the parent merge in *call*
    order regardless of which worker ran what), so ``jobs=1`` and
    ``jobs=N`` report identical counter totals and span trees.
    """
    fn, args, kwargs = payload
    OBS.enable()
    try:
        result = fn(*args, **kwargs)
        return result, OBS.snapshot()
    finally:
        OBS.disable()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def jobs_argument(text: str) -> int:
    """argparse ``type=`` validator for ``--jobs`` flags.

    The single definition of the flag's contract (non-negative int,
    0 = all CPUs), shared by the ``repro`` CLI and the examples so the
    entry points cannot drift.
    """
    import argparse
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all CPUs), got {jobs}")
    return jobs


def run_experiments(calls: Sequence[ExperimentCall], jobs: int = 1,
                    cache: Optional[ResultCache] = None) -> list:
    """Run every call and return their results *in call order*.

    ``jobs=1`` runs serially in-process (no pool, no pickling);
    ``jobs>1`` shards the non-cached calls across a worker pool.
    Because each call is a pure deterministic function and results are
    reassembled by call index, the returned list is identical for any
    ``jobs`` value.  ``jobs=None``/``0`` uses every CPU.
    """
    jobs = resolve_jobs(jobs)
    results: list = [None] * len(calls)
    pending: list = []          # (index, call) still to simulate
    if cache is not None:
        for index, call in enumerate(calls):
            hit = cache.lookup(call)
            if hit is _MISS:
                pending.append((index, call))
            else:
                results[index] = hit
    else:
        pending = list(enumerate(calls))

    if not pending:
        if cache is not None:
            cache.flush_counters()
        return results
    if jobs == 1 or len(pending) == 1:
        computed = [call.invoke() for _index, call in pending]
    else:
        payloads = [(call.fn, call.args, call.kwargs)
                    for _index, call in pending]
        workers = min(jobs, len(payloads))
        events = OBS.events
        initializer = initargs = None
        if events is not None:
            monitor = OBS.heartbeat
            initializer = _pool_worker_init
            initargs = (events.path,
                        monitor.interval if monitor is not None else None)
        with multiprocessing.Pool(processes=workers,
                                  initializer=initializer,
                                  initargs=initargs or ()) as pool:
            if OBS.enabled:
                # Workers record their own spans/counters; snapshots
                # come back in call order (pool.map preserves it), so
                # merging here is deterministic for any jobs value.
                computed = []
                for result, snap in pool.map(_invoke_observed, payloads,
                                             chunksize=1):
                    OBS.merge_worker(snap)
                    computed.append(result)
            else:
                computed = pool.map(_invoke, payloads, chunksize=1)
            if events is not None:
                # The ``with`` block terminates workers outright; a
                # close/join first lets their atexit farewells (the
                # worker_exited event, heartbeat removal) run.
                pool.close()
                pool.join()
    for (index, call), result in zip(pending, computed):
        results[index] = result
        if cache is not None:
            cache.store(call, result)
    if cache is not None:
        cache.flush_counters()
    return results


def run_grid(rows: Sequence[tuple], columns: Sequence,
             make_call: Callable, jobs: int = 1,
             cache: Optional[ResultCache] = None) -> dict:
    """Run a labelled sweep grid; returns ``{label: [result/column]}``.

    ``rows`` is ``[(label, row_spec), ...]`` and ``make_call(row_spec,
    column)`` builds the :class:`ExperimentCall` for one point.  All
    figure sweeps are such grids (series × contention, ratio × bins,
    method × cores); pairing results to labels here — instead of
    hand-slicing a flat result list at every call site — keeps the
    bookkeeping structural rather than positional.
    """
    rows = list(rows)
    columns = list(columns)
    calls = [make_call(spec, column)
             for _label, spec in rows for column in columns]
    results = run_experiments(calls, jobs=jobs, cache=cache)
    grid: dict = {}
    for index, (label, _spec) in enumerate(rows):
        start = index * len(columns)
        grid[label] = results[start:start + len(columns)]
    return grid
