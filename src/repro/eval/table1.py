"""Table I — area of a ``mempool_tile`` with each hardware option.

The analytic model (:mod:`repro.power.area`) is evaluated for every
published row and compared against the paper's kGE numbers, plus the
scaling extrapolation that motivates Colibri: the per-core queue of
LRSCwait_ideal grows quadratically at system level, Colibri linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.variants import VariantSpec, list_variants
from ..power.area import (
    PAPER_TABLE1,
    TILE_BASE_KGE,
    TILE_CORES,
    base_tile,
    colibri_tile,
    lrscwait_tile,
    system_overhead_kge,
    table1_rows,
    variant_overhead_kge,
)
from .reporting import render_table


@dataclass
class Table1Result:
    """Model rows alongside the published numbers."""

    rows: list  # (label, model kGE, model %, paper kGE, paper %)

    def max_relative_error(self) -> float:
        """Worst |model - paper| / paper over all rows."""
        worst = 0.0
        for _label, model_kge, _mp, paper_kge, _pp in self.rows:
            worst = max(worst, abs(model_kge - paper_kge) / paper_kge)
        return worst

    def render(self) -> str:
        """Table I with model-vs-paper columns."""
        return render_table(
            ["Architecture", "model kGE", "model %", "paper kGE",
             "paper %"],
            self.rows,
            title="Table I — mempool_tile area")


def run_table1() -> Table1Result:
    """Evaluate the area model for every published row."""
    rows = []
    for tile in table1_rows():
        paper_kge, paper_pct = PAPER_TABLE1[tile.label]
        rows.append((tile.label, round(tile.kge, 1),
                     round(tile.percent, 1), paper_kge, paper_pct))
    return Table1Result(rows=rows)


def variant_area_rows(num_cores: int = 256) -> list:
    """One area row per *registered* variant, at representative params.

    Registered through the open variant API, every plugin's
    ``tile_area_kge`` cost-model hook lands here — user variants appear
    automatically.  Rows: ``(name, label, per-tile added kGE, per-core
    added kGE, tile area %)`` at a system scale of ``num_cores``.
    """
    rows = []
    for name, plugin in list_variants():
        variant = VariantSpec(name, params=plugin.listing_params())
        overhead = variant_overhead_kge(variant, num_cores)
        rows.append((
            name,
            variant.materialize(num_cores).label(),
            round(overhead, 1),
            round(overhead / TILE_CORES, 2),
            round(100.0 * (TILE_BASE_KGE + overhead) / TILE_BASE_KGE, 1),
        ))
    return rows


def variant_area_table(num_cores: int = 256) -> str:
    """The registry-wide area accounting as a rendered table."""
    return render_table(
        ["variant", "label", "tile +kGE", "kGE/core", "tile %"],
        variant_area_rows(num_cores),
        title=(f"Registered variants — modeled tile area overhead "
               f"@ {num_cores} cores"))


def scaling_table(core_counts=(16, 64, 256, 1024)) -> str:
    """The §III-A scaling argument as numbers: total added kGE."""
    rows = []
    for cores in core_counts:
        rows.append((
            cores,
            round(system_overhead_kge(cores, "lrscwait_ideal"), 0),
            round(system_overhead_kge(cores, "lrscwait", queue_slots=8), 0),
            round(system_overhead_kge(cores, "colibri", num_addresses=4), 0),
        ))
    return render_table(
        ["#Cores", "ideal queue kGE", "LRSCwait_8 kGE", "Colibri_4 kGE"],
        rows,
        title="System-level added area (O(n^2) vs O(n))")
