"""Table II — energy per atomic access at maximum contention.

Paper setup: the histogram at its highest contention (1 bin), measured
post-layout at 600 MHz.  Rows: Atomic Add (29 pJ/op), Colibri
(124 pJ/op, the ±0 baseline), LRSC with 128-cycle backoff (884 pJ/op,
+613 %), Atomic Add lock (1092 pJ/op, +780 %).

We regenerate the table from simulated event counts priced by the
calibrated :class:`~repro.power.energy.EnergyModel`; the Δ column is
computed against Colibri exactly like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scenarios.run import run_scenarios
from .harness import TABLE2_SERIES, histogram_spec
from .reporting import render_table

#: Published Table II: label -> (power mW, energy pJ/op, delta %).
PAPER_TABLE2 = {
    "Atomic Add": (175, 29, -77),
    "Colibri": (169, 124, 0),
    "LRSC": (186, 884, 613),
    "Atomic Add lock": (188, 1092, 780),
}


@dataclass
class Table2Result:
    """Measured energy table."""

    num_cores: int
    rows: list  # (label, power mW, pJ/op, delta %)

    def delta_percent(self, label: str) -> float:
        """Energy/op vs. the Colibri row, in percent (paper's Δ)."""
        by_label = {row[0]: row for row in self.rows}
        colibri = by_label["Colibri"][2]
        return 100.0 * (by_label[label][2] - colibri) / colibri

    def ratio(self, label: str) -> float:
        """Energy/op of ``label`` relative to Colibri."""
        by_label = {row[0]: row for row in self.rows}
        return by_label[label][2] / by_label["Colibri"][2]

    def render(self) -> str:
        """Table II with paper reference columns (blank for rows the
        paper does not report, e.g. user-registered variant series)."""
        merged = []
        for label, power, pj, delta in self.rows:
            paper_power, paper_pj, paper_delta = PAPER_TABLE2.get(
                label, ("-", "-", None))
            merged.append((label, round(power, 1), round(pj, 1),
                           f"{delta:+.0f}%", paper_power, paper_pj,
                           "-" if paper_delta is None
                           else f"{paper_delta:+d}%"))
        return render_table(
            ["Atomic access", "mW", "pJ/op", "delta",
             "paper mW", "paper pJ/op", "paper delta"],
            merged,
            title=(f"Table II — energy per op, histogram @ 1 bin "
                   f"({self.num_cores} cores)"))


def table2_specs(num_cores: int = 64, updates_per_core: int = 8,
                 seed: int = 0, series=None) -> list:
    """The scenario specs behind Table II's rows (default: the paper's
    four; pass extra :class:`~repro.eval.harness.SeriesSpec` rows to
    measure registered variants alongside them)."""
    return [histogram_spec(entry, num_cores, 1, updates_per_core,
                           seed=seed)
            for entry in (TABLE2_SERIES if series is None else series)]


def run_table2(num_cores: int = 64, updates_per_core: int = 8,
               seed: int = 0, jobs: int = 1, cache=None,
               series=None) -> Table2Result:
    """Regenerate Table II at the given scale (histogram, 1 bin).

    Rows are independent scenario specs; ``jobs``/``cache`` shard and
    memoize them (see :mod:`repro.scenarios.run`).  ``series`` widens
    the row set beyond the paper's four — any registered variant's
    series renders with blank paper-reference columns — but must keep
    a ``"Colibri"`` row, the Δ baseline.
    """
    if series is None:
        series = TABLE2_SERIES
    specs: list = table2_specs(num_cores, updates_per_core, seed=seed,
                               series=series)
    results = run_scenarios(specs, jobs=jobs, cache=cache)
    raw = []
    for entry, result in zip(series, results):
        point = result.point
        raw.append((entry.label, point.energy.power_mw(),
                    point.pj_per_op))
    colibri_pj = next((pj for label, _p, pj in raw if label == "Colibri"),
                      None)
    if colibri_pj is None:
        from ..engine.errors import ConfigError
        raise ConfigError(
            "run_table2 needs a 'Colibri' series row — it is the Δ "
            "column's baseline; include it in the custom series list")
    rows = [(label, power, pj, 100.0 * (pj - colibri_pj) / colibri_pj)
            for label, power, pj in raw]
    return Table2Result(num_cores=num_cores, rows=rows)
