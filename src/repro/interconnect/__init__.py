"""Interconnect: message types and the hierarchical network model."""

from .messages import (
    AMO_OPS,
    MemRequest,
    MemResponse,
    Op,
    Status,
    SuccessorUpdate,
    WAIT_OPS,
    WakeUpRequest,
    WRITE_OPS,
)
from .network import Network

__all__ = [
    "AMO_OPS",
    "MemRequest",
    "MemResponse",
    "Op",
    "Status",
    "SuccessorUpdate",
    "WAIT_OPS",
    "WakeUpRequest",
    "WRITE_OPS",
    "Network",
]
