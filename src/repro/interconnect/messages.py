"""Message and operation types exchanged between cores and memory.

Four message families exist, mirroring the paper's Fig. 2:

* :class:`MemRequest` — core → bank: loads, stores, AMOs, LR/SC, and the
  new LRwait/SCwait/Mwait operations (§III).
* :class:`MemResponse` — bank → core: the (possibly *withheld*)
  response.  For LRwait/Mwait the controller delays this message until
  the issuing core reaches the head of the reservation queue — that
  delay is the entire mechanism that removes polling.
* :class:`SuccessorUpdate` — bank → Qnode: Colibri's enqueue message
  that links a new tail behind the previous one (§IV, step 4).
* :class:`WakeUpRequest` — Qnode → bank: Colibri's dequeue message that
  tells the controller which core to serve next (§IV, step 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class Op(Enum):
    """Memory operation mnemonics (RV32A plus the LRSCwait extension)."""

    LW = "lw"
    SW = "sw"
    AMO_ADD = "amoadd"
    AMO_SWAP = "amoswap"
    AMO_AND = "amoand"
    AMO_OR = "amoor"
    AMO_XOR = "amoxor"
    AMO_MAX = "amomax"
    AMO_MIN = "amomin"
    LR = "lr"
    SC = "sc"
    LRWAIT = "lrwait"
    SCWAIT = "scwait"
    MWAIT = "mwait"


#: Operations that modify memory when they succeed.
WRITE_OPS = frozenset({
    Op.SW, Op.AMO_ADD, Op.AMO_SWAP, Op.AMO_AND, Op.AMO_OR,
    Op.AMO_XOR, Op.AMO_MAX, Op.AMO_MIN, Op.SC, Op.SCWAIT,
})

#: Read-modify-write operations handled entirely inside the bank adapter.
AMO_OPS = frozenset({
    Op.AMO_ADD, Op.AMO_SWAP, Op.AMO_AND, Op.AMO_OR,
    Op.AMO_XOR, Op.AMO_MAX, Op.AMO_MIN,
})

#: Operations whose response may be withheld by the controller.
WAIT_OPS = frozenset({Op.LRWAIT, Op.MWAIT})


class Status(Enum):
    """Response status codes."""

    #: Operation succeeded (for SC/SCwait: the store was performed).
    OK = "ok"
    #: SC/SCwait failed: no valid reservation at store time.
    SC_FAIL = "sc_fail"
    #: LRwait/Mwait rejected: the hardware queue had no free slot
    #: (§III-B: "cores executing an LRwait to a full queue will fail
    #: immediately").
    QUEUE_FULL = "queue_full"


_req_ids = itertools.count()


@dataclass(slots=True)
class MemRequest:
    """A core-issued memory operation travelling to a bank."""

    op: Op
    core_id: int
    addr: int
    #: Store data / AMO operand (ignored by loads).
    value: int = 0
    #: Mwait only: the value the core believes is current; if memory
    #: already differs when the Mwait is served, it completes at once.
    expected: Optional[int] = None
    #: Unique id for tracing and response matching.
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: Cycle the core issued the request (filled by the core model).
    issued_at: int = 0

    def __str__(self) -> str:  # pragma: no cover - tracing convenience
        return (f"{self.op.value} core={self.core_id} "
                f"addr=0x{self.addr:x} val={self.value}")


@dataclass(slots=True)
class MemResponse:
    """A bank's answer to a :class:`MemRequest`."""

    op: Op
    core_id: int
    addr: int
    #: Loaded/previous value (loads, AMOs, LR, LRwait, Mwait).
    value: int = 0
    status: Status = Status.OK
    req_id: int = 0
    #: Colibri only (SCwait/Mwait responses): ``True`` when the
    #: controller had already been told about a successor (tail moved
    #: past this core), so the Qnode must emit/await the WakeUpRequest;
    #: ``False`` when the controller freed the queue (head == tail).
    successor_pending: bool = False


@dataclass(slots=True)
class SuccessorUpdate:
    """Colibri: link ``successor`` behind ``prev_core``'s Qnode."""

    bank_id: int
    addr: int
    #: The core whose Qnode receives this update (previous tail).
    prev_core: int
    #: The newly enqueued core to be linked as successor.
    successor: int


@dataclass(slots=True)
class WakeUpRequest:
    """Colibri: tell the controller to serve ``successor`` next."""

    bank_id: int
    addr: int
    #: The dequeuing core whose Qnode sent the request.
    from_core: int
    #: The core to promote to head and serve.
    successor: int
