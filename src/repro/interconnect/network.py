"""The hierarchical interconnect model.

The network delivers messages between cores (and their Qnodes) and bank
controllers with a fixed one-way latency per distance class (local tile
/ same group / remote group), mirroring MemPool's hierarchical crossbar.

Two properties matter for correctness and fidelity:

* **Per-channel FIFO.** All messages between a given (core, bank) pair
  experience identical latency and the event queue preserves insertion
  order for same-cycle events, so delivery order equals send order.
  Colibri's correctness argument (paper §IV-A: a ``WakeUpRequest``
  following an SCwait through the same path cannot overtake it) relies
  on exactly this AXI-like ordering, which the test-suite asserts.
* **Contention lives at the bank port, not in the links.** MemPool's
  crossbars are non-blocking; the serialization the paper measures
  happens where requests converge on a single bank.  The request path
  therefore has constant latency here, and queueing is modelled by the
  bank port scheduler (:mod:`repro.memory.controller`).

Every delivery is counted in :class:`~repro.engine.stats.NetworkStats`
(message kind + hops), which feeds the Table II energy model: the
polling/retry traffic of LRSC-based schemes shows up directly in these
counters.
"""

from __future__ import annotations

from typing import Callable

from ..arch.topology import Topology
from ..engine.simulator import Simulator
from ..engine.stats import NetworkStats
from .messages import MemRequest, MemResponse, SuccessorUpdate, WakeUpRequest


class ThrottledPort:
    """A shared port accepting ``per_cycle`` messages per cycle.

    Arrivals beyond the budget of a cycle spill into following cycles
    in FIFO order; the returned slot is the cycle the message actually
    passes the port.  This is a busy-until token scheme, cheap enough
    to sit on every delivery.
    """

    def __init__(self, per_cycle: int) -> None:
        self.per_cycle = per_cycle
        self._cycle = -1
        self._used = 0

    def next_slot(self, arrival: int) -> int:
        """FIFO slot assignment for a message arriving at ``arrival``."""
        if arrival > self._cycle:
            self._cycle = arrival
            self._used = 1
            return arrival
        if self._used < self.per_cycle:
            self._used += 1
            return self._cycle
        self._cycle += 1
        self._used = 1
        return self._cycle

    def reset(self) -> None:
        """Forget the token window (warm machine reuse)."""
        self._cycle = -1
        self._used = 0


class Network:
    """Latency-accurate message delivery between cores and banks."""

    def __init__(self, sim: Simulator, topology: Topology,
                 stats: NetworkStats) -> None:
        self.sim = sim
        self.topology = topology
        self.stats = stats
        # Stable hub object: cached for the one-load-one-branch
        # telemetry gate on every send (see repro.telemetry.hub).
        self._telemetry = sim.telemetry
        config = topology.config
        #: Shared remote-request ingress, one per tile (see
        #: LatencyConfig.tile_ingress_per_cycle).
        self._tile_ingress = [
            ThrottledPort(config.latency.tile_ingress_per_cycle)
            for _ in range(config.num_tiles)
        ]
        #: bank_id -> callable(MemRequest | WakeUpRequest)
        self._bank_handlers: dict = {}
        #: core_id -> callable(MemResponse)
        self._core_handlers: dict = {}
        #: core_id -> callable(SuccessorUpdate)  (the Qnode input port)
        self._qnode_handlers: dict = {}

    def reset(self) -> None:
        """Reset the ingress throttles (warm machine reuse).

        Handler registrations are construction-time wiring and stay;
        message counters live in :class:`NetworkStats`, reset separately.
        """
        for port in self._tile_ingress:
            port.reset()

    # -- endpoint registration ------------------------------------------------

    def register_bank(self, bank_id: int,
                      handler: Callable[[object], None]) -> None:
        """Attach the request-input handler of a bank controller."""
        self._bank_handlers[bank_id] = handler

    def register_core(self, core_id: int,
                      handler: Callable[[MemResponse], None]) -> None:
        """Attach the response-input handler of a core."""
        self._core_handlers[core_id] = handler

    def register_qnode(self, core_id: int,
                       handler: Callable[[SuccessorUpdate], None]) -> None:
        """Attach the SuccessorUpdate input of a core's Qnode."""
        self._qnode_handlers[core_id] = handler

    # -- sends -------------------------------------------------------------------

    def _ingress_slot(self, bank_id: int, arrival: int) -> int:
        """Pass the target tile's shared ingress port (remote requests).

        Requests from outside the bank's tile queue at the tile's
        shared ingress; a saturated port delays them — and every other
        remote request to that tile — in FIFO order.  This models the
        interconnect stage where atomics' retry storms interfere with
        unrelated traffic (Fig. 5).  Local requests never call this.
        """
        tile = self.topology.tile_of_bank(bank_id)
        slot = self._tile_ingress[tile].next_slot(arrival)
        self.stats.ingress_wait_cycles += slot - arrival
        return slot

    def send_request(self, req: MemRequest, bank_id: int) -> None:
        """Core → bank: deliver a memory request after the route latency.

        One memoized route lookup serves hop accounting and delivery
        alike (see :meth:`~repro.arch.topology.Topology.route`).
        """
        cls, latency, hops = self.topology.route(req.core_id, bank_id)
        self.stats.count_message(req.op.value, hops)
        cb = self._telemetry.on_message
        if cb is not None:
            cb(self.sim.now, req.op.value, cls, latency, hops)
        delivery = self.sim.now + latency
        if cls != "local":
            delivery = self._ingress_slot(bank_id, delivery)
        self.sim.schedule_at(delivery, self._bank_handlers[bank_id], arg=req)

    def send_response(self, resp: MemResponse, bank_id: int) -> None:
        """Bank → core: deliver a response after the route latency."""
        cls, latency, hops = self.topology.route(resp.core_id, bank_id)
        self.stats.count_message("resp_" + resp.op.value, hops)
        cb = self._telemetry.on_message
        if cb is not None:
            cb(self.sim.now, "resp_" + resp.op.value, cls, latency, hops)
        self.sim.schedule(latency, self._core_handlers[resp.core_id],
                          arg=resp)

    def send_successor_update(self, msg: SuccessorUpdate) -> None:
        """Bank → Qnode: Colibri enqueue-link message."""
        cls, latency, hops = self.topology.route(msg.prev_core, msg.bank_id)
        self.stats.count_message("successor_update", hops)
        cb = self._telemetry.on_message
        if cb is not None:
            cb(self.sim.now, "successor_update", cls, latency, hops)
        self.sim.schedule(latency, self._qnode_handlers[msg.prev_core],
                          arg=msg)

    def send_wakeup(self, msg: WakeUpRequest) -> None:
        """Qnode → bank: Colibri dequeue/wake message.

        WakeUpRequests travel the request path, so they share the tile
        ingress with ordinary requests (and stay FIFO behind the same
        core's SCwait, which was sent earlier at equal latency).
        """
        cls, latency, hops = self.topology.route(msg.from_core, msg.bank_id)
        self.stats.count_message("wakeup_request", hops)
        cb = self._telemetry.on_message
        if cb is not None:
            cb(self.sim.now, "wakeup_request", cls, latency, hops)
        delivery = self.sim.now + latency
        if cls != "local":
            delivery = self._ingress_slot(msg.bank_id, delivery)
        self.sim.schedule_at(delivery, self._bank_handlers[msg.bank_id],
                             arg=msg)
