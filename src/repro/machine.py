"""The top-level simulated system.

:class:`Machine` instantiates and wires a complete MemPool-like
platform: the event kernel, the hierarchical network, one
:class:`~repro.memory.controller.BankController` per SPM bank (with the
configured atomic variant), and one :class:`~repro.cores.core.Core` (+
Qnode) per hart.  It is the main entry point of the library::

    from repro import Machine, SystemConfig, VariantSpec

    machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri())
    counter = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        for _ in range(10):
            resp = yield from api.lrwait(counter)
            yield from api.compute(1)
            yield from api.scwait(counter, resp.value + 1)
            yield from api.retire()

    machine.load_all(kernel)
    stats = machine.run()
    assert machine.peek(counter) == 10 * machine.config.num_cores
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .arch.address_map import AddressMap
from .arch.allocator import Allocator
from .arch.config import SystemConfig
from .arch.topology import Topology
from .cores.api import CoreApi
from .cores.core import Core
from .engine.simulator import Simulator
from .engine.stats import BankStats, CoreStats, NetworkStats, SimStats
from .engine.trace import Tracer
from .interconnect.network import Network
from .memory.controller import BankController
from .memory.variants import VariantSpec
from .telemetry.hub import Telemetry
from .telemetry.probes import create_probe

#: Type of a kernel factory: gets the core's API, returns the coroutine.
KernelFactory = Callable[[CoreApi], Generator]


class Machine:
    """A fully wired simulated manycore system."""

    def __init__(self, config: SystemConfig, variant: VariantSpec,
                 seed: int = 0, strict: bool = True,
                 max_cycles: int = 100_000_000,
                 tracer: Optional[Tracer] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        config.validate()
        self.config = config
        self.variant = variant
        self.seed = seed
        self.strict = strict
        self.sim = Simulator(max_cycles=max_cycles, tracer=tracer,
                             telemetry=telemetry)
        #: The telemetry hook hub every component of this machine
        #: reports into; probes subscribe here (see ``attach_probes``).
        self.telemetry = self.sim.telemetry
        #: Probes attached via :meth:`attach_probes`, install order.
        self.probes: list = []
        self.topology = Topology(config)
        self.address_map = AddressMap(config)
        self.allocator = Allocator(config)
        self.stats = SimStats(
            cores=[CoreStats(core_id=i) for i in range(config.num_cores)],
            banks=[BankStats(bank_id=i) for i in range(config.num_banks)],
            network=NetworkStats(),
            variant=variant)
        self.network = Network(self.sim, self.topology, self.stats.network)
        self.banks = [
            BankController(bank_id, self.sim, self.network, self.address_map,
                           variant, config.num_cores,
                           self.stats.banks[bank_id], strict=strict)
            for bank_id in range(config.num_banks)
        ]
        self.cores = [
            Core(core_id, self.sim, self.network, self.address_map,
                 self.stats.cores[core_id])
            for core_id in range(config.num_cores)
        ]
        self.apis = [
            CoreApi(core_id, config.num_cores, seed=seed)
            for core_id in range(config.num_cores)
        ]
        self._loaded: list = []
        self.sim.add_blocked_reporter(self._blocked_cores)

    # -- warm reuse ---------------------------------------------------------

    @property
    def resettable(self) -> bool:
        """True when every bank adapter declares itself
        :attr:`~repro.memory.adapter.AtomicAdapter.RESETTABLE`, i.e.
        :meth:`reset` restores the exact post-build state.  Third-party
        adapters that don't opt in force the batch runner to rebuild."""
        return all(bank.adapter.RESETTABLE for bank in self.banks)

    def reset(self) -> None:
        """Restore the post-construction state without rebuilding.

        After ``reset()`` the machine behaves bit-identically to a
        freshly constructed ``Machine(config, variant, seed=seed, ...)``:
        clock at zero, memory zeroed, adapters empty, allocator rewound,
        per-core RNG streams rewound, all counters zero.  This is the
        primitive the batch runner amortizes ``build_machine`` with.

        Raises :class:`~repro.engine.errors.SimulationError` when the
        machine has attached probes (probe state is per-run; probed runs
        must use a fresh machine) or a non-resettable adapter.
        """
        from .engine.errors import SimulationError
        if self.probes:
            raise SimulationError(
                "cannot reset a machine with attached probes")
        if not self.resettable:
            bad = sorted({type(b.adapter).__name__ for b in self.banks
                          if not b.adapter.RESETTABLE})
            raise SimulationError(
                f"adapter(s) {', '.join(bad)} not RESETTABLE; "
                f"rebuild the machine instead")
        self.sim.reset()
        self.network.reset()
        self.stats.reset()
        for bank in self.banks:
            bank.reset()
        for core in self.cores:
            core.reset()
        for api in self.apis:
            api.reseed(self.seed)
        self.allocator.reset()
        self._loaded.clear()

    # -- kernel loading -----------------------------------------------------

    def load(self, core_id: int, factory: KernelFactory) -> None:
        """Attach ``factory(api)`` as the kernel of one core."""
        core = self.cores[core_id]
        core.load(factory(self.apis[core_id]))
        self._loaded.append(core)

    def load_all(self, factory: KernelFactory) -> None:
        """Attach the same kernel factory to every core."""
        for core_id in range(self.config.num_cores):
            self.load(core_id, factory)

    def load_range(self, core_ids, factory: KernelFactory) -> None:
        """Attach a kernel factory to a subset of cores."""
        for core_id in core_ids:
            self.load(core_id, factory)

    # -- telemetry probes ---------------------------------------------------

    def attach_probes(self, probes) -> list:
        """Install telemetry probes; call before the simulation starts.

        ``probes`` mixes registered probe names (``"bank_contention"``)
        and ready-made :class:`~repro.telemetry.probes.Probe`
        instances.  Returns the installed instances in order; they are
        also kept on :attr:`probes` and finalized automatically when a
        run ends (``TelemetryReport.collect(machine)`` then assembles
        the report).
        """
        installed = []
        for probe in probes or ():
            if isinstance(probe, str):
                probe = create_probe(probe)
            probe.install(self)
            self.probes.append(probe)
            installed.append(probe)
        return installed

    def telemetry_report(self, spec=None):
        """The :class:`~repro.telemetry.report.TelemetryReport` of the
        attached probes (run the machine first)."""
        from .telemetry.report import TelemetryReport
        return TelemetryReport.collect(self, spec=spec)

    def _finalize_probes(self) -> None:
        for probe in self.probes:
            probe.finalize(self, self.stats)

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[Callable[[], bool]] = None) -> SimStats:
        """Start all loaded kernels and run to completion (or ``until``).

        Raises :class:`~repro.engine.errors.DeadlockError` if progress
        stops while cores are still blocked — the observable form of a
        violated LRSCwait progress constraint.
        """
        for core in self._loaded:
            core.start()
        self.sim.run(until=until)
        self.stats.cycles = self._makespan()
        self._finalize_probes()
        return self.stats

    def run_for(self, cycles: int) -> SimStats:
        """Start all loaded kernels and run for a fixed horizon.

        For open-loop measurements of workloads that never terminate
        (endless kernels) or would take pathologically long (e.g. a
        retry storm with a too-small backoff — the regime the backoff
        ablation quantifies).  Kernels are frozen mid-flight at the
        horizon; counters reflect work retired within it.
        """
        for core in self._loaded:
            core.start()
        self.sim.run_for(cycles)
        self.stats.cycles = self.sim.now
        self._finalize_probes()
        return self.stats

    def run_until_finished(self, core_ids) -> SimStats:
        """Run until the given cores finish (others may run forever).

        Used by the interference experiment (Fig. 5), where poller
        kernels loop endlessly and only the workers' completion matters.
        """
        watched = [self.cores[i] for i in core_ids]

        def done() -> bool:
            return all(core.finished for core in watched)

        return self.run(until=done)

    def _makespan(self) -> int:
        finish_cycles = [core.finish_cycle for core in self._loaded
                         if core.finish_cycle is not None]
        if not finish_cycles:
            return self.sim.now
        if len(finish_cycles) < len(self._loaded):
            # Some kernels run forever (pollers): use the stop time.
            return self.sim.now
        return max(finish_cycles)

    def _blocked_cores(self) -> list:
        blocked = []
        for core in self._loaded:
            description = core.blocked_description
            if description:
                blocked.append(description)
        return blocked

    # -- memory access for setup/verification ------------------------------------

    def peek(self, addr: int) -> int:
        """Read simulated memory without traffic (test/verify)."""
        bank = self.address_map.bank_of(addr)
        return self.banks[bank].peek(addr)

    def poke(self, addr: int, value: int) -> None:
        """Write simulated memory without traffic (setup)."""
        bank = self.address_map.bank_of(addr)
        self.banks[bank].poke(addr, value)

    def peek_array(self, base: int, count: int) -> list:
        """Read ``count`` consecutive words starting at ``base``."""
        word = self.config.word_bytes
        return [self.peek(base + i * word) for i in range(count)]

    def poke_array(self, base: int, values) -> None:
        """Write consecutive words starting at ``base``."""
        word = self.config.word_bytes
        for i, value in enumerate(values):
            self.poke(base + i * word, value)
