"""Memory subsystem: banks, port controllers, and atomic-unit variants.

Variants are an open registry (:func:`register_variant`); importing
this package registers the paper's six built-ins plus the
:mod:`~repro.memory.extra_variants` demonstration pair.
"""

from .adapter import AmoAdapter, AtomicAdapter
from .bank import SpmBank
from .colibri import ColibriAdapter
from .controller import BankController, build_adapter
from .lrsc import LrscAdapter
from .lrsc_variants import LrscBankAdapter, LrscTableAdapter
from .lrscwait import LrscWaitAdapter
from .variants import (
    AtomicVariant,
    UnknownVariantError,
    VariantParam,
    VariantSpec,
    get_variant,
    list_variants,
    register_variant,
    unregister_variant,
)

# Imported only for its registration side effect (exactly like the
# built-in workloads in repro.scenarios); nothing here references its
# classes, so removing the module removes the variants and nothing else.
from . import extra_variants as _extra_variants  # noqa: E402,F401

__all__ = [
    "AmoAdapter",
    "AtomicAdapter",
    "AtomicVariant",
    "SpmBank",
    "ColibriAdapter",
    "BankController",
    "build_adapter",
    "LrscAdapter",
    "LrscBankAdapter",
    "LrscTableAdapter",
    "LrscWaitAdapter",
    "UnknownVariantError",
    "VARIANT_KINDS",
    "VariantParam",
    "VariantSpec",
    "get_variant",
    "list_variants",
    "register_variant",
    "unregister_variant",
]


def __getattr__(name: str):
    # VARIANT_KINDS is a live view of the registry (PEP 562), so user
    # registrations appear in it; delegate to the variants module.
    if name == "VARIANT_KINDS":
        from . import variants
        return variants.VARIANT_KINDS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
