"""Memory subsystem: banks, port controllers, and atomic-unit variants."""

from .adapter import AmoAdapter, AtomicAdapter
from .bank import SpmBank
from .colibri import ColibriAdapter
from .controller import BankController, build_adapter
from .lrsc import LrscAdapter
from .lrsc_variants import LrscBankAdapter, LrscTableAdapter
from .lrscwait import LrscWaitAdapter
from .variants import VARIANT_KINDS, VariantSpec

__all__ = [
    "AmoAdapter",
    "AtomicAdapter",
    "SpmBank",
    "ColibriAdapter",
    "BankController",
    "build_adapter",
    "LrscAdapter",
    "LrscBankAdapter",
    "LrscTableAdapter",
    "LrscWaitAdapter",
    "VARIANT_KINDS",
    "VariantSpec",
]
