"""Base atomic adapter: loads, stores and single-instruction AMOs.

Every variant's adapter inherits from :class:`AtomicAdapter`, which
services the operations all of them share (LW/SW and the RV32A
read-modify-write instructions) and defines the extension points the
reservation machinery hooks into:

* :meth:`AtomicAdapter.handle_reserved` — LR/SC/LRwait/SCwait/Mwait
  dispatch, overridden by each variant;
* :meth:`AtomicAdapter.on_write` — called after *every* committed store
  so reservations on the written address can be invalidated (paper
  §III step 3: "A store to the same address clears the reservation").
"""

from __future__ import annotations

from ..engine.errors import ProtocolViolation
from ..interconnect.messages import AMO_OPS, MemRequest, Op, Status


class AtomicAdapter:
    """Services LW/SW/AMO; subclasses add reservation protocols.

    The adapter runs *inside* the bank's service slot: all its state
    transitions for one request happen atomically at the request's
    service cycle, exactly like combinational adapter logic next to the
    SRAM.  Outgoing messages (responses, SuccessorUpdates) are handed to
    the controller, which puts them on the network.
    """

    #: Ops this adapter accepts beyond LW/SW/AMO; subclasses extend.
    EXTRA_OPS: frozenset = frozenset()

    #: Whether :meth:`reset` restores this adapter to its post-build
    #: state.  The batch runner reuses a warm machine only when every
    #: bank adapter declares itself resettable; unknown third-party
    #: adapters default to ``False`` and force a rebuild per point.
    #: Subclasses that add mutable state must either override
    #: :meth:`reset` (calling ``super().reset()``) or leave this False.
    RESETTABLE: bool = False

    def __init__(self, controller) -> None:
        self.ctrl = controller

    def reset(self) -> None:
        """Discard all reservation/queue state, as if freshly built.

        Only meaningful when :attr:`RESETTABLE` is true; the base
        adapter keeps no mutable state, so the default is a no-op.
        """

    # -- main dispatch -------------------------------------------------------

    def handle(self, req: MemRequest) -> None:
        """Service one request during its bank slot."""
        op = req.op
        if op is Op.LW:
            self.ctrl.respond(req, value=self.ctrl.read(req.addr))
        elif op is Op.SW:
            self.ctrl.write(req.addr, req.value)
            self.on_write(req.addr)
            self.ctrl.respond(req, value=0)
        elif op in AMO_OPS:
            old = self.ctrl.read(req.addr)
            self.ctrl.write(req.addr, self._amo_result(op, old, req.value))
            self.on_write(req.addr)
            self.ctrl.respond(req, value=old)
        elif op in self.EXTRA_OPS:
            self.handle_reserved(req)
        else:
            raise ProtocolViolation(
                f"bank {self.ctrl.bank_id}: op {op.value} unsupported by "
                f"{type(self).__name__}")

    def _amo_result(self, op: Op, old: int, operand: int) -> int:
        """Combinational AMO ALU (max/min are signed, as amomax/amomin)."""
        if op is Op.AMO_ADD:
            return old + operand
        if op is Op.AMO_SWAP:
            return operand
        if op is Op.AMO_AND:
            return old & operand
        if op is Op.AMO_OR:
            return old | operand
        if op is Op.AMO_XOR:
            return old ^ operand
        bank = self.ctrl.bank
        signed_old = bank.to_signed(old)
        signed_new = bank.to_signed(operand & bank.mask)
        if op is Op.AMO_MAX:
            return old if signed_old >= signed_new else operand
        if op is Op.AMO_MIN:
            return old if signed_old <= signed_new else operand
        raise ProtocolViolation(f"not an AMO: {op}")

    # -- extension points ------------------------------------------------------

    def handle_reserved(self, req: MemRequest) -> None:
        """Service a reservation-family op (LR/SC/waits); variant-specific."""
        raise ProtocolViolation(
            f"bank {self.ctrl.bank_id}: {req.op.value} needs a reservation "
            f"adapter, none configured")

    def handle_wakeup(self, msg) -> None:
        """Service a Colibri WakeUpRequest; only Colibri implements it."""
        raise ProtocolViolation(
            f"bank {self.ctrl.bank_id}: unexpected WakeUpRequest for "
            f"{type(self).__name__}")

    def on_write(self, addr: int) -> None:
        """Hook after any committed store to ``addr``; default: nothing."""

    # -- introspection (tests) ---------------------------------------------------

    def pending_waiters(self) -> int:
        """Cores currently parked in this adapter (0 for stateless ones)."""
        return 0


class AmoAdapter(AtomicAdapter):
    """The plain RV32A unit: no reservations at all.

    This is the paper's *Atomic Add* configuration — the throughput
    roofline of Fig. 3, usable only when the RMW fits one instruction.
    """

    #: Fails SC immediately rather than erroring: RISC-V permits an SC
    #: without a valid reservation to simply fail, and software written
    #: against LR/SC should degrade, not crash, on an AMO-only unit.
    EXTRA_OPS = frozenset({Op.SC})

    RESETTABLE = True

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op is Op.SC:
            self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
            return
        super().handle_reserved(req)
