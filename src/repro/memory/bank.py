"""SPM bank storage.

A bank is a single-ported SRAM macro holding ``words_per_bank`` words.
Values are stored as unsigned machine words; helpers convert to/from
two's-complement for the signed AMOs (``amomax``/``amomin``).
"""

from __future__ import annotations

from ..engine.errors import MemoryError_


class SpmBank:
    """Word-addressable storage of one scratchpad-memory bank."""

    def __init__(self, bank_id: int, words: int, word_bytes: int = 4) -> None:
        self.bank_id = bank_id
        self.words = words
        self.word_bytes = word_bytes
        self.mask = (1 << (word_bytes * 8)) - 1
        self._data = [0] * words

    def reset(self) -> None:
        """Zero the storage in place (warm machine reuse)."""
        self._data[:] = [0] * self.words

    def read(self, row: int) -> int:
        """Return the word at ``row`` (unsigned)."""
        self._check(row)
        return self._data[row]

    def write(self, row: int, value: int) -> None:
        """Store ``value`` at ``row``, truncated to the word width."""
        self._check(row)
        self._data[row] = value & self.mask

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned word as two's-complement."""
        sign_bit = 1 << (self.word_bytes * 8 - 1)
        return value - (self.mask + 1) if value & sign_bit else value

    def _check(self, row: int) -> None:
        if not 0 <= row < self.words:
            raise MemoryError_(
                f"bank {self.bank_id}: row {row} out of range "
                f"(0..{self.words - 1})")
