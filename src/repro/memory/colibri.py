"""Colibri: the distributed reservation queue (paper §IV).

Instead of a per-bank queue sized for every core, each bank controller
keeps only ``num_addresses`` **head/tail register pairs** and every core
contributes one hardware **Qnode** (see
:class:`~repro.cores.qnode.Qnode`).  The waiting order is a linked list
threaded through the Qnodes:

* an **LRwait/Mwait** hitting a tracked address swaps the tail register
  to the newcomer and sends a :class:`SuccessorUpdate` to the previous
  tail's Qnode (enqueue, Fig. 2 steps 3-4);
* an **SCwait** leaving a core passes its Qnode, which — once the
  successor link is known — sends a :class:`WakeUpRequest` back to the
  controller; the controller promotes the successor to head and finally
  releases its withheld LRwait response (dequeue, Fig. 2 steps 5-7).

The controller-side state machine below is deliberately explicit about
the two races the paper argues correct in §IV-A:

1. *SuccessorUpdate still in flight when the head's SCwait arrives*:
   the controller sees ``tail != head``, so it only **temporarily
   invalidates the head** and waits for the bounced WakeUpRequest; the
   response carries ``successor_pending=True`` so the Qnode knows a
   link will arrive.
2. *Queue touched while links look broken*: the only writers of the
   head register are an LRwait allocating an empty queue and a
   WakeUpRequest — both of which re-establish consistency, matching the
   paper's argument verbatim.

Per-channel FIFO delivery (``Network``) guarantees a WakeUpRequest sent
after an SCwait from the same core arrives after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.errors import ProtocolViolation, SimulationError
from ..interconnect.messages import (
    MemRequest,
    Op,
    Status,
    SuccessorUpdate,
    WakeUpRequest,
)
from .adapter import AtomicAdapter


@dataclass
class _ColibriQueue:
    """One head/tail register pair tracking a single address."""

    addr: int
    head: int
    tail: int
    #: False between the head's dequeue and the WakeUpRequest arrival.
    head_valid: bool = True
    #: The head's live reservation; cleared by interfering stores.
    reservation_valid: bool = False
    #: Op kind of the currently served head (LRWAIT or MWAIT).
    head_op: Optional[Op] = None
    #: Withheld requests of cores linked in this queue, by core id.
    pending: dict = field(default_factory=dict)


class ColibriAdapter(AtomicAdapter):
    """Distributed-queue LRwait controller with Mwait support."""

    EXTRA_OPS = frozenset({Op.LRWAIT, Op.SCWAIT, Op.MWAIT})

    RESETTABLE = True

    def __init__(self, controller, num_addresses: int = 4,
                 strict: bool = True) -> None:
        super().__init__(controller)
        self.num_addresses = num_addresses
        self.strict = strict
        self._queues: dict = {}  # addr -> _ColibriQueue
        self._last_depth = 0

    def reset(self) -> None:
        self._queues.clear()
        self._last_depth = 0

    def _note_depth(self) -> None:
        """Report waiter-count changes to the telemetry queue-depth hook.

        Colibri's waiters are scattered over per-address ``pending``
        maps and monitoring Mwait heads, so the count is recomputed via
        :meth:`pending_waiters` — only when a probe is subscribed, and
        only after operations that can change it.
        """
        cb = self.ctrl.telemetry.on_queue_depth
        if cb is not None:
            depth = self.pending_waiters()
            if depth != self._last_depth:
                self._last_depth = depth
                cb(self.ctrl.sim.now, self.ctrl.bank_id, depth)

    # -- enqueue: LRwait / Mwait ------------------------------------------------

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op in (Op.LRWAIT, Op.MWAIT):
            self._handle_wait(req)
            self._note_depth()
        elif req.op is Op.SCWAIT:
            self._handle_scwait(req)
            self._note_depth()
        else:
            super().handle_reserved(req)

    def _handle_wait(self, req: MemRequest) -> None:
        queue = self._queues.get(req.addr)
        if queue is not None:
            if self.strict and (req.core_id in queue.pending
                                or (queue.head == req.core_id
                                    and queue.head_valid)):
                raise ProtocolViolation(
                    f"core {req.core_id} enqueued twice on 0x{req.addr:x}")
            previous_tail = queue.tail
            queue.tail = req.core_id
            queue.pending[req.core_id] = req
            self.ctrl.send_successor_update(SuccessorUpdate(
                bank_id=self.ctrl.bank_id, addr=req.addr,
                prev_core=previous_tail, successor=req.core_id))
            return
        if len(self._queues) >= self.num_addresses:
            self.ctrl.respond(req, value=0, status=Status.QUEUE_FULL)
            return
        queue = _ColibriQueue(addr=req.addr, head=req.core_id,
                              tail=req.core_id)
        self._queues[req.addr] = queue
        self.ctrl.trace("colibri_alloc",
                        f"queue @0x{req.addr:x} head=core {req.core_id}")
        self._serve_head(queue, req)

    def _serve_head(self, queue: _ColibriQueue, req: MemRequest) -> None:
        """Serve ``req`` (guaranteed to be the queue head) the current value."""
        value = self.ctrl.read(queue.addr)
        if req.op is Op.LRWAIT:
            queue.reservation_valid = True
            queue.head_op = Op.LRWAIT
            self.ctrl.stats.reservations_placed += 1
            self.ctrl.respond(req, value=value)
            return
        # Mwait: completes immediately when memory already moved on.
        if req.expected is None or value != req.expected:
            self._respond_and_dequeue(queue, req, value)
            return
        queue.reservation_valid = True
        queue.head_op = Op.MWAIT
        self.ctrl.stats.reservations_placed += 1

    # -- dequeue: SCwait ------------------------------------------------------------

    def _handle_scwait(self, req: MemRequest) -> None:
        queue = self._queues.get(req.addr)
        legal = (queue is not None and queue.head_valid
                 and queue.head == req.core_id
                 and queue.head_op is Op.LRWAIT)
        if not legal:
            if self.strict:
                raise ProtocolViolation(
                    f"SCwait from core {req.core_id} to 0x{req.addr:x} "
                    f"without holding the queue head")
            self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
            return
        assert queue is not None
        if queue.reservation_valid:
            queue.reservation_valid = False
            self.ctrl.write(req.addr, req.value)
            # Order matters: the write must precede on_write so an Mwait
            # queue on the same address (different queue slot is
            # impossible — same addr, same queue) is untouched; other
            # adapters' reservations do not exist here.
            self._respond_and_dequeue(queue, req, value=0, status=Status.OK)
        else:
            self._respond_and_dequeue(queue, req, value=1,
                                      status=Status.SC_FAIL)

    def _respond_and_dequeue(self, queue: _ColibriQueue, req: MemRequest,
                             value: int, status: Status = Status.OK) -> None:
        """Answer the head and either free the queue or await the WakeUp.

        ``head == tail`` means nobody enqueued behind the head: the
        queue registers are freed right here (Fig. 2's trivial dequeue).
        Otherwise a successor exists (or its SuccessorUpdate is in
        flight), so the head register is only invalidated and the
        response tells the Qnode a successor is pending.
        """
        if queue.tail == req.core_id:
            if queue.pending:
                raise SimulationError(
                    f"freeing colibri queue 0x{queue.addr:x} with "
                    f"{len(queue.pending)} pending waiters")
            del self._queues[queue.addr]
            self.ctrl.trace("colibri_free", f"queue @0x{queue.addr:x}")
            self.ctrl.respond(req, value=value, status=status,
                              successor_pending=False)
        else:
            queue.head_valid = False
            queue.head_op = None
            self.ctrl.respond(req, value=value, status=status,
                              successor_pending=True)

    # -- WakeUpRequest: promote the successor ------------------------------------------

    def handle_wakeup(self, msg: WakeUpRequest) -> None:
        queue = self._queues.get(msg.addr)
        if queue is None:
            raise SimulationError(
                f"WakeUpRequest for untracked address 0x{msg.addr:x}")
        if queue.head_valid:
            raise SimulationError(
                f"WakeUpRequest for 0x{msg.addr:x} while head "
                f"{queue.head} still valid")
        successor = msg.successor
        pending = queue.pending.pop(successor, None)
        if pending is None:
            raise SimulationError(
                f"WakeUpRequest names core {successor} which has no "
                f"withheld request on 0x{msg.addr:x}")
        queue.head = successor
        queue.head_valid = True
        self._serve_head(queue, pending)
        self._note_depth()

    # -- write monitoring ----------------------------------------------------------------

    def on_write(self, addr: int) -> None:
        """Committed plain store: clear the head's reservation, waking a
        monitoring Mwait head if there is one."""
        queue = self._queues.get(addr)
        if queue is None or not queue.head_valid or not queue.reservation_valid:
            return
        if queue.head_op is Op.LRWAIT:
            queue.reservation_valid = False
            self.ctrl.stats.reservations_invalidated += 1
            return
        # Monitoring Mwait head: release it with the fresh value.  The
        # rest of the chain wakes through Qnode WakeUpRequests (§IV-B).
        queue.reservation_valid = False
        head_req = self._monitoring_request(queue)
        self._respond_and_dequeue(queue, head_req,
                                  value=self.ctrl.read(addr))
        self._note_depth()

    def _monitoring_request(self, queue: _ColibriQueue) -> MemRequest:
        """Reconstruct the head's original request for the response.

        The controller withholds responses for *queued* cores in
        ``pending``; the head's request was consumed when served, so for
        a monitoring Mwait we rebuild an equivalent request envelope
        (op/core/addr are all the response needs).
        """
        return MemRequest(op=Op.MWAIT, core_id=queue.head, addr=queue.addr)

    # -- introspection ------------------------------------------------------------------------

    def pending_waiters(self) -> int:
        """Withheld requests plus live heads parked at this bank."""
        total = 0
        for queue in self._queues.values():
            total += len(queue.pending)
            if queue.head_valid and queue.head_op is Op.MWAIT:
                total += 1
        return total

    def tracked_addresses(self) -> list:
        """Addresses currently holding a head/tail pair (tests)."""
        return sorted(self._queues)

    def queue_state(self, addr: int) -> Optional[_ColibriQueue]:
        """Raw queue registers for one address (tests)."""
        return self._queues.get(addr)
