"""Bank controller: the single port in front of each SPM bank.

Contention in a multi-banked SPM system materializes here: the bank
accepts **one request per cycle**.  Requests (and Colibri
WakeUpRequests) arriving while the port is busy queue up in arrival
order; the waiting time they accumulate is exactly the serialization
the paper's histogram experiment measures when many cores hit one bin.

The controller owns the storage and the variant adapter and offers the
small service interface the adapters run against: ``read``/``write`` on
byte addresses, ``respond`` and Colibri's ``send_successor_update``.
"""

from __future__ import annotations

from ..arch.address_map import AddressMap
from ..engine.simulator import Simulator
from ..engine.stats import BankStats
from ..interconnect.messages import (
    MemRequest,
    MemResponse,
    Status,
    SuccessorUpdate,
    WakeUpRequest,
)
from ..interconnect.network import Network
from .adapter import AtomicAdapter
from .bank import SpmBank
from .variants import VariantSpec, get_variant


def build_adapter(controller: "BankController", variant: VariantSpec,
                  num_cores: int, strict: bool) -> AtomicAdapter:
    """Instantiate the adapter for a :class:`VariantSpec` through the
    variant registry: symbolic parameters (``half``/``cores``/``ideal``)
    resolve against ``num_cores`` here, at machine-build time."""
    plugin = get_variant(variant.kind)
    return plugin.make_adapter(controller, variant.resolved(num_cores),
                               num_cores, strict)


class BankController:
    """One SPM bank, its port scheduler, and its atomic adapter."""

    def __init__(self, bank_id: int, sim: Simulator, network: Network,
                 address_map: AddressMap, variant: VariantSpec,
                 num_cores: int, stats: BankStats,
                 strict: bool = True) -> None:
        self.bank_id = bank_id
        self.sim = sim
        self.network = network
        self.address_map = address_map
        self.stats = stats
        #: Telemetry hub (stable object); adapters reach it through the
        #: controller so fakes can supply their own in tests.
        self.telemetry = sim.telemetry
        self.bank = SpmBank(bank_id, address_map.words_per_bank,
                            address_map.word_bytes)
        self.adapter = build_adapter(self, variant, num_cores, strict)
        self.service_cycles = address_map.config.latency.bank_cycles
        #: First cycle at which the port can accept the next request.
        self._port_free_at = 0
        network.register_bank(bank_id, self.receive)

    def reset(self) -> None:
        """Return the bank to its post-build state (warm machine reuse):
        idle port, zeroed storage, empty adapter.  Only legal when the
        adapter declares :attr:`~AtomicAdapter.RESETTABLE`."""
        self._port_free_at = 0
        self.bank.reset()
        self.adapter.reset()

    # -- port scheduling -------------------------------------------------------

    def receive(self, msg) -> None:
        """Network delivery: schedule the message into the port pipeline."""
        now = self.sim.now
        start = max(now, self._port_free_at)
        if start > now:
            self.stats.conflicts += 1
        self._port_free_at = start + self.service_cycles
        self.stats.busy_cycles += self.service_cycles
        cb = self.telemetry.on_bank_access
        if cb is not None:
            cb(now, self.bank_id, msg, start - now)
        if start == now:
            self._service(msg)
        else:
            self.sim.schedule_at(start, self._service, arg=msg)

    def _service(self, msg) -> None:
        self.stats.accesses += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            if isinstance(msg, WakeUpRequest):
                tracer.log(self.sim.now, f"bank{self.bank_id}",
                           "wakeup_request",
                           f"from core {msg.from_core} "
                           f"successor {msg.successor} @0x{msg.addr:x}")
            else:
                tracer.log(self.sim.now, f"bank{self.bank_id}",
                           msg.op.value,
                           f"core {msg.core_id} @0x{msg.addr:x}")
        if isinstance(msg, WakeUpRequest):
            self.adapter.handle_wakeup(msg)
        else:
            self.adapter.handle(msg)

    def trace(self, kind: str, detail: str = "") -> None:
        """Adapter-visible tracing hook (protocol transitions)."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.log(self.sim.now, f"bank{self.bank_id}", kind, detail)

    # -- adapter service interface -------------------------------------------------

    def read(self, addr: int) -> int:
        """Load the word at a byte address (must map to this bank)."""
        bank, row = self.address_map.locate(addr)
        assert bank == self.bank_id, "request routed to wrong bank"
        return self.bank.read(row)

    def write(self, addr: int, value: int) -> None:
        """Store a word at a byte address (must map to this bank)."""
        bank, row = self.address_map.locate(addr)
        assert bank == self.bank_id, "request routed to wrong bank"
        self.bank.write(row, value)

    def respond(self, req: MemRequest, value: int = 0,
                status: Status = Status.OK,
                successor_pending: bool = False) -> None:
        """Send a response for ``req`` back through the network."""
        resp = MemResponse(
            op=req.op, core_id=req.core_id, addr=req.addr, value=value,
            status=status, req_id=req.req_id,
            successor_pending=successor_pending)
        cb = self.telemetry.on_bank_response
        if cb is not None:
            cb(self.sim.now, self.bank_id, resp)
        self.network.send_response(resp, self.bank_id)

    def send_successor_update(self, msg: SuccessorUpdate) -> None:
        """Forward a Colibri enqueue-link message to a Qnode."""
        self.network.send_successor_update(msg)

    # -- debug/test access ----------------------------------------------------------

    def peek(self, addr: int) -> int:
        """Read memory without simulating an access (test setup)."""
        return self.read(addr)

    def poke(self, addr: int, value: int) -> None:
        """Write memory without simulating an access (test setup)."""
        self.write(addr, value)
