"""Two extra atomic-memory variants, registered through the open API.

These exist to prove (and exercise in CI) that the variant layer is
genuinely pluggable: everything below goes through the public
:func:`~repro.memory.variants.register_variant` surface — adapters,
parameter schemas, capability flags, and the area/energy cost-model
hooks all live in this one module, and **no other module references
its classes**: ``repro.memory`` imports it purely for the registration
side effect, the same pattern as the built-in workloads.  Deleting the
module removes the variants and nothing else; registering your own
works exactly the same way (see ``examples/custom_variant.py``).

* ``lrsc_backoff`` — MemPool-style single-slot LR/SC extended with a
  hardware retry throttle: a per-core exponential backoff timer delays
  the *failure response* of a conflicting SC, so software retry loops
  are paced by the memory system instead of hammering the bank.  This
  is the hardware flavour of the 128-cycle software backoff the paper
  gives LRSC in Table II — same contention relief, no software change.
* ``ticket`` — a ticket-style wait queue: per bank, only ``addresses``
  distinct addresses can hold waiters at once, but each tracked
  address admits *unbounded* waiters because a ticket is a counter
  value, not a storage slot (two small counters per tracked address).
  A third design point between LRSCwait (bounded total slots,
  centralized storage) and Colibri (bounded addresses, waiter storage
  distributed to the Qnodes).
"""

from __future__ import annotations

from ..interconnect.messages import MemRequest, Status
from .lrsc import LrscAdapter
from .lrscwait import LrscWaitAdapter
from .variants import AtomicVariant, VariantParam, register_variant

#: Area-model constants (kGE), in the same spirit as the fitted
#: constants of :mod:`repro.power.area` but *estimated*, not fitted —
#: there is no published synthesis for these designs.
BACKOFF_TIMER_KGE = 0.9          # shift-register timer + state, per bank
TICKET_CTRL_KGE = 1.4            # request demux + compare logic, per bank
TICKET_COUNTER_PAIR_KGE = 0.22   # next-ticket + now-serving counters

#: Energy-model prices (pJ) for the extra machinery, charged through
#: the :meth:`AtomicVariant.adapter_energy_pj` hook.
BACKOFF_TICK_PJ = 0.6            # timer running while a retry is held
TICKET_ACCESS_PJ = 0.12          # counter compare/update per bank access


class LrscBackoffAdapter(LrscAdapter):
    """Single-slot LR/SC whose SC failures are throttled in hardware.

    A conflicting SC is not answered immediately: the bank holds the
    failure response for the core's current backoff delay, which
    doubles (up to ``cap``) on every consecutive failure and resets on
    success.  The reservation slot semantics are exactly
    :class:`~repro.memory.lrsc.LrscAdapter`'s.
    """

    def __init__(self, controller, base: int = 2, cap: int = 64) -> None:
        super().__init__(controller)
        self.base = base
        self.cap = cap
        #: core_id -> delay (cycles) its *next* SC failure is held for.
        self._penalty: dict = {}

    def reset(self) -> None:
        super().reset()
        self._penalty.clear()

    def _handle_sc(self, req: MemRequest) -> None:
        if self._reservation == (req.core_id, req.addr):
            self._penalty.pop(req.core_id, None)
            super()._handle_sc(req)
            return
        delay = self._penalty.get(req.core_id, self.base)
        self._penalty[req.core_id] = min(self.cap, 2 * delay)
        self.ctrl.sim.schedule(delay, self._respond_failure, arg=req)

    def _respond_failure(self, req: MemRequest) -> None:
        self.ctrl.respond(req, value=1, status=Status.SC_FAIL)

    @property
    def held_responses(self) -> int:
        """Cores currently subject to a grown backoff delay (tests)."""
        return len(self._penalty)


class TicketAdapter(LrscWaitAdapter):
    """Ticket wait queue: bounded tracked addresses, unbounded waiters.

    Reuses the LRSCwait queue protocol (FIFO serve order, monitoring
    Mwaits, the §III-C cascade) but changes the *capacity* shape: the
    per-bank limit is on distinct addresses with waiters, not on total
    queue entries, because a ticket is a counter value rather than a
    storage slot.  A wait op to an untracked address while all
    ``addresses`` trackers are busy fails with ``QUEUE_FULL``.
    """

    def __init__(self, controller, num_addresses: int = 4,
                 strict: bool = True) -> None:
        super().__init__(controller, queue_slots=None, strict=strict)
        self.num_addresses = num_addresses

    def _handle_wait(self, req: MemRequest) -> None:
        if req.addr not in self._queues \
                and len(self._queues) >= self.num_addresses:
            self.ctrl.respond(req, value=0, status=Status.QUEUE_FULL)
            return
        super()._handle_wait(req)

    @property
    def tracked_addresses(self) -> int:
        """Addresses currently holding waiters (tests)."""
        return len(self._queues)


@register_variant("lrsc_backoff")
class LrscBackoffVariant(AtomicVariant):
    """LR/SC with hardware exponential-backoff retry throttling."""

    description = ("single-slot LR/SC with hardware exponential-backoff "
                   "retry throttling")
    params = {
        "base": VariantParam(default=2, minimum=1,
                             doc="initial failure-hold delay in cycles"),
        "cap": VariantParam(default=64, minimum=1,
                            doc="maximum failure-hold delay in cycles"),
    }
    positional = "cap"
    supports_lrsc = True
    native_method = "lrsc"

    def make_adapter(self, controller, params, num_cores, strict):
        return LrscBackoffAdapter(controller, base=params["base"],
                                  cap=params["cap"])

    def label(self, params):
        return f"LRSC_backoff_{params['cap']}"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import LRSC_SLOT_KGE, TILE_BANKS
        return (banks or TILE_BANKS) * (LRSC_SLOT_KGE + BACKOFF_TIMER_KGE)

    def adapter_energy_pj(self, params, stats):
        # Each failed SC keeps a backoff timer ticking while the
        # response is held; price it per failure at half the cap (the
        # mean hold of a saturated exponential schedule).
        return stats.total_sc_failures * BACKOFF_TICK_PJ * params["cap"] / 2


@register_variant("ticket")
class TicketVariant(AtomicVariant):
    """Ticket wait queue with bounded tracked addresses."""

    description = ("ticket wait queue: 2 counters per tracked address, "
                   "unbounded waiters per address")
    params = {
        "addresses": VariantParam(
            default=4, minimum=1,
            doc="tracked addresses (counter pairs) per bank"),
    }
    positional = "addresses"
    supports_wait = True
    native_method = "wait"

    def make_adapter(self, controller, params, num_cores, strict):
        return TicketAdapter(controller, num_addresses=params["addresses"],
                             strict=strict)

    def label(self, params):
        return f"Ticket_{params['addresses']}"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import TILE_BANKS
        return (banks or TILE_BANKS) * (
            TICKET_CTRL_KGE
            + params["addresses"] * TICKET_COUNTER_PAIR_KGE)

    def adapter_energy_pj(self, params, stats):
        # Every bank access passes the ticket compare/update logic.
        return sum(bank.accesses for bank in stats.banks) * TICKET_ACCESS_PJ
