"""MemPool-style LR/SC: one reservation slot per bank.

This is the baseline the paper compares against (§II): "MemPool
implements a lightweight version of LRSC by only providing a single
reservation slot per memory bank.  However, this sacrifices the
non-blocking property of the LRSC pair."

Semantics implemented here:

* **LR** loads the word and overwrites the bank's single reservation
  with ``(core, addr)`` — a newer LR from any core *steals* the slot,
  which is precisely what makes the scheme retry-prone under
  contention.
* **SC** succeeds only if the slot still holds ``(core, addr)``; it
  then commits the store and clears the slot.  Any failure leaves
  memory untouched and returns :data:`Status.SC_FAIL` (non-zero rd in
  RISC-V terms).
* Any committed store to the reserved address (SW, AMO, or a winning
  SC) invalidates the slot.
"""

from __future__ import annotations

from typing import Optional

from ..interconnect.messages import MemRequest, Op, Status
from .adapter import AtomicAdapter


class LrscAdapter(AtomicAdapter):
    """Single-reservation-slot LR/SC unit (the paper's LRSC baseline)."""

    EXTRA_OPS = frozenset({Op.LR, Op.SC})

    RESETTABLE = True

    def __init__(self, controller) -> None:
        super().__init__(controller)
        #: The one slot: ``(core_id, addr)`` or ``None``.
        self._reservation: Optional[tuple] = None

    def reset(self) -> None:
        self._reservation = None

    # -- protocol ------------------------------------------------------------

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op is Op.LR:
            self._handle_lr(req)
        elif req.op is Op.SC:
            self._handle_sc(req)
        else:
            super().handle_reserved(req)

    def _handle_lr(self, req: MemRequest) -> None:
        if self._reservation is not None:
            # The newcomer evicts whoever held the slot.
            self.ctrl.stats.reservations_invalidated += 1
        self._reservation = (req.core_id, req.addr)
        self.ctrl.stats.reservations_placed += 1
        self.ctrl.respond(req, value=self.ctrl.read(req.addr))

    def _handle_sc(self, req: MemRequest) -> None:
        if self._reservation == (req.core_id, req.addr):
            self._reservation = None
            self.ctrl.write(req.addr, req.value)
            # The SC's own store must not be able to fail a *future* SC
            # of the same core, so clear before the on_write sweep.
            self.on_write(req.addr)
            self.ctrl.respond(req, value=0, status=Status.OK)
        else:
            self.ctrl.respond(req, value=1, status=Status.SC_FAIL)

    def on_write(self, addr: int) -> None:
        """A committed store kills a matching reservation (§III step 3)."""
        if self._reservation is not None and self._reservation[1] == addr:
            self._reservation = None
            self.ctrl.stats.reservations_invalidated += 1

    # -- introspection -----------------------------------------------------------

    @property
    def reservation(self) -> Optional[tuple]:
        """Current ``(core, addr)`` slot content, for tests."""
        return self._reservation
