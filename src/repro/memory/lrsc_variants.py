"""Related-work LR/SC implementations (paper §II comparators).

The paper's related-work section surveys how existing RISC-V systems
trade off LR/SC reservation storage; two of them are implemented here
so the benchmark suite can compare the whole design space:

* :class:`LrscTableAdapter` — ATUN/Rocket-style **reservation table**
  with one slot per core: an LR never evicts another core's
  reservation, making the pair non-blocking.  SCs fail only on *real*
  conflicts (a committed store to the reserved address).  Hardware
  cost: ``n`` address-wide entries per bank — the storage-scaling
  problem that motivates Colibri.
* :class:`LrscBankAdapter` — GRVI-style **bank-granularity**
  reservations: one bit per core per bank.  An LR reserves the whole
  bank; *any* committed store to the bank (whatever the address) clears
  every reservation bit, so SCs "spuriously fail" exactly as §II
  describes.  Hardware cost: ``n`` bits per bank.

Both still retry on failure — they address reservation *storage*, not
the polling/retry problem LRSCwait solves.

This module holds only the adapter state machines; their registration
(parameter schema, capability flags, area cost models) lives with the
other built-ins in :mod:`repro.memory.variants`, and further §II-style
comparators can be added without touching either file — see
:mod:`repro.memory.extra_variants` for two variants registered purely
through the public API.
"""

from __future__ import annotations

from ..interconnect.messages import MemRequest, Op, Status
from .adapter import AtomicAdapter


class LrscTableAdapter(AtomicAdapter):
    """Per-core reservation table (non-blocking LR/SC, ATUN-style)."""

    EXTRA_OPS = frozenset({Op.LR, Op.SC})

    RESETTABLE = True

    def __init__(self, controller) -> None:
        super().__init__(controller)
        #: core_id -> reserved byte address (one live slot per core).
        self._table: dict = {}

    def reset(self) -> None:
        self._table.clear()

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op is Op.LR:
            self._table[req.core_id] = req.addr
            self.ctrl.stats.reservations_placed += 1
            self.ctrl.respond(req, value=self.ctrl.read(req.addr))
        elif req.op is Op.SC:
            if self._table.get(req.core_id) == req.addr:
                del self._table[req.core_id]
                self.ctrl.write(req.addr, req.value)
                self.on_write(req.addr)
                self.ctrl.respond(req, value=0, status=Status.OK)
            else:
                self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
        else:
            super().handle_reserved(req)

    def on_write(self, addr: int) -> None:
        """A committed store kills every reservation on that address."""
        stale = [core for core, reserved in self._table.items()
                 if reserved == addr]
        for core in stale:
            del self._table[core]
            self.ctrl.stats.reservations_invalidated += 1

    def pending_waiters(self) -> int:
        return 0

    @property
    def live_reservations(self) -> int:
        """Current table occupancy (tests)."""
        return len(self._table)


class LrscBankAdapter(AtomicAdapter):
    """Bank-granularity reservations (one bit per core, GRVI-style)."""

    EXTRA_OPS = frozenset({Op.LR, Op.SC})

    RESETTABLE = True

    def __init__(self, controller) -> None:
        super().__init__(controller)
        #: Cores currently holding the bank-wide reservation bit.
        self._reserved: set = set()

    def reset(self) -> None:
        self._reserved.clear()

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op is Op.LR:
            self._reserved.add(req.core_id)
            self.ctrl.stats.reservations_placed += 1
            self.ctrl.respond(req, value=self.ctrl.read(req.addr))
        elif req.op is Op.SC:
            if req.core_id in self._reserved:
                # The winning SC's own store clears everyone, self
                # included (the write is a store to the bank).
                self.ctrl.write(req.addr, req.value)
                self.on_write(req.addr)
                self.ctrl.respond(req, value=0, status=Status.OK)
            else:
                self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
        else:
            super().handle_reserved(req)

    def on_write(self, addr: int) -> None:
        """Any committed store to the bank clears every bit — the
        source of GRVI's spurious SC failures."""
        if self._reserved:
            self.ctrl.stats.reservations_invalidated += len(self._reserved)
            self._reserved.clear()

    def pending_waiters(self) -> int:
        return 0

    @property
    def live_reservations(self) -> int:
        """Cores currently holding the bank bit (tests)."""
        return len(self._reserved)
