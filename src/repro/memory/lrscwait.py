"""Centralized LRSCwait: a reservation queue per bank (paper §III-A/B).

Each bank carries a queue-like structure of capacity ``q``.  An LRwait
whose address already has waiters parks behind them; the controller
**withholds the response** until the requester reaches the head of its
address queue, at which point it is served the current memory value and
a reservation is placed.  Because only the head ever holds a live
reservation, its SCwait is guaranteed to find the reservation valid
unless an *interfering plain store* cleared it — failing SCs caused by
contention between LRSC pairs are eliminated by construction.

``q`` trades hardware for performance (§III-B): an LRwait arriving when
all ``q`` slots are taken fails immediately with
:data:`~repro.interconnect.messages.Status.QUEUE_FULL` and software must
retry.  ``q = num_cores`` is LRSCwait\\ :sub:`ideal`.

Mwait (§III-C) reuses the same queue: a served Mwait whose expected
value already mismatches memory completes immediately; otherwise it
monitors the address and is answered by the next committed store.
Served-and-monitoring Mwaits cascade: one store can release a chain of
waiters whose expectations now mismatch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..engine.errors import ProtocolViolation
from ..interconnect.messages import MemRequest, Op, Status
from .adapter import AtomicAdapter


@dataclass
class _Waiter:
    """One queue entry: a parked LRwait or Mwait."""

    req: MemRequest
    #: True once the head response was sent (LRwait) / monitoring began.
    served: bool = False
    #: Valid reservation (head only); cleared by interfering stores.
    reservation_valid: bool = False


class LrscWaitAdapter(AtomicAdapter):
    """Reservation-queue adapter: LRSCwait_q, with q=None meaning ideal."""

    EXTRA_OPS = frozenset({Op.LRWAIT, Op.SCWAIT, Op.MWAIT})

    RESETTABLE = True

    def __init__(self, controller, queue_slots: Optional[int],
                 strict: bool = True) -> None:
        super().__init__(controller)
        #: Total entries allowed across all addresses of this bank;
        #: ``None`` = unbounded (ideal: one slot per core suffices).
        self.queue_slots = queue_slots
        self.strict = strict
        self._queues: dict = {}  # addr -> deque[_Waiter]
        self._occupancy = 0

    def reset(self) -> None:
        self._queues.clear()
        self._occupancy = 0

    # -- protocol ---------------------------------------------------------------

    def handle_reserved(self, req: MemRequest) -> None:
        if req.op in (Op.LRWAIT, Op.MWAIT):
            self._handle_wait(req)
        elif req.op is Op.SCWAIT:
            self._handle_scwait(req)
        else:
            super().handle_reserved(req)

    def _handle_wait(self, req: MemRequest) -> None:
        if self.queue_slots is not None and self._occupancy >= self.queue_slots:
            self.ctrl.respond(req, value=0, status=Status.QUEUE_FULL)
            return
        queue = self._queues.setdefault(req.addr, deque())
        if self.strict and any(w.req.core_id == req.core_id for w in queue):
            raise ProtocolViolation(
                f"core {req.core_id} has two outstanding wait ops on "
                f"0x{req.addr:x} (violates §III-b single-LRwait rule)")
        queue.append(_Waiter(req))
        self._occupancy += 1
        cb = self.ctrl.telemetry.on_queue_depth
        if cb is not None:
            cb(self.ctrl.sim.now, self.ctrl.bank_id, self._occupancy)
        if len(queue) == 1:
            self._serve_head(req.addr)

    def _serve_head(self, addr: int) -> None:
        """Serve queue heads at ``addr`` until one actually has to wait.

        LRwait heads always complete the serve (response + reservation).
        Mwait heads whose expectation already fails complete immediately
        and the next entry is examined — the cascade of §III-C.
        """
        queue = self._queues.get(addr)
        while queue:
            head = queue[0]
            value = self.ctrl.read(addr)
            if head.req.op is Op.LRWAIT:
                head.served = True
                head.reservation_valid = True
                self.ctrl.stats.reservations_placed += 1
                self.ctrl.respond(head.req, value=value)
                return
            # Mwait: complete now if the world already changed.
            if head.req.expected is None or value != head.req.expected:
                self._pop(addr)
                self.ctrl.respond(head.req, value=value)
                queue = self._queues.get(addr)
                continue
            head.served = True
            head.reservation_valid = True
            self.ctrl.stats.reservations_placed += 1
            return

    def _handle_scwait(self, req: MemRequest) -> None:
        queue = self._queues.get(req.addr)
        head = queue[0] if queue else None
        legal = (head is not None and head.served
                 and head.req.op is Op.LRWAIT
                 and head.req.core_id == req.core_id)
        if not legal:
            if self.strict:
                raise ProtocolViolation(
                    f"SCwait from core {req.core_id} to 0x{req.addr:x} "
                    f"without being the served queue head")
            self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
            return
        assert head is not None
        valid = head.reservation_valid
        self._pop(req.addr)
        if valid:
            self.ctrl.write(req.addr, req.value)
            self.ctrl.respond(req, value=0, status=Status.OK)
            # The SCwait's own store wakes monitoring Mwaits but must
            # not clear the (already popped) writer's state.
            self.on_write(req.addr)
        else:
            self.ctrl.respond(req, value=1, status=Status.SC_FAIL)
        self._serve_head(req.addr)

    def _pop(self, addr: int) -> None:
        queue = self._queues[addr]
        queue.popleft()
        self._occupancy -= 1
        cb = self.ctrl.telemetry.on_queue_depth
        if cb is not None:
            cb(self.ctrl.sim.now, self.ctrl.bank_id, self._occupancy)
        if not queue:
            del self._queues[addr]

    # -- write monitoring -----------------------------------------------------------

    def on_write(self, addr: int) -> None:
        """A committed store: clear the head LRwait reservation or wake
        a monitoring Mwait chain at ``addr``."""
        queue = self._queues.get(addr)
        if not queue:
            return
        head = queue[0]
        if not head.served:
            return
        if head.req.op is Op.LRWAIT:
            if head.reservation_valid:
                head.reservation_valid = False
                self.ctrl.stats.reservations_invalidated += 1
            return
        # Monitoring Mwait: answer it with the fresh value, then let
        # _serve_head cascade through any further waiters.
        value = self.ctrl.read(addr)
        self._pop(addr)
        self.ctrl.respond(head.req, value=value)
        self._serve_head(addr)

    # -- introspection ----------------------------------------------------------------

    def pending_waiters(self) -> int:
        """Entries currently parked in this bank's queues."""
        return self._occupancy

    def queue_depth(self, addr: int) -> int:
        """Waiters parked on one address (tests)."""
        queue = self._queues.get(addr)
        return len(queue) if queue else 0
