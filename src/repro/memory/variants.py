"""Atomic-unit variant specifications.

One :class:`VariantSpec` selects which reservation machinery sits in
front of every SPM bank.  The four kinds map to the architectures of
the paper's Fig. 1:

* ``"amo"`` — only the RV32A single-instruction atomics (the paper's
  *Atomic Add* roofline); LR/SC and wait ops are unsupported.
* ``"lrsc"`` — MemPool's lightweight LR/SC: a **single reservation
  slot per bank**, stolen by any newer LR (paper §II).  Retry-prone
  under contention.
* ``"lrscwait"`` — the centralized reservation queue of §III-A/B with
  ``queue_slots`` entries per bank; ``queue_slots=None`` means one slot
  per core, i.e. LRSCwait\\ :sub:`ideal`.
* ``"colibri"`` — the distributed linked-list implementation of §IV
  with ``num_addresses`` head/tail register pairs per controller.

Every kind also services plain loads, stores and AMOs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.errors import ConfigError

VARIANT_KINDS = ("amo", "lrsc", "lrsc_table", "lrsc_bank",
                 "lrscwait", "colibri")


@dataclass(frozen=True)
class VariantSpec:
    """Which atomic adapter guards each memory bank."""

    kind: str
    #: lrscwait: reservation-queue capacity per bank (None = #cores).
    queue_slots: Optional[int] = None
    #: colibri: head/tail register pairs (tracked addresses) per bank.
    num_addresses: int = 4

    def __post_init__(self) -> None:
        if self.kind not in VARIANT_KINDS:
            raise ConfigError(f"unknown variant kind {self.kind!r}")
        if self.queue_slots is not None and self.queue_slots < 1:
            raise ConfigError("queue_slots must be >= 1")
        if self.num_addresses < 1:
            raise ConfigError("num_addresses must be >= 1")

    # -- factories ------------------------------------------------------------

    @classmethod
    def amo(cls) -> "VariantSpec":
        """Plain RV32A atomics only."""
        return cls(kind="amo")

    @classmethod
    def lrsc(cls) -> "VariantSpec":
        """MemPool-style single-slot LR/SC."""
        return cls(kind="lrsc")

    @classmethod
    def lrsc_table(cls) -> "VariantSpec":
        """ATUN-style per-core reservation table (§II related work)."""
        return cls(kind="lrsc_table")

    @classmethod
    def lrsc_bank(cls) -> "VariantSpec":
        """GRVI-style bank-granularity reservations (§II related work)."""
        return cls(kind="lrsc_bank")

    @classmethod
    def lrscwait(cls, queue_slots: int) -> "VariantSpec":
        """Centralized LRSCwait with a ``queue_slots``-entry queue."""
        return cls(kind="lrscwait", queue_slots=queue_slots)

    @classmethod
    def lrscwait_ideal(cls) -> "VariantSpec":
        """LRSCwait with one queue slot per core (physically infeasible
        at MemPool scale, the paper's upper bound)."""
        return cls(kind="lrscwait", queue_slots=None)

    @classmethod
    def colibri(cls, num_addresses: int = 4) -> "VariantSpec":
        """Distributed Colibri queue with ``num_addresses`` queues/bank."""
        return cls(kind="colibri", num_addresses=num_addresses)

    # -- capability queries ------------------------------------------------------

    @property
    def supports_lrsc(self) -> bool:
        """True when plain LR/SC are legal on this variant."""
        return self.kind in ("lrsc", "lrsc_table", "lrsc_bank")

    @property
    def supports_wait(self) -> bool:
        """True when LRwait/SCwait/Mwait are legal on this variant."""
        return self.kind in ("lrscwait", "colibri")

    @property
    def native_method(self) -> str:
        """The RMW update method this hardware is built for.

        The default a workload uses when no method is requested:
        ``amoadd`` on AMO-only hardware, LR/SC retry loops on the LR/SC
        family, LRwait/SCwait on wait-capable units.
        """
        if self.kind == "amo":
            return "amo"
        if self.supports_wait:
            return "wait"
        return "lrsc"

    def label(self) -> str:
        """Short human-readable name used in result tables."""
        if self.kind == "lrscwait":
            if self.queue_slots is None:
                return "LRSCwait_ideal"
            return f"LRSCwait_{self.queue_slots}"
        if self.kind == "colibri":
            return "Colibri"
        if self.kind == "lrsc":
            return "LRSC"
        if self.kind == "lrsc_table":
            return "LRSC_table"
        if self.kind == "lrsc_bank":
            return "LRSC_bank"
        return "AtomicAdd"
