"""Atomic-unit variants: the plugin registry and :class:`VariantSpec`.

The paper's whole argument is a comparison across atomic-memory
variants, so the variant layer is *open*: each variant is an
:class:`AtomicVariant` plugin registered under a name with
:func:`register_variant` — the exact mirror of the workload, probe and
sampler registries, including the ``replace=True`` shadowing escape
hatch.  A plugin packages everything the rest of the codebase needs to
know about one piece of reservation hardware:

* a **typed parameter schema** (:class:`VariantParam`): defaults,
  bounds, and symbolic values like ``"half"``/``"cores"`` that resolve
  against the machine's core count at build time;
* an **adapter factory** (:meth:`AtomicVariant.make_adapter`) building
  the per-bank :class:`~repro.memory.adapter.AtomicAdapter`;
* **capability flags** (``supports_lrsc``/``supports_wait``/
  ``native_method``) that tell workloads which RMW flavour the hardware
  is built for;
* **cost-model hooks**: :meth:`AtomicVariant.tile_area_kge` feeds the
  Table I area accounting and the §III-A scaling curves, and
  :meth:`AtomicVariant.adapter_energy_pj` lets a variant charge its
  reservation machinery into the Table II energy model.

The six variants of the paper (Fig. 1 plus the §II related-work
comparators) are registered here as built-ins; nothing distinguishes
them from user registrations (see ``examples/custom_variant.py`` and
:mod:`repro.memory.extra_variants`).

:class:`VariantSpec` stays the value object the rest of the system
passes around: a frozen ``(kind, params)`` pair validated against the
registered schema.  The legacy constructor keywords ``queue_slots`` and
``num_addresses`` still work for the built-ins that define them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.errors import ConfigError


class UnknownVariantError(ConfigError):
    """A spec named an atomic-memory variant that is not registered."""


#: Symbolic parameter values and their build-time resolution against
#: the machine's core count.  ``"ideal"`` maps to ``None``, the stored
#: spelling of "one queue slot per core".
SYMBOLIC_VALUES = {
    "half": lambda num_cores: max(1, num_cores // 2),
    "cores": lambda num_cores: num_cores,
    "ideal": lambda num_cores: None,
}


@dataclass(frozen=True)
class VariantParam:
    """Schema of one variant parameter.

    ``default`` is the value used when the parameter is omitted;
    ``example`` (falling back to ``default``) is what listings and the
    area table use for a representative configuration.  ``symbolic``
    names the tokens from :data:`SYMBOLIC_VALUES` this parameter
    accepts; they resolve to concrete integers (or ``None``) when the
    machine is built.  ``required`` forces variant *strings* to spell
    the parameter explicitly (``"lrscwait"`` alone is ambiguous — is it
    1 slot or ideal? — so its schema demands an argument).
    """

    default: object = None
    minimum: Optional[int] = None
    required: bool = False
    symbolic: tuple = ()
    allow_none: bool = False
    example: object = None
    doc: str = ""

    def listing_value(self):
        """Representative value for registry listings and area tables."""
        return self.default if self.example is None else self.example


class AtomicVariant:
    """Base class for registered atomic-memory variant plugins.

    Subclasses declare the schema and flags as class attributes and
    implement :meth:`make_adapter`; the cost-model hooks and the
    string/label rendering have sensible defaults.  Plugins are
    stateless singletons (like workloads): per-run state lives in the
    adapters they build.
    """

    #: Registry name, filled by :func:`register_variant`.
    name: str = ""
    description: str = ""
    #: Parameter name -> :class:`VariantParam` schema.
    params: dict = {}
    #: Parameter a bare ``"name:<value>"`` string argument maps to
    #: (``None`` = the variant takes no positional argument).
    positional: Optional[str] = None
    #: True when plain LR/SC are legal on this variant.
    supports_lrsc: bool = False
    #: True when LRwait/SCwait/Mwait are legal on this variant.
    supports_wait: bool = False
    #: The RMW update method this hardware is built for ("amo" |
    #: "lrsc" | "wait") — the default a workload uses when no method is
    #: requested.
    native_method: str = "amo"

    # -- adapter construction -------------------------------------------------

    def make_adapter(self, controller, params: dict, num_cores: int,
                     strict: bool):
        """Build the per-bank adapter for resolved ``params``."""
        raise NotImplementedError(
            f"variant {self.name!r} does not implement make_adapter()")

    # -- cost-model hooks ------------------------------------------------------

    def tile_area_kge(self, params: dict, num_cores: int,
                      banks: Optional[int] = None,
                      cores: Optional[int] = None) -> float:
        """Added kGE of one tile (default shape: 4 cores, 16 banks).

        ``num_cores`` is the *system* core count — reservation storage
        that scales with it (per-core tables, the ideal queue) is
        exactly what Table I's scaling argument quantifies.  The base
        class charges nothing (machinery folded into the base tile).
        """
        return 0.0

    def adapter_energy_pj(self, params: dict, stats) -> float:
        """Extra picojoules this variant's machinery burned in a run.

        Called by :class:`~repro.power.energy.EnergyModel` with the
        run's :class:`~repro.engine.stats.SimStats`.  Built-ins return
        0.0 — their adapter energy is folded into the calibrated
        event coefficients — so the published Table II stays
        bit-identical; new variants can price their own hardware.
        """
        return 0.0

    # -- rendering -------------------------------------------------------------

    def label(self, params: dict) -> str:
        """Short human-readable name used in result tables."""
        return self.name

    def string(self, params: dict) -> str:
        """The canonical spec string for this parameter set.

        Default: parameters equal to their defaults are omitted; a
        single non-default positional parameter renders as
        ``name:value``, anything else as ``name:key=val,...``.
        Built-ins override this where the legacy spelling differs.
        """
        diff = {key: value for key, value in params.items()
                if value != self.params[key].default}
        if not diff:
            return self.name
        if self.positional is not None and set(diff) == {self.positional}:
            return f"{self.name}:{diff[self.positional]}"
        return self.name + ":" + ",".join(
            f"{key}={value}" for key, value in sorted(diff.items()))

    # -- schema plumbing -------------------------------------------------------

    def fill_defaults(self, raw: dict) -> dict:
        """Defaults merged with ``raw`` overrides; validates everything."""
        unknown = sorted(set(raw) - set(self.params))
        if unknown:
            raise ConfigError(
                f"variant {self.name!r} has no parameter(s) {unknown}; "
                f"accepted: {sorted(self.params) or '(none)'}")
        merged = {}
        for key, schema in self.params.items():
            value = raw.get(key, schema.default)
            self.check_value(key, value)
            merged[key] = value
        return merged

    def check_value(self, key: str, value) -> None:
        """Validate one parameter value (symbolic tokens allowed)."""
        schema = self.params[key]
        if value is None:
            if schema.allow_none:
                return
            raise ConfigError(
                f"variant {self.name!r} parameter {key!r} must be set")
        if isinstance(value, str):
            if value in schema.symbolic:
                return
            raise ConfigError(
                f"variant {self.name!r} parameter {key!r}: "
                f"{value!r} is not an int"
                + (f" or one of {sorted(schema.symbolic)}"
                   if schema.symbolic else ""))
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"variant {self.name!r} parameter {key!r} must be an "
                f"int, got {value!r}")
        if schema.minimum is not None and value < schema.minimum:
            raise ConfigError(
                f"variant {self.name!r} parameter {key!r} must be "
                f">= {schema.minimum}, got {value}")

    def resolve(self, params: dict, num_cores: int) -> dict:
        """Symbolic values materialized for a system of ``num_cores``."""
        resolved = {}
        for key, value in params.items():
            if isinstance(value, str):
                if value not in SYMBOLIC_VALUES:
                    # Unreachable for registered schemas (registration
                    # rejects unknown tokens), but keep raw dicts honest.
                    raise ConfigError(
                        f"variant {self.name!r} parameter {key!r}: no "
                        f"resolution rule for symbolic value {value!r}; "
                        f"known: {sorted(SYMBOLIC_VALUES)}")
                value = SYMBOLIC_VALUES[value](num_cores)
                self.check_value(key, value)
            resolved[key] = value
        return resolved

    def listing_params(self) -> dict:
        """Representative parameter values for listings/area tables."""
        return {key: schema.listing_value()
                for key, schema in self.params.items()}


#: name -> variant plugin instance.
_REGISTRY: dict = {}


def register_variant(name: str, *, replace: bool = False):
    """Class decorator registering an :class:`AtomicVariant` plugin.

    The class is instantiated once at registration (plugins are
    stateless — per-run state lives in the adapters they build).
    Re-registering an existing name raises unless ``replace=True``,
    which user code can use to shadow a built-in deliberately.

    The name must be expressible in the variant-string grammar (a
    Python-identifier shape — ``:``/``=``/``,``/``-`` are grammar
    punctuation and ``ideal`` is a reserved alias), and every symbolic
    token a parameter schema declares must have a resolution rule in
    :data:`SYMBOLIC_VALUES` — both checked here so a bad registration
    fails at import time, not mid-run.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(
            f"variant name must be a non-empty string, got {name!r}")
    if not name.isidentifier() or name == "ideal":
        raise ConfigError(
            f"variant name {name!r} is not expressible in the variant-"
            f"string grammar: use a Python-identifier shape "
            f"(underscores, no ':'/'='/','/'-') other than the "
            f"reserved alias 'ideal'")

    def decorator(cls):
        if name in _REGISTRY and not replace:
            raise ConfigError(
                f"variant {name!r} already registered "
                f"({type(_REGISTRY[name]).__name__}); "
                f"pass replace=True to shadow it")
        instance = cls()
        instance.name = name
        for key, schema in instance.params.items():
            unknown = sorted(set(schema.symbolic) - set(SYMBOLIC_VALUES))
            if unknown:
                raise ConfigError(
                    f"variant {name!r} parameter {key!r} declares "
                    f"symbolic values {unknown} with no resolution "
                    f"rule; known: {sorted(SYMBOLIC_VALUES)}")
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_variant(name: str) -> None:
    """Remove a registration (mainly for tests tearing down fixtures)."""
    _REGISTRY.pop(name, None)


def get_variant(name: str) -> AtomicVariant:
    """The registered plugin, or :class:`UnknownVariantError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownVariantError(
            f"no atomic-memory variant registered under {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY)) or '(none)'}")


def list_variants() -> list:
    """``(name, plugin)`` pairs, sorted by name."""
    return sorted(_REGISTRY.items())


def __getattr__(name: str):
    # PEP 562: VARIANT_KINDS used to be a hardcoded tuple; it is now a
    # live view of the registry so user registrations appear in it.
    if name == "VARIANT_KINDS":
        return tuple(sorted(_REGISTRY))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_UNSET = object()


@dataclass(frozen=True, init=False)
class VariantSpec:
    """Which atomic adapter guards each memory bank.

    A validated ``(kind, params)`` value object: ``kind`` names a
    registered :class:`AtomicVariant` and ``params`` is the full
    parameter set (defaults filled in), frozen to sorted ``(key,
    value)`` pairs so specs stay hashable and comparable.  Parameters
    may hold symbolic values (``"half"``, ``"cores"``, ``"ideal"``)
    that :meth:`materialize` resolves for a concrete system size.
    """

    kind: str
    params: tuple = ()

    def __init__(self, kind: str, queue_slots=_UNSET, num_addresses=_UNSET,
                 params=_UNSET, **extra) -> None:
        plugin = get_variant(kind)
        raw = {}
        if params is not _UNSET and params is not None:
            raw.update(dict(params))
        if queue_slots is not _UNSET:
            raw["queue_slots"] = queue_slots
        if num_addresses is not _UNSET:
            raw["num_addresses"] = num_addresses
        raw.update(extra)
        merged = plugin.fill_defaults(raw)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", tuple(sorted(merged.items())))

    # -- factories ------------------------------------------------------------

    @classmethod
    def amo(cls) -> "VariantSpec":
        """Plain RV32A atomics only."""
        return cls(kind="amo")

    @classmethod
    def lrsc(cls) -> "VariantSpec":
        """MemPool-style single-slot LR/SC."""
        return cls(kind="lrsc")

    @classmethod
    def lrsc_table(cls) -> "VariantSpec":
        """ATUN-style per-core reservation table (§II related work)."""
        return cls(kind="lrsc_table")

    @classmethod
    def lrsc_bank(cls) -> "VariantSpec":
        """GRVI-style bank-granularity reservations (§II related work)."""
        return cls(kind="lrsc_bank")

    @classmethod
    def lrscwait(cls, queue_slots: int) -> "VariantSpec":
        """Centralized LRSCwait with a ``queue_slots``-entry queue."""
        return cls(kind="lrscwait", queue_slots=queue_slots)

    @classmethod
    def lrscwait_ideal(cls) -> "VariantSpec":
        """LRSCwait with one queue slot per core (physically infeasible
        at MemPool scale, the paper's upper bound)."""
        return cls(kind="lrscwait", queue_slots=None)

    @classmethod
    def colibri(cls, num_addresses: int = 4) -> "VariantSpec":
        """Distributed Colibri queue with ``num_addresses`` queues/bank."""
        return cls(kind="colibri", num_addresses=num_addresses)

    # -- parameter access -----------------------------------------------------

    def params_dict(self) -> dict:
        """The full parameter set as a plain dict."""
        return dict(self.params)

    def get(self, key: str, default=None):
        """One parameter value (``default`` when the kind lacks it)."""
        return dict(self.params).get(key, default)

    @property
    def queue_slots(self):
        """lrscwait: reservation-queue capacity per bank (None = #cores)."""
        return self.get("queue_slots")

    @property
    def num_addresses(self):
        """colibri: head/tail register pairs (tracked addresses) per bank."""
        return self.get("num_addresses", 4)

    # -- registry delegation ---------------------------------------------------

    @property
    def plugin(self) -> AtomicVariant:
        """The registered :class:`AtomicVariant` behind this spec."""
        return get_variant(self.kind)

    @property
    def supports_lrsc(self) -> bool:
        """True when plain LR/SC are legal on this variant."""
        return self.plugin.supports_lrsc

    @property
    def supports_wait(self) -> bool:
        """True when LRwait/SCwait/Mwait are legal on this variant."""
        return self.plugin.supports_wait

    @property
    def native_method(self) -> str:
        """The RMW update method this hardware is built for.

        The default a workload uses when no method is requested:
        ``amoadd`` on AMO-only hardware, LR/SC retry loops on the LR/SC
        family, LRwait/SCwait on wait-capable units.
        """
        return self.plugin.native_method

    def label(self) -> str:
        """Short human-readable name used in result tables."""
        return self.plugin.label(self.params_dict())

    # -- materialization -------------------------------------------------------

    def resolved(self, num_cores: int) -> dict:
        """Parameters with symbolic values resolved for ``num_cores``."""
        return self.plugin.resolve(self.params_dict(), num_cores)

    def materialize(self, num_cores: int) -> "VariantSpec":
        """A copy with every symbolic parameter value made concrete."""
        return VariantSpec(kind=self.kind, params=self.resolved(num_cores))


# -- built-in variants (the paper's Fig. 1 + §II comparators) ------------------


@register_variant("amo")
class AmoVariant(AtomicVariant):
    """Only the RV32A single-instruction atomics (the paper's *Atomic
    Add* roofline); LR/SC and wait ops are unsupported."""

    description = "plain RV32A atomics only (Atomic Add roofline)"
    native_method = "amo"

    def make_adapter(self, controller, params, num_cores, strict):
        from .adapter import AmoAdapter
        return AmoAdapter(controller)

    def label(self, params):
        return "AtomicAdd"


@register_variant("lrsc")
class LrscVariant(AtomicVariant):
    """MemPool's lightweight LR/SC: a single reservation slot per bank,
    stolen by any newer LR (paper §II).  Retry-prone under contention."""

    description = "MemPool-style single reservation slot per bank"
    supports_lrsc = True
    native_method = "lrsc"

    def make_adapter(self, controller, params, num_cores, strict):
        from .lrsc import LrscAdapter
        return LrscAdapter(controller)

    def label(self, params):
        return "LRSC"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import LRSC_SLOT_KGE, TILE_BANKS
        return (banks or TILE_BANKS) * LRSC_SLOT_KGE


@register_variant("lrsc_table")
class LrscTableVariant(AtomicVariant):
    """ATUN/Rocket-style per-core reservation table (§II related work):
    non-blocking LR/SC, but storage scales with the core count."""

    description = "ATUN-style per-core reservation table (non-blocking)"
    supports_lrsc = True
    native_method = "lrsc"

    def make_adapter(self, controller, params, num_cores, strict):
        from .lrsc_variants import LrscTableAdapter
        return LrscTableAdapter(controller)

    def label(self, params):
        return "LRSC_table"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        # One address-wide entry per core per bank — the storage-
        # scaling problem (§II) that motivates Colibri.
        from ..power.area import LRSC_TABLE_ENTRY_KGE, TILE_BANKS
        return (banks or TILE_BANKS) * num_cores * LRSC_TABLE_ENTRY_KGE


@register_variant("lrsc_bank")
class LrscBankVariant(AtomicVariant):
    """GRVI-style bank-granularity reservations (§II related work):
    one bit per core per bank, spurious SC failures on any store."""

    description = "GRVI-style bank-granularity reservations (1 bit/core)"
    supports_lrsc = True
    native_method = "lrsc"

    def make_adapter(self, controller, params, num_cores, strict):
        from .lrsc_variants import LrscBankAdapter
        return LrscBankAdapter(controller)

    def label(self, params):
        return "LRSC_bank"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import LRSC_BANK_BIT_KGE, TILE_BANKS
        return (banks or TILE_BANKS) * num_cores * LRSC_BANK_BIT_KGE


@register_variant("lrscwait")
class LrscWaitVariant(AtomicVariant):
    """The centralized reservation queue of §III-A/B with
    ``queue_slots`` entries per bank; ``None``/``"ideal"`` means one
    slot per core, i.e. LRSCwait\\ :sub:`ideal`."""

    description = "centralized reservation queue per bank (LRSCwait_q)"
    params = {
        "queue_slots": VariantParam(
            default=None, minimum=1, required=True,
            symbolic=("half", "cores", "ideal"), allow_none=True,
            example=8,
            doc="queue entries per bank (half/cores/ideal scale with "
                "the core count; ideal = one slot per core)"),
    }
    positional = "queue_slots"
    supports_wait = True
    native_method = "wait"

    def make_adapter(self, controller, params, num_cores, strict):
        from .lrscwait import LrscWaitAdapter
        slots = params["queue_slots"]
        if slots is None:
            slots = num_cores  # ideal: one slot per core can never fill
        return LrscWaitAdapter(controller, queue_slots=slots, strict=strict)

    def label(self, params):
        slots = params["queue_slots"]
        if slots is None:
            return "LRSCwait_ideal"
        return f"LRSCwait_{slots}"

    def string(self, params):
        slots = params["queue_slots"]
        if slots is None:
            return "lrscwait:ideal"
        return f"lrscwait:{slots}"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import TILE_BASE_KGE, TILE_BANKS, lrscwait_tile
        slots = params["queue_slots"]
        if slots is None:
            slots = num_cores  # every bank sized for all cores: O(n^2)
        return lrscwait_tile(slots, banks=banks or TILE_BANKS).kge \
            - TILE_BASE_KGE


@register_variant("colibri")
class ColibriVariant(AtomicVariant):
    """The distributed linked-list implementation of §IV with
    ``num_addresses`` head/tail register pairs per controller."""

    description = "distributed Colibri queue (Qnodes + head/tail pairs)"
    params = {
        "num_addresses": VariantParam(
            default=4, minimum=1,
            doc="tracked addresses (head/tail register pairs) per bank"),
    }
    positional = "num_addresses"
    supports_wait = True
    native_method = "wait"

    def make_adapter(self, controller, params, num_cores, strict):
        from .colibri import ColibriAdapter
        return ColibriAdapter(controller,
                              num_addresses=params["num_addresses"],
                              strict=strict)

    def label(self, params):
        return "Colibri"

    def string(self, params):
        addresses = params["num_addresses"]
        if addresses == 4:
            return "colibri"
        return f"colibri:{addresses}"

    def tile_area_kge(self, params, num_cores, banks=None, cores=None):
        from ..power.area import TILE_BASE_KGE, TILE_BANKS, colibri_tile
        return colibri_tile(params["num_addresses"],
                            banks=banks or TILE_BANKS).kge - TILE_BASE_KGE
