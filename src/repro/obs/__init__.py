"""Platform observability: spans, metrics, trace export, control plane.

PR 3's telemetry watches the *simulated machine*; this package watches
the *harness running it* — the runner and its cache, the warm-machine
pool, the campaign engine.  One process-wide session (:data:`OBS`)
collects:

* nested wall-clock **spans** (``campaign → schedule-batch → point →
  build/run/collect-stats``) that merge deterministically across
  ``--jobs`` worker processes and export as Chrome trace-event JSON
  for Perfetto / ``chrome://tracing``;
* **metrics** — cache hit/miss/store/evict counters, pool build/reset
  counters, campaign budget gauges, per-category span timers and
  power-of-two latency **histograms** (p50/p90/p99);
* opt-in per-phase **cProfile** accumulation (``--profile``);
* the on-disk **campaign control plane** — an append-only
  ``events.jsonl`` of state transitions (:mod:`~repro.obs.eventlog`)
  plus per-process heartbeat files (:mod:`~repro.obs.heartbeat`) —
  which is what ``repro status`` (:mod:`~repro.obs.status`) reads to
  report progress, ETA and worker liveness for a running, finished or
  killed campaign without touching the process.

Everything is disabled by default at one-branch cost (bench-guarded by
``benchmarks/bench_obs.py``); the CLI enables recording via
``--obs-trace FILE`` / ``--profile OUT`` and the control plane via
``repro explore --events``, and reads artifacts back with ``repro obs
summary`` / ``repro status``.  Traces, event logs and journals are all
schema-validated by ``python -m repro.obs``.
"""

from .artifacts import load_artifact, salvage_json
from .eventlog import (
    EVENTS_VERSION,
    EventLog,
    events_path,
    read_events,
    validate_events,
)
from .heartbeat import Heartbeat, liveness, read_heartbeats
from .metrics import Histogram, MetricsRegistry
from .profile import PhaseProfiler
from .schema import TRACE_VERSION, SchemaError, validate_trace
from .session import OBS, ObsSession
from .status import collect_status, follow, render_status
from .summary import render_summary
from .tracer import SpanTracer

__all__ = [
    "EVENTS_VERSION",
    "EventLog",
    "Heartbeat",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "ObsSession",
    "PhaseProfiler",
    "SchemaError",
    "SpanTracer",
    "TRACE_VERSION",
    "collect_status",
    "events_path",
    "follow",
    "liveness",
    "load_artifact",
    "read_events",
    "read_heartbeats",
    "render_status",
    "render_summary",
    "salvage_json",
    "validate_events",
    "validate_trace",
]
