"""Platform observability: spans, metrics and trace export.

PR 3's telemetry watches the *simulated machine*; this package watches
the *harness running it* — the runner and its cache, the warm-machine
pool, the campaign engine.  One process-wide session (:data:`OBS`)
collects:

* nested wall-clock **spans** (``campaign → schedule-batch → point →
  build/run/collect-stats``) that merge deterministically across
  ``--jobs`` worker processes and export as Chrome trace-event JSON
  for Perfetto / ``chrome://tracing``;
* **metrics** — cache hit/miss/store/evict counters, pool build/reset
  counters, campaign budget gauges, per-category span timers;
* opt-in per-phase **cProfile** accumulation (``--profile``).

Everything is disabled by default at one-branch cost (bench-guarded by
``benchmarks/bench_obs.py``); the CLI enables it via ``--obs-trace
FILE`` / ``--profile OUT`` on ``repro sweep/explore/reproduce`` and
reads artifacts back with ``repro obs summary``.  Exported traces are
schema-validated by ``python -m repro.obs`` exactly like telemetry
reports and campaign journals.
"""

from .metrics import MetricsRegistry
from .profile import PhaseProfiler
from .schema import TRACE_VERSION, SchemaError, validate_trace
from .session import OBS, ObsSession
from .summary import render_summary
from .tracer import SpanTracer

__all__ = [
    "MetricsRegistry",
    "OBS",
    "ObsSession",
    "PhaseProfiler",
    "SchemaError",
    "SpanTracer",
    "TRACE_VERSION",
    "render_summary",
    "validate_trace",
]
