"""``python -m repro.obs <artifact> [...]`` — schema validation.

Thin wrapper over :func:`repro.obs.schema.main` so CI can validate
exported platform traces, campaign event logs (``events.jsonl``) and
journals without tripping runpy's already-imported-module warning (the
same arrangement as ``python -m repro.telemetry`` and ``python -m
repro.dse``).
"""

import sys

from .schema import main

if __name__ == "__main__":
    sys.exit(main())
