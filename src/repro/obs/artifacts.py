"""Shared artifact detection for everything the platform leaves on disk.

Three observability surfaces read the same families of files — Chrome
traces, campaign journals, event logs — and each used to carry its own
sniffing logic.  This module is the single detector: hand it a path,
get back ``(kind, payload, warnings)`` where ``kind`` is ``"trace"``,
``"journal"`` or ``"events"``.

In ``tolerant`` mode it additionally survives the crash case the
control plane exists for: an artifact cut mid-write.  Event logs are
line-oriented, so a torn tail is naturally a one-line warning; for the
JSON-document kinds, :func:`salvage_json` recovers the largest
syntactically-valid prefix (closing whatever brackets the truncation
left open) so ``repro obs summary`` and ``repro status`` can report
what *did* land instead of refusing the file.  Unsalvageable garbage
still raises — tolerance is for truncation, not for arbitrary bytes.
"""

from __future__ import annotations

import json

from ..engine.errors import ConfigError

#: How many trailing lines :func:`salvage_json` will retry cutting at.
_SALVAGE_ATTEMPTS = 2000

_CLOSERS = {"{": "}", "[": "]"}


def load_text(path: str) -> str:
    """Read an artifact file, with CLI-grade error messages."""
    try:
        with open(path, encoding="utf-8") as stream:
            return stream.read()
    except OSError as exc:
        raise ConfigError(f"cannot read {path!r}: {exc}")


def sniff_document(document: dict):
    """``"trace"`` / ``"journal"`` for a parsed dict, else ``None``."""
    if "traceEvents" in document:
        return "trace"
    if "evaluations" in document:
        return "journal"
    return None


def looks_like_events(text: str) -> bool:
    """Whether ``text`` is line-oriented event-log content.

    Decided from the first non-empty line alone: one JSON object per
    line carrying the ``event``/``seq`` envelope.  A trace or journal
    opens with a multi-line document, so its first line never parses
    as a complete object.
    """
    for line in text.split("\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            return False
        return isinstance(record, dict) and "event" in record \
            and "seq" in record
    return False


def _bracket_states(lines):
    """Per-line ``(stack, in_string)`` after consuming each line."""
    states = []
    stack = []
    in_string = False
    escape = False
    for line in lines:
        for char in line:
            if escape:
                escape = False
            elif in_string:
                if char == "\\":
                    escape = True
                elif char == '"':
                    in_string = False
            elif char == '"':
                in_string = True
            elif char in "{[":
                stack.append(char)
            elif char in "}]":
                if stack and _CLOSERS[stack[-1]] == char:
                    stack.pop()
        escape = False  # a newline inside a string ends any escape
        states.append(("".join(stack), in_string))
    return states


def salvage_json(text: str):
    """Parse the largest valid prefix of a truncated JSON document.

    Returns ``(document, dropped)`` where ``dropped`` counts the bytes
    cut from the tail; raises :class:`ValueError` when no prefix
    parses (i.e. the file is garbage, not merely truncated).
    """
    try:
        return json.loads(text), 0
    except ValueError:
        pass
    lines = text.split("\n")
    states = _bracket_states(lines)
    first = max(1, len(lines) - _SALVAGE_ATTEMPTS)
    for cut in range(len(lines) - 1, first - 1, -1):
        stack, in_string = states[cut - 1]
        if in_string:
            continue  # cannot cleanly cut inside a string literal
        candidate = "\n".join(lines[:cut]).rstrip()
        if candidate.endswith(","):
            candidate = candidate[:-1]
        if candidate.endswith(":"):
            continue  # a dangling key has no recoverable value
        candidate += "".join(_CLOSERS[char] for char in reversed(stack))
        try:
            document = json.loads(candidate)
        except ValueError:
            continue
        return document, len(text) - len("\n".join(lines[:cut]))
    raise ValueError("no parseable prefix")


def load_artifact(path: str, tolerant: bool = False):
    """Detect and load one artifact: ``(kind, payload, warnings)``.

    * ``kind == "events"``: payload is the list of parsed records, and
      a torn tail is always tolerated (warned, never fatal).
    * ``kind == "trace"`` / ``"journal"``: payload is the parsed dict.
      With ``tolerant=True`` a truncated document is salvaged back to
      its largest valid prefix, with a warning describing the cut.
    """
    text = load_text(path)
    if looks_like_events(text):
        from .eventlog import parse_events
        records, warnings = parse_events(text)
        return "events", records, warnings
    warnings = []
    try:
        document = json.loads(text)
    except ValueError as exc:
        if not tolerant:
            raise ConfigError(f"{path!r} is not valid JSON: {exc}")
        try:
            document, dropped = salvage_json(text)
        except ValueError:
            raise ConfigError(
                f"{path!r} is not valid JSON and no prefix of it "
                f"parses: {exc}")
        warnings.append(
            f"artifact truncated (crash mid-write?): recovered a valid "
            f"prefix, ignored the last {dropped} bytes")
    if not isinstance(document, dict):
        raise ConfigError(f"{path!r}: expected a JSON object")
    kind = sniff_document(document)
    if kind is None:
        raise ConfigError(
            "not an --obs-trace file (no 'traceEvents'), not a campaign "
            "journal (no 'evaluations'), and not an events.jsonl log")
    return kind, document, warnings
