"""Append-only structured event log — the campaign control plane.

Every campaign state transition becomes one JSON record on one line of
``events.jsonl``, written next to the journal: campaign started and
finished, each batch scheduled, each point started and finished (with
its cache-hit flag and ``wall_ms``), cache stores and evictions, and
pool workers spawning and exiting.  The journal remains the durable
*result* store; the event log is the durable *progress* store — it is
what lets a second process (``repro status``, a future coordinator, a
human with ``tail -f``) answer "how far along is this campaign and are
its workers alive" without attaching to the running interpreter.

Design constraints, in order:

* **crash-safe**: appends are line-at-a-time — a single buffered
  ``write`` immediately flushed — so a SIGKILL can at worst truncate
  the final line.  :func:`read_events` treats a torn tail as a warning,
  never an error.
* **multi-process**: the coordinator and every pool worker append to
  the *same* file.  Line writes smaller than the libc buffer are one
  ``write(2)`` on an ``O_APPEND`` descriptor, which POSIX keeps atomic
  in practice; each record carries its writer's pid and a per-process
  monotonic ``seq`` so readers can order and gap-check per lane even
  though lanes interleave.
* **fork-tolerant**: a log handle inherited through ``fork`` (the pool
  start method on Linux) heals itself — the first ``emit`` in the child
  reopens the file and restarts its sequence at 0, which the validator
  recognizes as a new writer session.

Validated by ``python -m repro.obs events.jsonl`` alongside traces.
"""

from __future__ import annotations

import json
import os
import time

from ..engine.errors import ConfigError

#: Bump when the record layout changes incompatibly.
EVENTS_VERSION = 1

#: File name, by convention next to ``journal.json``.
EVENTS_NAME = "events.jsonl"

#: Event type -> required payload fields (beyond the envelope).
EVENT_TYPES = {
    "campaign_started": ("workload", "sampler", "budget"),
    "campaign_finished": ("status", "points", "paid"),
    "batch_scheduled": ("batch", "points", "fresh"),
    "point_started": ("spec_hash",),
    "point_finished": ("spec_hash", "cache_hit", "paid", "wall_ms"),
    "cache_store": (),
    "cache_evict": ("count",),
    "worker_spawned": ("role",),
    "worker_exited": ("points",),
    "journal_written": ("evaluations",),
}

#: Envelope fields present on every record.
_ENVELOPE = ("v", "seq", "pid", "ts", "event")

#: Fields that must be bools, per event type.  ``paid`` is a flag on
#: ``point_finished`` but a running *count* on ``campaign_finished``.
_BOOL_FIELDS = {"point_finished": ("cache_hit", "paid")}

#: Fields that must be non-negative ints, per event type.
_COUNT_FIELDS = {
    "campaign_started": ("budget",),
    "campaign_finished": ("points", "paid"),
    "batch_scheduled": ("points", "fresh"),
    "cache_evict": ("count",),
    "worker_exited": ("points",),
    "journal_written": ("evaluations",),
}


def events_path(directory: str) -> str:
    """The canonical event-log path inside a campaign directory."""
    return os.path.join(directory, EVENTS_NAME)


class EventLog:
    """One writer's append handle on an ``events.jsonl`` file.

    Cheap to hold open: ``emit`` is a dict build, a ``json.dumps`` and
    one flushed write.  Not thread-safe by design — the harness emits
    from one thread per process (heartbeats write their own files).
    """

    def __init__(self, path: str):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self._pid = os.getpid()
        self._seq = 0
        self._stream = open(path, "a", encoding="utf-8")

    @property
    def last_seq(self) -> int:
        """Sequence number of the last record emitted (-1 before any)."""
        return self._seq - 1

    def emit(self, event: str, **fields) -> dict:
        """Append one record; returns the record written."""
        pid = os.getpid()
        if pid != self._pid:
            self._reopen(pid)
        record = {"v": EVENTS_VERSION, "seq": self._seq, "pid": pid,
                  "ts": round(time.time(), 6), "event": event}
        record.update(fields)
        self._seq += 1
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        return record

    def _reopen(self, pid: int) -> None:
        # Inherited through fork: the parent's descriptor position and
        # sequence belong to the parent.  Start a fresh writer session.
        try:
            self._stream.close()
        except OSError:
            pass
        self._stream = open(self.path, "a", encoding="utf-8")
        self._pid = pid
        self._seq = 0

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_events(text: str):
    """``(records, warnings)`` from event-log text, tolerating a torn tail.

    Only the *final* non-empty line may be unparseable (the crash case);
    garbage mid-file is skipped with a warning rather than silently
    dropped, so validation can still flag it.
    """
    records = []
    warnings = []
    lines = text.split("\n")
    last_content = 0
    for number, line in enumerate(lines, 1):
        if line.strip():
            last_content = number
    for number, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if number == last_content:
                warnings.append(
                    f"line {number}: truncated mid-write; ignored")
            else:
                warnings.append(f"line {number}: unparseable; skipped")
            continue
        if not isinstance(record, dict):
            warnings.append(f"line {number}: not a JSON object; skipped")
            continue
        records.append(record)
    return records, warnings


def read_events(path: str):
    """Read ``(records, warnings)`` from an event-log file."""
    try:
        with open(path, encoding="utf-8") as stream:
            text = stream.read()
    except OSError as exc:
        raise ConfigError(f"cannot read {path!r}: {exc}")
    return parse_events(text)


def validate_events(records) -> None:
    """Raise :class:`~.schema.SchemaError` unless records are valid.

    Beyond per-record shape, enforces the per-writer ordering contract:
    within one pid, ``seq`` increments by one — except a restart at 0,
    which marks a new writer session (fork heal, campaign resume).
    """
    from .schema import SchemaError, _require
    if not isinstance(records, list):
        raise SchemaError(
            f"events must be a list, got {type(records).__name__}")
    last_seq = {}
    for position, record in enumerate(records):
        where = f"events[{position}]"
        if not isinstance(record, dict):
            raise SchemaError(f"{where}: must be a dict")
        version = _require(record, "v", int, where)
        if version != EVENTS_VERSION:
            raise SchemaError(
                f"{where}: v must be {EVENTS_VERSION}, got {version}")
        seq = _require(record, "seq", int, where)
        pid = _require(record, "pid", int, where)
        _require(record, "ts", (int, float), where)
        event = _require(record, "event", str, where)
        if event not in EVENT_TYPES:
            raise SchemaError(
                f"{where}: unknown event {event!r} (known: "
                f"{', '.join(sorted(EVENT_TYPES))})")
        for field in EVENT_TYPES[event]:
            if field not in record:
                raise SchemaError(
                    f"{where}: {event} record missing field {field!r}")
        for field in _BOOL_FIELDS.get(event, ()):
            if field in record and not isinstance(record[field], bool):
                raise SchemaError(
                    f"{where}: {field!r} must be a bool, "
                    f"got {record[field]!r}")
        for field in _COUNT_FIELDS.get(event, ()):
            if field not in record:
                continue
            value = record[field]
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"{where}: {field!r} must be an int, got {value!r}")
        if "wall_ms" in record:
            wall = record["wall_ms"]
            if not isinstance(wall, (int, float)) or isinstance(wall, bool) \
                    or wall < 0:
                raise SchemaError(
                    f"{where}: wall_ms must be a number >= 0, got {wall!r}")
        previous = last_seq.get(pid)
        if previous is not None and seq not in (previous + 1, 0):
            raise SchemaError(
                f"{where}: pid {pid} seq jumped {previous} -> {seq} "
                f"(expected {previous + 1}, or 0 for a new session)")
        if previous is None and seq != 0:
            raise SchemaError(
                f"{where}: pid {pid} first record has seq {seq}, "
                f"expected 0")
        last_seq[pid] = seq


def validate_events_file(path: str):
    """Validate an event-log file; returns ``(records, warnings)``."""
    records, warnings = read_events(path)
    validate_events(records)
    return records, warnings
