"""Worker heartbeats: per-process liveness records on disk.

The event log says what a campaign *did*; heartbeats say whether the
processes doing it are still *alive*.  Each participant — the campaign
coordinator and every pool worker — owns one small JSON file under
``heartbeats/`` next to the journal and rewrites it atomically on a
timer thread plus at every point boundary.  A reader (``repro status``)
classifies each record against a pluggable staleness threshold:

* ``ok``    — the beat is fresh;
* ``stale`` — the pid still exists but the beat is older than the
  threshold (a wedged simulation, a stuck NFS write);
* ``dead``  — the pid is gone (crash, SIGKILL, OOM-kill).

Records are tiny and self-describing: pid, role, the writer's last
event-log sequence number, points completed, the spec hash currently
simulating, beat counters and timestamps.  Atomic rewrite (temp file +
``os.replace``) means a reader never sees a torn record, and a clean
shutdown removes the file so finished campaigns do not look dead.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Directory name, by convention next to ``journal.json``.
HEARTBEAT_DIR = "heartbeats"

#: Bump when the record layout changes incompatibly.
HEARTBEAT_VERSION = 1

#: Default seconds between timer-thread beats.
DEFAULT_INTERVAL = 0.5

#: Default staleness threshold when none is configured: a beat this
#: old from a live pid means the worker is wedged, not merely busy.
DEFAULT_STALE_AFTER = 10.0


def heartbeat_dir(directory: str) -> str:
    """The canonical heartbeat directory inside a campaign directory."""
    return os.path.join(directory, HEARTBEAT_DIR)


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:
        return False
    return True


class Heartbeat:
    """One process's heartbeat file, refreshed by a daemon thread.

    ``start()`` spawns the timer thread; point boundaries additionally
    beat inline via :meth:`point_started` / :meth:`point_finished` so a
    busy worker's record also advances between timer ticks.  ``stop()``
    joins the thread and (by default) removes the file — a surviving
    file therefore means an unclean exit.
    """

    def __init__(self, directory: str, role: str = "worker",
                 interval: float = DEFAULT_INTERVAL):
        os.makedirs(directory, exist_ok=True)
        self.pid = os.getpid()
        self.role = role
        self.interval = float(interval)
        self.path = os.path.join(directory, f"hb-{self.pid}.json")
        self.points = 0
        self.current = None
        self.last_seq = None
        self._beats = 0
        self._started_ts = time.time()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None

    def start(self) -> "Heartbeat":
        self.beat()
        thread = threading.Thread(target=self._run, daemon=True,
                                  name=f"heartbeat-{self.pid}")
        self._thread = thread
        thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def beat(self) -> None:
        """Atomically rewrite the heartbeat file with current state."""
        with self._lock:
            self._beats += 1
            record = {
                "version": HEARTBEAT_VERSION,
                "pid": self.pid,
                "role": self.role,
                "interval": self.interval,
                "started_ts": round(self._started_ts, 6),
                "beat_ts": round(time.time(), 6),
                "beats": self._beats,
                "points": self.points,
                "current": self.current,
                "last_seq": self.last_seq,
            }
            tmp = self.path + ".tmp"
            try:
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(record, stream, sort_keys=True)
                os.replace(tmp, self.path)
            except OSError:
                pass  # liveness reporting must never kill the work

    def point_started(self, spec_hash: str, last_seq=None) -> None:
        self.current = spec_hash
        if last_seq is not None:
            self.last_seq = last_seq
        self.beat()

    def point_finished(self, last_seq=None) -> None:
        self.points += 1
        self.current = None
        if last_seq is not None:
            self.last_seq = last_seq
        self.beat()

    def update(self, points=None, last_seq=None) -> None:
        """Coordinator-style bulk progress update, then beat."""
        if points is not None:
            self.points = points
        if last_seq is not None:
            self.last_seq = last_seq
        self.beat()

    def stop(self, remove: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(1.0, 2 * self.interval))
            self._thread = None
        if remove:
            for path in (self.path, self.path + ".tmp"):
                try:
                    os.remove(path)
                except OSError:
                    pass
        else:
            self.beat()


def read_heartbeats(directory: str) -> list:
    """All parseable heartbeat records under ``directory``, by pid."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    records = []
    for name in names:
        if not name.startswith("hb-") or not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name),
                      encoding="utf-8") as stream:
                record = json.load(stream)
        except (OSError, ValueError):
            continue  # torn or vanished mid-read: the next poll catches up
        if isinstance(record, dict) and "pid" in record:
            records.append(record)
    records.sort(key=lambda record: record.get("pid", 0))
    return records


def liveness(record: dict, now: float = None,
             stale_after: float = None) -> str:
    """Classify one heartbeat record: ``ok`` / ``stale`` / ``dead``."""
    if now is None:
        now = time.time()
    if stale_after is None:
        interval = record.get("interval") or DEFAULT_INTERVAL
        stale_after = max(DEFAULT_STALE_AFTER, 4 * float(interval))
    pid = record.get("pid", -1)
    if not pid_alive(pid):
        return "dead"
    age = now - float(record.get("beat_ts", 0.0))
    return "stale" if age > stale_after else "ok"
