"""Counters, gauges and timers for the experiment platform.

The simulator's own counters (:mod:`repro.engine.stats`) measure the
*simulated machine*; this registry measures the *harness running it* —
cache hits, pool reuse, points per second.  Three shapes cover every
instrumentation site:

* **counters** — monotonically increasing event counts (``cache.hit``,
  ``pool.build``): :meth:`MetricsRegistry.inc`;
* **gauges** — last-written point-in-time values
  (``campaign.budget_remaining``): :meth:`MetricsRegistry.gauge`;
* **timers** — duration distributions (``span.point``,
  ``span.phase``): :meth:`MetricsRegistry.observe` accumulates count,
  total, min and max in seconds;
* **histograms** — the same distributions with *shape*: a
  :class:`Histogram` of fixed power-of-two latency buckets whose
  p50/p90/p99 summaries back ``repro status``'s ETA math (and, later,
  ``repro serve``'s latency reporting).  :meth:`MetricsRegistry.histo`
  folds one observation in.

Everything is plain dicts of JSON scalars so a snapshot pickles across
worker processes and embeds directly in the exported trace document;
:meth:`MetricsRegistry.merge` folds a worker's snapshot into the
parent's registry (counters and timers add, gauges last-write-win),
which is what makes ``jobs=1`` and ``jobs=N`` runs report identical
totals.
"""

from __future__ import annotations


class Histogram:
    """Fixed power-of-two bucket latency histogram (seconds in).

    Bucket ``b`` holds observations whose microsecond value has bit
    length ``b`` — i.e. values in ``[2^(b-1), 2^b)`` µs — with 64
    buckets covering sub-microsecond through ~146 hours.  Constant
    memory, O(1) observe, and quantiles in one pass: each quantile
    reports its bucket's inclusive upper bound (``2^b - 1`` µs), a
    deliberate overestimate of at most 2x which is the right bias for
    the ETA math built on it.
    """

    BUCKETS = 64

    __slots__ = ("count", "total_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.buckets = [0] * self.BUCKETS

    def observe(self, seconds: float) -> None:
        """Fold one duration (seconds) into its power-of-two bucket."""
        us = int(seconds * 1e6)
        index = us.bit_length() if us > 0 else 0
        if index >= self.BUCKETS:
            index = self.BUCKETS - 1
        self.buckets[index] += 1
        self.count += 1
        self.total_s += seconds

    def quantile(self, q: float) -> float:
        """The ``q``-quantile in seconds (bucket upper bound)."""
        if not self.count:
            return 0.0
        target = int(q * self.count)
        if target < q * self.count:
            target += 1
        target = max(1, target)
        cumulative = 0
        for index, occupancy in enumerate(self.buckets):
            cumulative += occupancy
            if cumulative >= target:
                return ((1 << index) - 1) / 1e6
        return ((1 << (self.BUCKETS - 1)) - 1) / 1e6

    def summary(self) -> dict:
        """count/mean and p50/p90/p99, all JSON scalars."""
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": mean,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        """Picklable/JSON-able form (bucket list trimmed of the tail)."""
        top = 0
        for index, occupancy in enumerate(self.buckets):
            if occupancy:
                top = index + 1
        return {"count": self.count, "total_s": self.total_s,
                "buckets": self.buckets[:top]}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.merge_dict(data)
        return histogram

    def merge_dict(self, data: dict) -> None:
        """Fold another histogram's :meth:`to_dict` into this one."""
        self.count += data.get("count", 0)
        self.total_s += data.get("total_s", 0.0)
        for index, occupancy in enumerate(data.get("buckets", ())):
            if index < self.BUCKETS:
                self.buckets[index] += occupancy


class MetricsRegistry:
    """In-process metric store; see the module docstring for the model."""

    def __init__(self) -> None:
        self.counters: dict = {}
        self.gauges: dict = {}
        self.timers: dict = {}
        self.histograms: dict = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = {"count": 1, "total_s": seconds,
                                 "min_s": seconds, "max_s": seconds}
            return
        timer["count"] += 1
        timer["total_s"] += seconds
        if seconds < timer["min_s"]:
            timer["min_s"] = seconds
        if seconds > timer["max_s"]:
            timer["max_s"] = seconds

    def histo(self, name: str, seconds: float) -> None:
        """Fold one duration into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(seconds)

    def merge(self, counters: dict = None, gauges: dict = None,
              timers: dict = None, histograms: dict = None) -> None:
        """Fold another registry's snapshot into this one.

        Counters and timers are additive across processes; gauges are
        point-in-time, so the merged-in value simply wins.
        """
        for name, amount in (counters or {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, value in (gauges or {}).items():
            self.gauges[name] = value
        for name, timer in (timers or {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = dict(timer)
                continue
            mine["count"] += timer["count"]
            mine["total_s"] += timer["total_s"]
            mine["min_s"] = min(mine["min_s"], timer["min_s"])
            mine["max_s"] = max(mine["max_s"], timer["max_s"])
        for name, data in (histograms or {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge_dict(data)

    def snapshot(self) -> dict:
        """A picklable/JSON-able copy of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: dict(timer)
                       for name, timer in self.timers.items()},
            "histograms": {name: histogram.to_dict()
                           for name, histogram in
                           self.histograms.items()},
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.histograms.clear()
