"""Counters, gauges and timers for the experiment platform.

The simulator's own counters (:mod:`repro.engine.stats`) measure the
*simulated machine*; this registry measures the *harness running it* —
cache hits, pool reuse, points per second.  Three shapes cover every
instrumentation site:

* **counters** — monotonically increasing event counts (``cache.hit``,
  ``pool.build``): :meth:`MetricsRegistry.inc`;
* **gauges** — last-written point-in-time values
  (``campaign.budget_remaining``): :meth:`MetricsRegistry.gauge`;
* **timers** — duration distributions (``span.point``,
  ``span.phase``): :meth:`MetricsRegistry.observe` accumulates count,
  total, min and max in seconds.

Everything is plain dicts of JSON scalars so a snapshot pickles across
worker processes and embeds directly in the exported trace document;
:meth:`MetricsRegistry.merge` folds a worker's snapshot into the
parent's registry (counters and timers add, gauges last-write-win),
which is what makes ``jobs=1`` and ``jobs=N`` runs report identical
totals.
"""

from __future__ import annotations


class MetricsRegistry:
    """In-process metric store; see the module docstring for the model."""

    def __init__(self) -> None:
        self.counters: dict = {}
        self.gauges: dict = {}
        self.timers: dict = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = {"count": 1, "total_s": seconds,
                                 "min_s": seconds, "max_s": seconds}
            return
        timer["count"] += 1
        timer["total_s"] += seconds
        if seconds < timer["min_s"]:
            timer["min_s"] = seconds
        if seconds > timer["max_s"]:
            timer["max_s"] = seconds

    def merge(self, counters: dict = None, gauges: dict = None,
              timers: dict = None) -> None:
        """Fold another registry's snapshot into this one.

        Counters and timers are additive across processes; gauges are
        point-in-time, so the merged-in value simply wins.
        """
        for name, amount in (counters or {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, value in (gauges or {}).items():
            self.gauges[name] = value
        for name, timer in (timers or {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = dict(timer)
                continue
            mine["count"] += timer["count"]
            mine["total_s"] += timer["total_s"]
            mine["min_s"] = min(mine["min_s"], timer["min_s"])
            mine["max_s"] = max(mine["max_s"], timer["max_s"])

    def snapshot(self) -> dict:
        """A picklable/JSON-able copy of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: dict(timer)
                       for name, timer in self.timers.items()},
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
