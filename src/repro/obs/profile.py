"""Opt-in per-phase cProfile accumulation.

``--profile OUT`` answers the question the span tracer cannot: not
*which* phase is hot but *what inside it* burns the time.  One
:class:`cProfile.Profile` accumulates per phase name (``build``,
``run``, ``collect-stats``, ``acquire``...), re-enabled on every
occurrence of that phase, so a 500-point sweep folds all 500 ``run``
phases into one stats object.  :meth:`PhaseProfiler.dump` writes the
*hottest* phase (largest accumulated wall clock) as a standard pstats
file for ``python -m pstats`` / snakeviz.

Only one cProfile can be active per interpreter, hence the ``_active``
guard: a nested phase span (``acquire`` inside a ``point``) simply
skips profiling while an outer phase holds the profiler.  Profiling is
likewise confined to ``--jobs 1`` (the CLI enforces it) — a worker
process's profile would die with the worker.
"""

from __future__ import annotations

import cProfile
from typing import Optional


class PhaseProfiler:
    """Accumulating per-phase profiler; see the module docstring."""

    def __init__(self) -> None:
        self._profiles: dict = {}
        self._active: Optional[str] = None
        #: Accumulated wall-clock seconds per phase name.
        self.wall: dict = {}

    def start(self, name: str) -> bool:
        """Begin profiling phase ``name``; ``False`` when another phase
        already holds the (single) profiler."""
        if self._active is not None:
            return False
        profile = self._profiles.get(name)
        if profile is None:
            profile = self._profiles[name] = cProfile.Profile()
        self._active = name
        profile.enable()
        return True

    def stop(self, name: str, seconds: float) -> None:
        """End the phase begun by a successful :meth:`start`."""
        self._profiles[name].disable()
        self._active = None
        self.wall[name] = self.wall.get(name, 0.0) + seconds

    def hottest(self) -> Optional[str]:
        """The phase with the largest accumulated wall clock."""
        if not self.wall:
            return None
        return max(sorted(self.wall), key=lambda name: self.wall[name])

    def dump(self, path: str) -> Optional[str]:
        """Write the hottest phase's pstats to ``path``; returns the
        phase name, or ``None`` when nothing was profiled."""
        name = self.hottest()
        if name is None:
            return None
        self._profiles[name].dump_stats(path)
        return name
