"""Structural validation of exported platform traces.

CI records ``--obs-trace`` files for the smoke sweeps and campaigns and
validates them here before uploading — a trace whose events drift from
the Chrome trace-event layout (and from the ``otherData`` metrics block
``repro obs summary`` reads) fails the pipeline instead of shipping a
file Perfetto cannot load.  Zero schema dependencies, same as the
telemetry and journal validators: plain checks over the parsed dict.

Run standalone over one or more files — traces, campaign event logs
(``events.jsonl``) and journals are all recognized::

    python -m repro.obs trace.json events.jsonl [more ...]

exits 0 when every file validates, 2 with a message otherwise.

(The :class:`SchemaError`/``_require`` pair is deliberately local
rather than imported from :mod:`repro.telemetry.schema`: the engine's
batch pool reports through :mod:`repro.obs`, and pulling the telemetry
package — whose init loads every built-in probe — into that import
chain would be a cycle waiting to happen.)
"""

from __future__ import annotations

import sys

from ..engine.errors import ConfigError

#: Bump when the exported trace layout changes incompatibly.
TRACE_VERSION = 1

#: Event phases we emit: complete spans and metadata.
_PHASES = ("X", "M")

_TIMER_KEYS = ("count", "total_s", "min_s", "max_s")


class SchemaError(ConfigError):
    """An exported trace does not match the documented shape."""


def _require(data: dict, key: str, types, where: str):
    if key not in data:
        raise SchemaError(f"{where}: missing key {key!r}")
    value = data[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise SchemaError(
            f"{where}: {key!r} must be {types}, got {type(value).__name__}")
    return value


def validate_trace(data: dict) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid trace."""
    if not isinstance(data, dict):
        raise SchemaError(
            f"trace must be a dict, got {type(data).__name__}")
    events = _require(data, "traceEvents", list, "trace")
    ids = set()
    parents = []
    for position, event in enumerate(events):
        where = f"trace.traceEvents[{position}]"
        if not isinstance(event, dict):
            raise SchemaError(f"{where}: must be a dict")
        _require(event, "name", str, where)
        phase = _require(event, "ph", str, where)
        if phase not in _PHASES:
            raise SchemaError(
                f"{where}: ph must be one of {_PHASES}, got {phase!r}")
        _require(event, "pid", int, where)
        _require(event, "tid", int, where)
        args = _require(event, "args", dict, where)
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                raise SchemaError(
                    f"{where}: unknown metadata event {event['name']!r}")
            _require(args, "name", str, f"{where}.args")
            continue
        _require(event, "cat", str, where)
        for key in ("ts", "dur"):
            value = _require(event, key, (int, float), where)
            if value < 0:
                raise SchemaError(f"{where}: {key} must be >= 0, "
                                  f"got {value!r}")
        span_id = _require(args, "id", int, f"{where}.args")
        if span_id in ids:
            raise SchemaError(f"{where}: duplicate span id {span_id}")
        ids.add(span_id)
        if "parent" not in args:
            raise SchemaError(f"{where}.args: missing key 'parent'")
        parent = args["parent"]
        if parent is not None and not isinstance(parent, int):
            raise SchemaError(
                f"{where}.args: parent must be a span id or null, "
                f"got {parent!r}")
        if parent is not None:
            parents.append((where, parent))
    for where, parent in parents:
        if parent not in ids:
            raise SchemaError(
                f"{where}: orphaned span (parent {parent} is not among "
                f"the recorded spans)")
    other = data.get("otherData")
    if other is None:
        return
    if not isinstance(other, dict):
        raise SchemaError("trace: 'otherData' must be a dict")
    _require(other, "version", int, "trace.otherData")
    counters = _require(other, "counters", dict, "trace.otherData")
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(
                f"trace.otherData.counters[{name!r}]: must be an int, "
                f"got {value!r}")
    _require(other, "gauges", dict, "trace.otherData")
    timers = _require(other, "timers", dict, "trace.otherData")
    for name, timer in timers.items():
        where = f"trace.otherData.timers[{name!r}]"
        if not isinstance(timer, dict):
            raise SchemaError(f"{where}: must be a dict")
        for key in _TIMER_KEYS:
            _require(timer, key, (int, float), where)
    histograms = other.get("histograms")
    if histograms is None:
        return  # pre-histogram traces stay valid
    if not isinstance(histograms, dict):
        raise SchemaError("trace.otherData: 'histograms' must be a dict")
    for name, histogram in histograms.items():
        where = f"trace.otherData.histograms[{name!r}]"
        if not isinstance(histogram, dict):
            raise SchemaError(f"{where}: must be a dict")
        _require(histogram, "count", int, where)
        _require(histogram, "total_s", (int, float), where)
        buckets = _require(histogram, "buckets", list, where)
        for position, occupancy in enumerate(buckets):
            if not isinstance(occupancy, int) or isinstance(occupancy,
                                                            bool):
                raise SchemaError(
                    f"{where}.buckets[{position}]: must be an int, "
                    f"got {occupancy!r}")


def main(argv=None) -> int:
    """Validate trace / event-log / journal files from the command line."""
    from .artifacts import load_artifact
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.obs "
              "{trace.json|events.jsonl|journal.json} [...]")
        return 2
    for path in paths:
        try:
            kind, payload, warnings = load_artifact(path)
            if kind == "trace":
                validate_trace(payload)
                spans = sum(1 for event in payload["traceEvents"]
                            if event.get("ph") == "X")
                detail = (f"{spans} spans, "
                          f"{len(payload.get('otherData', {}).get('counters', {}))} "
                          f"counters")
            elif kind == "events":
                from .eventlog import validate_events
                validate_events(payload)
                writers = {record["pid"] for record in payload}
                detail = f"{len(payload)} events, {len(writers)} writers"
            else:
                from ..dse.schema import validate_journal
                validate_journal(payload)
                detail = (f"{len(payload['evaluations'])} evaluations, "
                          f"status {payload['status']}")
        except (ConfigError, OSError, ValueError) as exc:
            print(f"schema: {path}: {exc}")
            return 2
        print(f"schema: {path}: ok ({kind}: {detail})")
        for warning in warnings:
            print(f"schema: {path}: warning: {warning}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
