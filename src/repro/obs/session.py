"""The process-wide observability session.

All instrumentation in the harness talks to one module-level
:data:`OBS` session, for the same reason the simulator's telemetry hub
is process-global: threading an observer handle through
``run_experiments`` → ``run_scenarios`` → ``execute`` would change
every signature between the CLI and the innermost phase.  The cost
discipline matches PR 3's simulator hooks — disabled (the default),
every site is one attribute load plus a branch, bench-guarded by
``benchmarks/bench_obs.py``::

    if OBS.enabled:
        OBS.inc("cache.hit")

    with OBS.span("run", cat="phase"):
        ...   # a no-op null context manager while disabled

Enabled (``--obs-trace`` / ``--profile``), the session owns one
:class:`~repro.obs.tracer.SpanTracer`, one
:class:`~repro.obs.metrics.MetricsRegistry` and optionally one
:class:`~repro.obs.profile.PhaseProfiler`.  Pool workers run their own
fresh session per call and ship a :meth:`~ObsSession.snapshot` back;
the parent folds snapshots in **call order** via
:meth:`~ObsSession.merge_worker`, so counter totals and span parentage
are identical for any ``--jobs`` value.  Every closed span also feeds
the ``span.<cat>`` timer, which is how ``repro obs summary`` reads
utilization out of an exported trace without re-walking the spans.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from .metrics import MetricsRegistry
from .profile import PhaseProfiler
from .schema import TRACE_VERSION
from .tracer import SpanTracer


class _NullSpan:
    """The shared do-nothing span returned while the session is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one live span (session enabled)."""

    __slots__ = ("_session", "_name", "_cat", "_args", "_span", "_profiled")

    def __init__(self, session: "ObsSession", name: str, cat: str,
                 args: dict) -> None:
        self._session = session
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        session = self._session
        self._span = session.tracer.begin(self._name, self._cat, self._args)
        self._profiled = (session.profiler is not None
                          and self._cat == "phase"
                          and session.profiler.start(self._name))
        return self._span

    def __exit__(self, exc_type, exc, tb):
        session = self._session
        seconds = session.tracer.end(self._span)
        if self._profiled:
            session.profiler.stop(self._name, seconds)
        session.metrics.observe("span." + self._cat, seconds)
        session.metrics.histo("span." + self._cat, seconds)
        return False


class ObsSession:
    """One process's observability state; use the :data:`OBS` singleton."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        self.profiler: Optional[PhaseProfiler] = None
        self.origin = 0.0
        #: The on-disk control plane, opened per campaign via
        #: :meth:`open_events`.  Independent of :attr:`enabled` — the
        #: event log is durable state, not an in-memory recording —
        #: and ``None`` by default, so every emission site is the same
        #: one-attr-load-plus-branch as the trace hooks.
        self.events = None
        self.heartbeat = None
        #: Worker pid -> rendering lane, assigned in merge (= call)
        #: order so lane numbering is deterministic for a given run.
        self._tracks: dict = {}

    # -- lifecycle ------------------------------------------------------------

    def enable(self, profile: bool = False) -> None:
        """Start a fresh recording session (drops any previous data)."""
        self.tracer.clear()
        self.metrics.clear()
        self.profiler = PhaseProfiler() if profile else None
        self._tracks = {}
        self.origin = time.perf_counter()
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (buffers stay readable until the next enable)."""
        self.enabled = False

    def open_events(self, path: str, role: str = "coordinator",
                    heartbeat: bool = True,
                    heartbeat_interval: float = None):
        """Open the on-disk control plane: event log + heartbeat.

        ``path`` is the ``events.jsonl`` file; the heartbeat directory
        lives beside it.  Replaces any previously open control plane.
        Orthogonal to :meth:`enable` — campaigns can write events
        without paying for span recording, and vice versa.
        """
        from .eventlog import EventLog
        from .heartbeat import DEFAULT_INTERVAL, Heartbeat
        from .heartbeat import heartbeat_dir as resolve_heartbeat_dir
        self.close_events()
        self.events = EventLog(path)
        if heartbeat:
            directory = os.path.dirname(os.path.abspath(path))
            interval = (DEFAULT_INTERVAL if heartbeat_interval is None
                        else heartbeat_interval)
            self.heartbeat = Heartbeat(resolve_heartbeat_dir(directory),
                                       role=role,
                                       interval=interval).start()
        return self.events

    def close_events(self, keep_heartbeat: bool = False) -> None:
        """Close the control plane; removes this process's heartbeat
        file (unless ``keep_heartbeat``) so a clean exit reads as one."""
        monitor, self.heartbeat = self.heartbeat, None
        if monitor is not None:
            monitor.stop(remove=not keep_heartbeat)
        log, self.events = self.events, None
        if log is not None:
            log.close()

    def emit(self, event: str, **fields) -> None:
        """Emit one control-plane event if the log is open, else no-op."""
        log = self.events
        if log is not None:
            log.emit(event, **fields)

    # -- recording ------------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **args):
        """A context manager timing one nested region.

        ``cat`` buckets spans for the summary (``campaign``,
        ``schedule``, ``point``, ``phase``); ``args`` become the span's
        Chrome-trace args, so keep them small JSON scalars.  Disabled
        sessions return a shared null context manager — callers never
        branch themselves.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, cat, args)

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.metrics.inc(name, amount)

    def gauge(self, name: str, value) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)

    def observe(self, name: str, seconds: float) -> None:
        if self.enabled:
            self.metrics.observe(name, seconds)

    # -- cross-process merging -----------------------------------------------

    def snapshot(self) -> dict:
        """This process's closed spans + metrics, picklable for the
        parent's :meth:`merge_worker`."""
        snap = self.metrics.snapshot()
        snap["pid"] = os.getpid()
        snap["spans"] = list(self.tracer.spans)
        return snap

    def merge_worker(self, snap: dict) -> None:
        """Fold a worker snapshot into this session.

        Must be called in a deterministic order (the runner merges in
        call order, which ``pool.map`` guarantees): span ids are
        rebased past this tracer's counter, worker-top-level spans are
        adopted under the currently open span, and each worker pid gets
        a stable rendering lane by first appearance.
        """
        if not self.enabled or not snap:
            return
        pid = snap.get("pid")
        track = self._tracks.get(pid)
        if track is None:
            track = self._tracks[pid] = len(self._tracks) + 1
        base = self.tracer.next_id
        current = self.tracer.current
        adopt_parent = current["id"] if current is not None else None
        rebased = []
        top = base
        for span in snap.get("spans", ()):
            span = dict(span)
            span["id"] += base
            top = max(top, span["id"])
            span["parent"] = (span["parent"] + base
                              if span["parent"] is not None
                              else adopt_parent)
            span["track"] = track
            rebased.append(span)
        if rebased:
            self.tracer.next_id = top + 1
            self.tracer.adopt(rebased)
        self.metrics.merge(snap.get("counters"), snap.get("gauges"),
                           snap.get("timers"), snap.get("histograms"))

    # -- export ---------------------------------------------------------------

    def trace_document(self) -> dict:
        """The session as a Chrome trace-event JSON document.

        ``ts``/``dur`` are microseconds relative to :meth:`enable`, so
        the trace starts near zero in Perfetto.  The metrics snapshot
        rides along in ``otherData`` (viewers ignore it), which lets
        ``repro obs summary`` report cache/pool/throughput figures from
        the trace file alone.
        """
        origin = self.origin
        spans = sorted(self.tracer.spans,
                       key=lambda s: (s["start"], s["id"]))
        lanes = sorted({span["track"] for span in spans} | {0})
        events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                   "args": {"name": "repro harness"}}]
        for lane in lanes:
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": lane,
                "args": {"name": "main" if lane == 0
                         else f"worker-{lane}"}})
        for span in spans:
            events.append({
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "ts": round((span["start"] - origin) * 1e6, 3),
                "dur": round((span["end"] - span["start"]) * 1e6, 3),
                "pid": 1,
                "tid": span["track"],
                "args": dict(span["args"], id=span["id"],
                             parent=span["parent"]),
            })
        snap = self.metrics.snapshot()
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs",
                "version": TRACE_VERSION,
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "timers": snap["timers"],
                "histograms": snap["histograms"],
            },
        }

    def export_chrome_trace(self, path: str) -> str:
        """Atomically write :meth:`trace_document` as JSON; returns
        ``path``."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as stream:
            json.dump(self.trace_document(), stream, indent=2,
                      sort_keys=True)
            stream.write("\n")
        os.replace(tmp, path)
        return path

    def dump_profile(self, path: str) -> Optional[str]:
        """Write the hottest profiled phase's pstats to ``path``;
        returns the phase name (``None`` when profiling was off or no
        phase ran)."""
        if self.profiler is None:
            return None
        return self.profiler.dump(path)


#: The process-wide session every instrumentation site reports to.
OBS = ObsSession()
