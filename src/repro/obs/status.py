"""``repro status`` — live campaign state from on-disk artifacts only.

Reconstructs what a campaign is doing (or was doing when it died) from
the three files the control plane leaves behind — ``events.jsonl``,
``heartbeats/`` and ``journal.json`` — never from the process itself.
The same code therefore answers for a still-running campaign, a
finished one, and one SIGKILLed mid-batch; the only difference is what
the artifacts say.

Reconstruction rules worth knowing:

* The event log may span several writer sessions (a campaign resumed
  after a kill appends to the same file).  Progress is computed from
  the records after the **last** ``campaign_started`` — and because a
  resumed campaign re-emits ``point_finished`` for every replayed
  record, that slice alone reconciles exactly against the journal.
* The overall state is decided by evidence strength: an explicit
  ``campaign_finished`` wins; otherwise the coordinator heartbeat's
  liveness (``running`` / ``stalled`` / ``dead``); otherwise whatever
  the journal's ``status`` field claims.
* ETA multiplies the remaining paid budget by the p50 of a rolling
  window of recent paid ``wall_ms`` values (a
  :class:`~repro.obs.metrics.Histogram`), divided by the live worker
  count — deliberately a smoothed, conservative estimate.
"""

from __future__ import annotations

import os
import time

from ..engine.errors import ConfigError
from .eventlog import EVENTS_NAME, events_path, read_events
from .heartbeat import heartbeat_dir, liveness, read_heartbeats
from .metrics import Histogram

#: Paid wall_ms samples feeding the ETA histogram.
ETA_WINDOW = 32


def resolve_campaign_dir(path: str) -> str:
    """Accept a campaign directory, its journal, or its event log."""
    if os.path.isdir(path):
        return path
    if os.path.basename(path) in ("journal.json", EVENTS_NAME) \
            or os.path.exists(path):
        return os.path.dirname(os.path.abspath(path))
    raise ConfigError(
        f"cannot read {path!r}: not a campaign directory, journal, or "
        f"event log")


def aggregate_events(records: list) -> dict:
    """Campaign progress figures from parsed event records.

    Counts cover the last writer session (see the module docstring);
    worker spawn/exit tallies cover the whole file, since pool workers
    of the current session restart their ``seq`` at 0 but their spawn
    events interleave anywhere after the session start.
    """
    start = 0
    sessions = 0
    for position, record in enumerate(records):
        if record.get("event") == "campaign_started":
            sessions += 1
            start = position
    session = records[start:]
    campaign = {}
    finished = None
    batches = 0
    points = paid = cache_hits = 0
    stores = evicts = 0
    spawned = exited = 0
    started: dict = {}
    finished_points: dict = {}
    wall = Histogram()
    recent: list = []
    for record in session:
        event = record.get("event")
        if event == "campaign_started":
            campaign = {key: record[key] for key in
                        ("workload", "sampler", "budget", "seed",
                         "jobs", "batch", "resumed") if key in record}
        elif event == "campaign_finished":
            finished = {"status": record.get("status"),
                        "points": record.get("points"),
                        "paid": record.get("paid")}
        elif event == "batch_scheduled":
            batches += 1
        elif event == "point_started":
            key = record.get("spec_hash")
            started[key] = started.get(key, 0) + 1
        elif event == "point_finished":
            points += 1
            if record.get("paid"):
                paid += 1
                wall_ms = record.get("wall_ms", 0.0)
                wall.observe(wall_ms / 1000.0)
                recent.append(wall_ms)
                if len(recent) > ETA_WINDOW:
                    recent.pop(0)
            if record.get("cache_hit"):
                cache_hits += 1
            key = record.get("spec_hash")
            finished_points[key] = finished_points.get(key, 0) + 1
        elif event == "cache_store":
            stores += 1
        elif event == "cache_evict":
            evicts += record.get("count", 1)
        elif event == "worker_spawned":
            spawned += 1
        elif event == "worker_exited":
            exited += 1
    matched = sum(min(count, finished_points.get(key, 0))
                  for key, count in started.items())
    inflight = sum(started.values()) - matched
    recent_hist = Histogram()
    for wall_ms in recent:
        recent_hist.observe(wall_ms / 1000.0)
    timestamps = [record["ts"] for record in session
                  if isinstance(record.get("ts"), (int, float))]
    return {
        "sessions": sessions,
        "campaign": campaign,
        "finished": finished,
        "batches": batches,
        "points": points,
        "paid": paid,
        "free": points - paid,
        "cache_hits": cache_hits,
        "cache_stores": stores,
        "cache_evicts": evicts,
        "workers_spawned": spawned,
        "workers_exited": exited,
        "inflight": max(0, inflight),
        "wall": wall.summary(),
        "recent_wall": recent_hist.summary(),
        "first_ts": min(timestamps) if timestamps else None,
        "last_ts": max(timestamps) if timestamps else None,
        "events": len(session),
        "events_total": len(records),
    }


def _journal_summary(document: dict) -> dict:
    evaluations = [record for record in document.get("evaluations", [])
                   if isinstance(record, dict)]
    paid = sum(1 for record in evaluations if not record.get("cached"))
    hits = sum(1 for record in evaluations
               if record.get("cache_hit", False))
    return {
        "status": document.get("status", "unknown"),
        "evaluations": len(evaluations),
        "paid": paid,
        "cache_hits": hits,
        "budget": (document.get("campaign") or {}).get("budget"),
    }


def collect_status(path: str, stale_after: float = None,
                   now: float = None) -> dict:
    """One JSON-able snapshot of a campaign's on-disk state."""
    directory = resolve_campaign_dir(path)
    if now is None:
        now = time.time()
    warnings = []

    journal = None
    journal_file = os.path.join(directory, "journal.json")
    if os.path.exists(journal_file):
        from ..dse.journal import load_journal_tolerant
        try:
            document, journal_warnings = load_journal_tolerant(journal_file)
            journal = _journal_summary(document)
            warnings.extend(f"journal: {text}"
                            for text in journal_warnings)
        except ConfigError as exc:
            warnings.append(f"journal: {exc}")

    agg = None
    events_file = events_path(directory)
    if os.path.exists(events_file):
        records, event_warnings = read_events(events_file)
        warnings.extend(f"events: {text}" for text in event_warnings)
        if records:
            agg = aggregate_events(records)

    workers = []
    coordinator = None
    for record in read_heartbeats(heartbeat_dir(directory)):
        verdict = liveness(record, now=now, stale_after=stale_after)
        entry = {
            "pid": record.get("pid"),
            "role": record.get("role", "worker"),
            "liveness": verdict,
            "age_s": round(now - float(record.get("beat_ts", now)), 3),
            "points": record.get("points", 0),
            "current": record.get("current"),
            "last_seq": record.get("last_seq"),
        }
        workers.append(entry)
        if entry["role"] == "coordinator" and coordinator is None:
            coordinator = entry

    if agg is not None and agg["finished"] is not None:
        state = f"finished ({agg['finished']['status']})"
    elif coordinator is not None:
        state = {
            "ok": "running",
            "stale": (f"stalled (coordinator pid {coordinator['pid']} "
                      f"silent for {coordinator['age_s']:.1f}s)"),
            "dead": (f"dead (coordinator pid {coordinator['pid']} is "
                     f"gone — killed?)"),
        }[coordinator["liveness"]]
    elif workers:
        alive = [entry for entry in workers
                 if entry["liveness"] != "dead"]
        state = "running (workers only)" if alive else \
            "dead (all workers gone)"
    elif journal is not None:
        state = {"complete": "finished (complete)",
                 "budget": "finished (budget)",
                 "partial": "interrupted (partial journal)"}.get(
                     journal["status"], journal["status"])
    elif agg is not None:
        state = "interrupted (event log only)"
    else:
        state = "unknown (no artifacts)"

    budget = None
    if agg is not None and agg["campaign"].get("budget") is not None:
        budget = agg["campaign"]["budget"]
    elif journal is not None:
        budget = journal.get("budget")

    points = agg["points"] if agg is not None else (
        journal["evaluations"] if journal is not None else 0)
    paid = agg["paid"] if agg is not None else (
        journal["paid"] if journal is not None else 0)
    cache_hits = agg["cache_hits"] if agg is not None else (
        journal["cache_hits"] if journal is not None else 0)

    finished = state.startswith("finished")
    fraction = None
    if finished:
        fraction = 1.0
    elif budget:
        fraction = min(1.0, paid / budget)

    points_per_sec = None
    if agg is not None and agg["first_ts"] is not None:
        elapsed = agg["last_ts"] - agg["first_ts"]
        if elapsed > 0 and agg["points"]:
            points_per_sec = round(agg["points"] / elapsed, 3)

    eta_s = None
    if not finished and budget is not None and agg is not None:
        remaining = max(0, budget - paid)
        p50 = agg["recent_wall"]["p50_s"]
        if remaining and p50 > 0:
            lanes = sum(1 for entry in workers
                        if entry["liveness"] == "ok") or 1
            eta_s = round(remaining * p50 / lanes, 3)

    if agg is not None and journal is not None \
            and journal["evaluations"] != agg["points"]:
        warnings.append(
            f"journal trails event log: {journal['evaluations']} "
            f"evaluations on disk vs {agg['points']} points finished "
            f"(the batch in flight is journaled at the next checkpoint)")

    return {
        "directory": os.path.abspath(directory),
        "state": state,
        "now": now,
        "budget": budget,
        "points": points,
        "paid": paid,
        "free": points - paid,
        "cache_hits": cache_hits,
        "cache_hit_rate": (round(cache_hits / points, 4)
                           if points else None),
        "fraction": fraction,
        "points_per_sec": points_per_sec,
        "eta_s": eta_s,
        "events": agg,
        "journal": journal,
        "workers": workers,
        "warnings": warnings,
    }


def _bar(fraction, width: int) -> str:
    if fraction is None:
        return "[" + "?" * width + "]"
    filled = int(round(fraction * width))
    filled = max(0, min(width, filled))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_status(status: dict, width: int = 40) -> str:
    """Human-readable rendering of a :func:`collect_status` snapshot."""
    from ..eval.reporting import render_table
    lines = [f"campaign: {status['directory']}",
             f"state:    {status['state']}"]
    fraction = status["fraction"]
    percent = f"{100.0 * fraction:5.1f}%" if fraction is not None \
        else "    ?%"
    budget = status["budget"]
    burn = (f"{status['paid']}/{budget} paid"
            if budget is not None else f"{status['paid']} paid")
    lines.append(f"progress: {_bar(fraction, width)} {percent}  "
                 f"({burn}, {status['free']} free)")
    figures = [
        ("points finished", status["points"]),
        ("paid (fresh sims)", status["paid"]),
        ("free (cache/replay/repeat)", status["free"]),
        ("cache hits", status["cache_hits"]),
        ("cache hit rate",
         f"{100.0 * status['cache_hit_rate']:.1f}%"
         if status["cache_hit_rate"] is not None else "n/a"),
    ]
    agg = status["events"]
    if agg is not None:
        figures.extend([
            ("batches scheduled", agg["batches"]),
            ("points in flight", agg["inflight"]),
            ("cache stores", agg["cache_stores"]),
            ("events (session/total)",
             f"{agg['events']}/{agg['events_total']}"),
            ("wall p50/p90/p99 (s)",
             "/".join(f"{agg['wall'][key]:.3f}"
                      for key in ("p50_s", "p90_s", "p99_s"))),
        ])
    if status["points_per_sec"] is not None:
        figures.append(("points/sec", status["points_per_sec"]))
    figures.append(("eta (s)",
                    status["eta_s"] if status["eta_s"] is not None
                    else "n/a"))
    lines.append("")
    lines.append(render_table(["field", "value"], figures))
    workers = status["workers"]
    if workers:
        rows = [(entry["pid"], entry["role"], entry["liveness"].upper(),
                 f"{entry['age_s']:.1f}", entry["points"],
                 (entry["current"] or "-")[:12],
                 entry["last_seq"] if entry["last_seq"] is not None
                 else "-")
                for entry in workers]
        lines.append("")
        lines.append(render_table(
            ["pid", "role", "live", "age (s)", "points", "current",
             "seq"], rows))
    for warning in status["warnings"]:
        lines.append(f"warning: {warning}")
    return "\n".join(lines)


def follow(path: str, interval: float = 1.0, timeout: float = None,
           stale_after: float = None, width: int = 40,
           echo=print, sleep=time.sleep, clock=time.time):
    """Poll and print status until the campaign finishes or dies.

    Returns the final snapshot.  ``echo``/``sleep``/``clock`` are
    injectable for tests.  A ``timeout`` (seconds) bounds the watch —
    ``--follow`` in CI must never hang a job.
    """
    deadline = clock() + timeout if timeout is not None else None
    while True:
        status = collect_status(path, stale_after=stale_after)
        echo(render_status(status, width=width))
        state = status["state"]
        if state.startswith(("finished", "dead", "interrupted",
                             "unknown")):
            return status
        if deadline is not None and clock() >= deadline:
            status["warnings"].append(
                f"follow: timeout after {timeout}s with campaign still "
                f"{state}")
            return status
        echo("")
        sleep(interval)
