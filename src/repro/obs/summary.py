"""``repro obs summary`` — utilization/cache/throughput from artifacts.

Answers "where did the time go" without opening Perfetto, from either
artifact the platform leaves behind:

* an ``--obs-trace`` Chrome trace: wall clock and per-category busy
  time come from the ``span.<cat>`` timers embedded in ``otherData``,
  cache and pool ratios from the counters — no span re-walking;
* a campaign ``journal.json``: the ``wall_ms``/``cache_hit`` fields
  each evaluation records (journal v2) attribute campaign time with no
  trace file at all, which is what ``repro explore`` runs in bulk CI
  jobs rely on.

The file kind is sniffed from its top-level keys, so the CLI is just
``repro obs summary <file>`` either way.
"""

from __future__ import annotations

import json

from ..engine.errors import ConfigError


def load_document(path: str) -> dict:
    """Parse a JSON artifact, with CLI-grade error messages."""
    try:
        with open(path) as stream:
            data = json.load(stream)
    except OSError as exc:
        raise ConfigError(f"cannot read {path!r}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"{path!r} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ConfigError(f"{path!r}: expected a JSON object")
    return data


def sniff(document: dict) -> str:
    """``"trace"`` or ``"journal"``; anything else is an error."""
    if "traceEvents" in document:
        return "trace"
    if "evaluations" in document:
        return "journal"
    raise ConfigError(
        "not an --obs-trace file (no 'traceEvents') and not a campaign "
        "journal (no 'evaluations')")


def _ratio(part, whole) -> str:
    if not whole:
        return "n/a"
    return f"{100.0 * part / whole:.1f}%"


def _rate(count, seconds) -> str:
    if seconds <= 0:
        return "n/a"
    return f"{count / seconds:.1f}"


def trace_rows(document: dict) -> list:
    """Summary rows for a validated Chrome trace document."""
    from .schema import SchemaError, validate_trace
    try:
        validate_trace(document)
    except SchemaError as exc:
        raise ConfigError(f"trace failed validation: {exc}")
    spans = [event for event in document["traceEvents"]
             if event.get("ph") == "X"]
    other = document.get("otherData", {})
    counters = other.get("counters", {})
    timers = other.get("timers", {})
    wall_s = max((event["ts"] + event["dur"] for event in spans),
                 default=0.0) / 1e6
    lanes = {event["tid"] for event in spans} or {0}
    points = timers.get("span.point", {}).get("count", 0)
    busy_s = timers.get("span.point", {}).get("total_s", 0.0)
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    builds = counters.get("pool.build", 0)
    resets = counters.get("pool.reset", 0)
    rows = [
        ("wall clock (s)", round(wall_s, 3)),
        ("spans", len(spans)),
        ("lanes", len(lanes)),
        ("points run", points),
        ("points/sec", _rate(points, wall_s)),
        ("point utilization", _ratio(busy_s, wall_s * len(lanes))),
        ("cache hit rate", _ratio(hits, hits + misses)),
        ("cache stores", counters.get("cache.store", 0)),
        ("cache evictions", counters.get("cache.evict", 0)),
        ("pool reuse ratio", _ratio(resets, builds + resets)),
    ]
    for name in sorted(timers):
        if not name.startswith("span."):
            continue
        timer = timers[name]
        rows.append((f"{name[len('span.'):]} time (s)",
                     round(timer["total_s"], 3)))
    return rows


def journal_rows(document: dict) -> list:
    """Summary rows for a campaign journal (wall_ms attribution)."""
    from ..dse.schema import SchemaError, validate_journal
    try:
        validate_journal(document)
    except SchemaError as exc:
        raise ConfigError(f"journal failed validation: {exc}")
    evaluations = document["evaluations"]
    paid = sum(1 for record in evaluations if not record["cached"])
    cache_hits = sum(1 for record in evaluations
                     if record.get("cache_hit", False))
    wall_ms = sum(record.get("wall_ms", 0.0) for record in evaluations)
    wall_s = wall_ms / 1000.0
    return [
        ("status", document["status"]),
        ("evaluations", len(evaluations)),
        ("paid (fresh sims)", paid),
        ("free (cache/replay/repeat)", len(evaluations) - paid),
        ("cache hits", cache_hits),
        ("cache hit rate", _ratio(cache_hits, len(evaluations))),
        ("simulated wall (s)", round(wall_s, 3)),
        ("points/sec (paid)", _rate(paid, wall_s)),
    ]


def render_summary(path: str) -> str:
    """The summary table for a trace or journal file at ``path``."""
    from ..eval.reporting import render_table
    document = load_document(path)
    kind = sniff(document)
    rows = (trace_rows(document) if kind == "trace"
            else journal_rows(document))
    return render_table(["field", "value"], rows,
                        title=f"obs summary ({kind}): {path}")
