"""``repro obs summary`` — utilization/cache/throughput from artifacts.

Answers "where did the time go" without opening Perfetto, from any
artifact the platform leaves behind:

* an ``--obs-trace`` Chrome trace: wall clock and per-category busy
  time come from the ``span.<cat>`` timers embedded in ``otherData``,
  cache and pool ratios from the counters — no span re-walking;
* a campaign ``journal.json``: the ``wall_ms``/``cache_hit`` fields
  each evaluation records (journal v2) attribute campaign time with no
  trace file at all, which is what ``repro explore`` runs in bulk CI
  jobs rely on;
* a campaign ``events.jsonl`` control-plane log: progress, budget burn
  and wall-time percentiles straight from the state transitions.

Detection is shared with ``repro status`` via
:mod:`repro.obs.artifacts`, which also handles the crash case: a
truncated artifact is salvaged back to its largest valid prefix and
summarized with a warning instead of refusing the file — a summary of
what a dead campaign *did* record is exactly when this command matters.
Unsalvageable garbage still fails loudly.
"""

from __future__ import annotations

from ..engine.errors import ConfigError
from .artifacts import load_artifact, sniff_document


def load_document(path: str) -> dict:
    """Parse a JSON artifact strictly, with CLI-grade error messages."""
    kind, payload, _warnings = load_artifact(path)
    if kind == "events":
        raise ConfigError(f"{path!r} is an event log, not a JSON "
                          f"document")
    return payload


def sniff(document: dict) -> str:
    """``"trace"`` or ``"journal"``; anything else is an error."""
    kind = sniff_document(document)
    if kind is None:
        raise ConfigError(
            "not an --obs-trace file (no 'traceEvents') and not a "
            "campaign journal (no 'evaluations')")
    return kind


def _ratio(part, whole) -> str:
    if not whole:
        return "n/a"
    return f"{100.0 * part / whole:.1f}%"


def _rate(count, seconds) -> str:
    if seconds <= 0:
        return "n/a"
    return f"{count / seconds:.1f}"


def trace_rows(document: dict, strict: bool = True) -> list:
    """Summary rows for a Chrome trace document.

    ``strict=False`` (a salvaged truncated trace) skips validation and
    reads every field defensively — report what parsed.
    """
    if strict:
        from .schema import SchemaError, validate_trace
        try:
            validate_trace(document)
        except SchemaError as exc:
            raise ConfigError(f"trace failed validation: {exc}")
    spans = [event for event in document.get("traceEvents", ())
             if isinstance(event, dict) and event.get("ph") == "X"]
    other = document.get("otherData", {}) or {}
    counters = other.get("counters", {}) or {}
    timers = other.get("timers", {}) or {}
    wall_s = max((event.get("ts", 0.0) + event.get("dur", 0.0)
                  for event in spans), default=0.0) / 1e6
    lanes = {event.get("tid", 0) for event in spans} or {0}
    points = timers.get("span.point", {}).get("count", 0)
    busy_s = timers.get("span.point", {}).get("total_s", 0.0)
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    builds = counters.get("pool.build", 0)
    resets = counters.get("pool.reset", 0)
    rows = [
        ("wall clock (s)", round(wall_s, 3)),
        ("spans", len(spans)),
        ("lanes", len(lanes)),
        ("points run", points),
        ("points/sec", _rate(points, wall_s)),
        ("point utilization", _ratio(busy_s, wall_s * len(lanes))),
        ("cache hit rate", _ratio(hits, hits + misses)),
        ("cache stores", counters.get("cache.store", 0)),
        ("cache evictions", counters.get("cache.evict", 0)),
        ("pool reuse ratio", _ratio(resets, builds + resets)),
    ]
    for name in sorted(timers):
        if not name.startswith("span."):
            continue
        timer = timers[name]
        rows.append((f"{name[len('span.'):]} time (s)",
                     round(timer.get("total_s", 0.0), 3)))
    histograms = other.get("histograms", {}) or {}
    point_hist = histograms.get("span.point")
    if isinstance(point_hist, dict):
        from .metrics import Histogram
        summary = Histogram.from_dict(point_hist).summary()
        rows.append(("point p50/p90/p99 (s)",
                     "/".join(f"{summary[key]:.4f}"
                              for key in ("p50_s", "p90_s", "p99_s"))))
    return rows


def journal_rows(document: dict, strict: bool = True) -> list:
    """Summary rows for a campaign journal (wall_ms attribution)."""
    if strict:
        from ..dse.schema import SchemaError, validate_journal
        try:
            validate_journal(document)
        except SchemaError as exc:
            raise ConfigError(f"journal failed validation: {exc}")
    evaluations = [record for record in
                   document.get("evaluations", ())
                   if isinstance(record, dict)]
    paid = sum(1 for record in evaluations if not record.get("cached"))
    cache_hits = sum(1 for record in evaluations
                     if record.get("cache_hit", False))
    wall_ms = sum(record.get("wall_ms", 0.0) for record in evaluations)
    wall_s = wall_ms / 1000.0
    return [
        ("status", document.get("status", "unknown")),
        ("evaluations", len(evaluations)),
        ("paid (fresh sims)", paid),
        ("free (cache/replay/repeat)", len(evaluations) - paid),
        ("cache hits", cache_hits),
        ("cache hit rate", _ratio(cache_hits, len(evaluations))),
        ("simulated wall (s)", round(wall_s, 3)),
        ("points/sec (paid)", _rate(paid, wall_s)),
    ]


def events_rows(records: list) -> list:
    """Summary rows for a control-plane event log."""
    from .status import aggregate_events
    agg = aggregate_events(records)
    finished = agg["finished"]
    status = (finished["status"] if finished is not None
              else "(no campaign_finished — running or killed)")
    wall = agg["wall"]
    return [
        ("status", status),
        ("writer sessions", agg["sessions"]),
        ("events (session/total)",
         f"{agg['events']}/{agg['events_total']}"),
        ("batches scheduled", agg["batches"]),
        ("points finished", agg["points"]),
        ("paid (fresh sims)", agg["paid"]),
        ("free (cache/replay/repeat)", agg["free"]),
        ("cache hits", agg["cache_hits"]),
        ("cache hit rate", _ratio(agg["cache_hits"], agg["points"])),
        ("cache stores", agg["cache_stores"]),
        ("cache evictions", agg["cache_evicts"]),
        ("workers spawned/exited",
         f"{agg['workers_spawned']}/{agg['workers_exited']}"),
        ("paid wall p50/p90/p99 (s)",
         "/".join(f"{wall[key]:.3f}"
                  for key in ("p50_s", "p90_s", "p99_s"))),
    ]


def render_summary(path: str) -> str:
    """The summary table for a trace, journal, or event-log file."""
    from ..eval.reporting import render_table
    kind, payload, warnings = load_artifact(path, tolerant=True)
    if kind == "events":
        rows = events_rows(payload)
    elif kind == "trace":
        rows = trace_rows(payload, strict=not warnings)
    else:
        rows = journal_rows(payload, strict=not warnings)
    out = render_table(["field", "value"], rows,
                       title=f"obs summary ({kind}): {path}")
    for warning in warnings:
        out += f"\nwarning: {warning}"
    return out
