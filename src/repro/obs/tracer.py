"""Nested wall-clock spans over the experiment platform.

A *span* is one timed region of harness execution — a campaign, one
scheduled batch, one scenario point, one phase inside a point — held as
a plain dict so buffers pickle across worker processes and serialize
straight into the Chrome trace-event document
(:meth:`repro.obs.session.ObsSession.trace_document`):

``{"id", "parent", "name", "cat", "start", "end", "track", "args"}``

``start``/``end`` are absolute :func:`time.perf_counter` seconds.  On
the platforms we run on ``perf_counter`` reads a system-wide monotonic
clock, so timestamps recorded in forked pool workers share the parent's
epoch and nest correctly after a merge.  ``track`` is the rendering
lane (0 = the driving process; workers get stable lanes at merge time,
see :meth:`~repro.obs.session.ObsSession.merge_worker`).

The tracer is deliberately dumb: begin pushes, end pops, no locking (one
tracer per process, and the simulator is single-threaded by design).
"""

from __future__ import annotations

import time


class SpanTracer:
    """Per-process span buffer with an open-span stack."""

    def __init__(self) -> None:
        #: Closed spans, in closing order.
        self.spans: list = []
        self._open: list = []
        self.next_id = 0

    def begin(self, name: str, cat: str, args: dict) -> dict:
        """Open a nested span; returns the (mutable) span record."""
        span = {
            "id": self.next_id,
            "parent": self._open[-1]["id"] if self._open else None,
            "name": name,
            "cat": cat,
            "start": time.perf_counter(),
            "end": None,
            "track": 0,
            "args": args,
        }
        self.next_id += 1
        self._open.append(span)
        return span

    def end(self, span: dict) -> float:
        """Close ``span``; returns its duration in seconds.

        Closing out of order (an exception unwound past an inner span)
        force-closes everything opened after ``span`` at the same
        instant, so the buffer never holds a torn stack.
        """
        now = time.perf_counter()
        while self._open:
            open_span = self._open.pop()
            open_span["end"] = now
            self.spans.append(open_span)
            if open_span is span:
                break
        return now - span["start"]

    @property
    def current(self) -> dict:
        """The innermost open span, or ``None`` at top level."""
        return self._open[-1] if self._open else None

    def adopt(self, spans: list) -> None:
        """Append already-closed spans from a worker (ids pre-rebased by
        the session; see ``ObsSession.merge_worker``)."""
        self.spans.extend(spans)

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self.next_id = 0
