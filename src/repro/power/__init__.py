"""Energy (Table II) and area (Table I) models."""

from .area import (
    PAPER_TABLE1,
    TILE_BASE_KGE,
    TileArea,
    base_tile,
    colibri_tile,
    lrscwait_tile,
    system_overhead_kge,
    table1_rows,
)
from .energy import EnergyCoefficients, EnergyModel, EnergyReport

__all__ = [
    "PAPER_TABLE1",
    "TILE_BASE_KGE",
    "TileArea",
    "base_tile",
    "colibri_tile",
    "lrscwait_tile",
    "system_overhead_kge",
    "table1_rows",
    "EnergyCoefficients",
    "EnergyModel",
    "EnergyReport",
]
