"""Analytic area model (reproduces Table I).

Table I reports post-synthesis area of one ``mempool_tile`` (4 cores +
16 banks, GF 22FDX) for every hardware option.  We reproduce it with a
component-level model whose constants are fitted to the published
points, and use the same model to extrapolate the scaling argument of
§III-A (the ideal central queue grows as O(n·log n) *per bank* — a
quadratic system total — while Colibri grows as O(n + 2m)).

Fitted constants (kGE):

* ``TILE_BASE = 691`` — the unmodified tile (Table I row 1).
* LRSCwait_q adapter per bank: ``MONITOR + q·SLOT`` where the two
  published points (q=1 → +99 kGE/tile, q=8 → +174 kGE/tile over 16
  banks) give ``MONITOR = 5.52``, ``SLOT = 0.67``.
* Colibri per tile: ``QNODE`` per core plus per-bank controller
  ``CTRL_BASE + a·HEADTAIL`` for ``a`` tracked addresses; a least-
  squares fit over the four published points (a ∈ {1,2,4,8} → +41, +59,
  +70, +111 kGE) yields a lumped fixed part of 34.6 kGE/tile and
  0.594 kGE per (bank × address).

The published Table I rows are also embedded verbatim
(:data:`PAPER_TABLE1`) so EXPERIMENTS.md can print model-vs-paper.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Unmodified mempool_tile area in kGE (Table I row 1).
TILE_BASE_KGE = 691.0
#: Banks and cores in one mempool_tile.
TILE_BANKS = 16
TILE_CORES = 4

#: LRSCwait_q per-bank constants, fitted to the q=1 and q=8 rows.
LRSCWAIT_MONITOR_KGE = 5.52
LRSCWAIT_SLOT_KGE = 0.67

#: Colibri lumped per-tile fixed part (Qnodes + controller bases) and
#: per-(bank × address) head/tail register cost, least-squares fit.
COLIBRI_FIXED_KGE = 34.6
COLIBRI_PER_BANK_ADDRESS_KGE = 0.594

#: Estimated (not fitted — no published synthesis) per-bank costs of
#: the §II baseline/related-work reservation storage, used by their
#: registered cost-model hooks: MemPool's single slot, one ATUN table
#: entry (address-wide, per core), one GRVI reservation bit (per core).
LRSC_SLOT_KGE = 0.3
LRSC_TABLE_ENTRY_KGE = 0.45
LRSC_BANK_BIT_KGE = 0.012

#: Published Table I (architecture label -> (area kGE, area %)).
PAPER_TABLE1 = {
    "MemPool tile": (691, 100.0),
    "with LRSCwait_1": (790, 116.4),
    "with LRSCwait_8": (865, 127.4),
    "with Colibri 1 address": (732, 105.9),
    "with Colibri 2 addresses": (750, 108.5),
    "with Colibri 4 addresses": (761, 110.1),
    "with Colibri 8 addresses": (802, 116.3),
}


@dataclass(frozen=True)
class TileArea:
    """Area of one tile under a given hardware option."""

    label: str
    kge: float

    @property
    def percent(self) -> float:
        """Relative to the unmodified tile, like Table I's Area[%]."""
        return 100.0 * self.kge / TILE_BASE_KGE


def base_tile() -> TileArea:
    """The unmodified mempool_tile."""
    return TileArea("MemPool tile", TILE_BASE_KGE)


def lrscwait_tile(queue_slots: int, banks: int = TILE_BANKS) -> TileArea:
    """Tile area with a centralized LRSCwait_q adapter per bank.

    ``queue_slots = num_cores`` gives the *ideal* design the paper
    calls "physically infeasible for a system of MemPool's scale".
    """
    adapter = LRSCWAIT_MONITOR_KGE + queue_slots * LRSCWAIT_SLOT_KGE
    return TileArea(f"with LRSCwait_{queue_slots}",
                    TILE_BASE_KGE + banks * adapter)


def colibri_tile(num_addresses: int, banks: int = TILE_BANKS) -> TileArea:
    """Tile area with Colibri (Qnodes + head/tail pairs per bank)."""
    extra = (COLIBRI_FIXED_KGE
             + banks * num_addresses * COLIBRI_PER_BANK_ADDRESS_KGE)
    plural = "address" if num_addresses == 1 else "addresses"
    return TileArea(f"with Colibri {num_addresses} {plural}",
                    TILE_BASE_KGE + extra)


def variant_overhead_kge(variant, num_cores: int,
                         banks: int = TILE_BANKS,
                         cores: int = TILE_CORES) -> float:
    """Per-tile added kGE of a :class:`~repro.memory.variants.
    VariantSpec`, through its registered plugin's cost-model hook.

    ``num_cores`` is the *system* core count: reservation storage that
    scales with it (per-core tables, the ideal queue) is what the
    §III-A scaling argument quantifies.
    """
    from ..memory.variants import get_variant
    plugin = get_variant(variant.kind)
    return plugin.tile_area_kge(variant.resolved(num_cores), num_cores,
                                banks=banks, cores=cores)


#: Legacy ``system_overhead_kge`` kind spellings -> variant parameters.
_LEGACY_KINDS = {
    "lrscwait_ideal": ("lrscwait", "queue_slots", None),
    "lrscwait": ("lrscwait", "queue_slots", "queue_slots"),
    "colibri": ("colibri", "num_addresses", "num_addresses"),
}


def system_overhead_kge(num_cores: int, kind: str,
                        queue_slots: int = 8,
                        num_addresses: int = 4) -> float:
    """Total added kGE for a whole system of ``num_cores`` (scaling
    curves for the §III-A argument; 4 cores and 16 banks per tile).

    ``kind`` names any registered variant, evaluated at its default
    parameters, plus the legacy spellings: ``"lrscwait_ideal"`` sizes
    every bank's queue for all cores (the O(n²) design), ``"lrscwait"``
    uses fixed ``queue_slots``, ``"colibri"`` uses ``num_addresses``
    head/tail pairs per bank.  Unknown kinds raise
    :class:`~repro.memory.variants.UnknownVariantError` (a
    :class:`~repro.engine.errors.ConfigError`), so CLI paths exit 2
    like every other bad-input error.
    """
    from ..memory.variants import VariantSpec
    arguments = {"queue_slots": queue_slots, "num_addresses": num_addresses}
    if kind in _LEGACY_KINDS:
        name, param, source = _LEGACY_KINDS[kind]
        value = None if source is None else arguments[source]
        variant = VariantSpec(name, **{param: value})
    else:
        variant = VariantSpec(kind=kind)     # UnknownVariantError here
    tiles = num_cores // TILE_CORES
    return tiles * variant_overhead_kge(variant, num_cores)


def table1_rows() -> list:
    """The model's reproduction of every Table I row, in paper order."""
    return [
        base_tile(),
        lrscwait_tile(1),
        lrscwait_tile(8),
        colibri_tile(1),
        colibri_tile(2),
        colibri_tile(4),
        colibri_tile(8),
    ]
