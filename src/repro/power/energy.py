"""Event-based energy model (reproduces Table II).

The paper measures power from post-layout gate-level simulation in
GF 22FDX at TT/0.80 V/25 °C, 600 MHz.  We cannot synthesize gates, but
the *differences* Table II reports are driven by event counts the
behavioural simulator produces exactly: retry traffic, polling cycles
vs. sleep cycles, bank accesses and network hops.  The model therefore
prices each event class with a coefficient and sums:

``E = Σ_core (active·e_act + stall·e_stall + sleep·e_sleep)
    + accesses·e_bank + hops·e_hop``

Coefficient calibration (documented so it can be audited):

* A MemPool tile in 22FDX runs ~175 mW at 600 MHz for the Atomic Add
  workload (Table II) over 256 cores ⇒ ≈ 1.1 pJ per core-cycle overall.
  We split that into an active-core share (``e_active = 0.9 pJ``,
  Snitch-class core + local icache activity) and infrastructure shares
  folded into the bank/hop prices.
* An SRAM access of a small 1 KiB bank in 22FDX costs single-digit pJ
  (``e_bank = 6 pJ``); a hierarchical-crossbar stage toggles roughly
  ``e_hop = 1.5 pJ`` per word-wide message per stage.
* A clock-gated sleeping core leaks ~5 % of its active power
  (``e_sleep = 0.05 pJ``); a stalled-but-clocked core waiting on a
  response burns ~30 % (``e_stall = 0.3 pJ``).

Absolute pJ/op numbers land in the right decade; the Table II *ratios*
(LRSC ≈ 7× Colibri, AMO-lock ≈ 9× Colibri) emerge from simulated
behaviour, not from the coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.stats import SimStats


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energy prices in picojoules."""

    active_cycle_pj: float = 0.9
    stall_cycle_pj: float = 0.3
    sleep_cycle_pj: float = 0.05
    bank_access_pj: float = 6.0
    hop_pj: float = 1.5

    @classmethod
    def gf22fdx(cls) -> "EnergyCoefficients":
        """The calibrated default (see module docstring)."""
        return cls()


@dataclass
class EnergyReport:
    """Energy breakdown of one simulation run."""

    total_pj: float
    core_pj: float
    bank_pj: float
    network_pj: float
    ops: int
    cycles: int
    num_cores: int
    #: Energy the atomic variant's own machinery charged through its
    #: :meth:`~repro.memory.variants.AtomicVariant.adapter_energy_pj`
    #: hook (0.0 for the built-ins: their adapter activity is folded
    #: into the calibrated coefficients above).
    adapter_pj: float = 0.0

    @property
    def pj_per_op(self) -> float:
        """Energy per retired application operation (Table II column)."""
        if self.ops == 0:
            return float("inf")
        return self.total_pj / self.ops

    def power_mw(self, freq_hz: float = 600e6) -> float:
        """Average power at the given clock (Table II's Power column)."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / freq_hz
        return self.total_pj * 1e-12 / seconds * 1e3

    def relative_to(self, baseline: "EnergyReport") -> float:
        """Δ column of Table II: energy/op vs. a baseline (1.0 = equal)."""
        return self.pj_per_op / baseline.pj_per_op


class EnergyModel:
    """Applies :class:`EnergyCoefficients` to a run's statistics."""

    def __init__(self, coefficients: EnergyCoefficients = None) -> None:
        self.coefficients = coefficients or EnergyCoefficients.gf22fdx()

    def evaluate(self, stats: SimStats, variant=None) -> EnergyReport:
        """Compute the energy breakdown of a finished run.

        ``variant`` (a :class:`~repro.memory.variants.VariantSpec`)
        lets the run's atomic variant charge its own machinery through
        its registered ``adapter_energy_pj`` cost-model hook; it
        defaults to the variant the :class:`~repro.machine.Machine`
        recorded on ``stats``.  Built-in variants charge nothing, so
        their numbers are unchanged by the hook.
        """
        coeff = self.coefficients
        core_pj = (stats.total_active_cycles * coeff.active_cycle_pj
                   + stats.total_stalled_cycles * coeff.stall_cycle_pj
                   + stats.total_sleep_cycles * coeff.sleep_cycle_pj)
        bank_pj = sum(b.accesses for b in stats.banks) * coeff.bank_access_pj
        network_pj = stats.network.hops * coeff.hop_pj
        if variant is None:
            variant = getattr(stats, "variant", None)
        adapter_pj = 0.0
        if variant is not None:
            from ..memory.variants import get_variant
            plugin = get_variant(variant.kind)
            adapter_pj = plugin.adapter_energy_pj(
                variant.resolved(len(stats.cores)), stats)
        return EnergyReport(
            total_pj=core_pj + bank_pj + network_pj + adapter_pj,
            core_pj=core_pj,
            bank_pj=bank_pj,
            network_pj=network_pj,
            ops=stats.total_ops,
            cycles=stats.cycles,
            num_cores=len(stats.cores),
            adapter_pj=adapter_pj)
