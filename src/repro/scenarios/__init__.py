"""Declarative scenario API.

A :class:`ScenarioSpec` fully describes one experiment point — system
shape, atomic-unit variant, a registered workload with parameters, run
mode, and seed — and is plain serializable data, so a spec alone
reproduces a measurement::

    from repro.scenarios import default_spec, run_scenario

    spec = default_spec("histogram", num_cores=16).with_params(bins=4)
    result = run_scenario(spec)
    print(result.cycles, result.throughput, spec.stable_hash()[:12])

Workloads register by name (:func:`register_workload`); the paper's
kernels are built in and ``examples/custom_scenario.py`` shows a user
registration.  The figure/table runners in :mod:`repro.eval` are thin
spec factories on top of this package, and the ``repro run / list /
sweep`` CLI drives it directly.
"""

from .registry import (
    LoadedWorkload,
    UnknownWorkloadError,
    Workload,
    WorkloadSpec,
    get_workload,
    list_workloads,
    register_workload,
    unregister_workload,
)
from .run import (
    METRICS,
    ScenarioResult,
    apply_settings,
    build_machine,
    default_spec,
    run_scenario,
    run_scenarios,
    sweep,
)
from .spec import (
    RUN_MODES,
    ScenarioSpec,
    merge_variant_params,
    parse_variant,
    shape_from_config,
    variant_string,
)

# Importing the module registers the built-in workloads; it must come
# after the submodule imports above (it reaches back into them).
from . import workloads as _builtin_workloads  # noqa: E402,F401
from .workloads import interference_spec

__all__ = [
    "LoadedWorkload",
    "METRICS",
    "RUN_MODES",
    "ScenarioResult",
    "ScenarioSpec",
    "UnknownWorkloadError",
    "Workload",
    "WorkloadSpec",
    "apply_settings",
    "build_machine",
    "default_spec",
    "get_workload",
    "interference_spec",
    "list_workloads",
    "merge_variant_params",
    "parse_variant",
    "register_workload",
    "run_scenario",
    "run_scenarios",
    "shape_from_config",
    "sweep",
    "unregister_workload",
    "variant_string",
]
