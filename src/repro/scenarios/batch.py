"""Batched scenario execution: many specs through warm machines.

The sequential path (:func:`~repro.scenarios.run.run_scenarios`) pays
``build_machine`` for every point.  A campaign at smoke fidelity spends
a large share of its wall clock there: the runs are tiny by design,
the machines are not.  This module drains a list of specs through one
process, grouping them by :func:`machine_key` — the fields that
determine the constructed machine: shape, canonical variant string,
seed — and reusing one warm machine per group via the engine-level
:class:`~repro.engine.batch.BatchRunner` pool.

Correctness contract (golden-tested in ``tests/scenarios/test_batch.py``):

* results are **bit-identical** to the sequential path, ``stats``
  included (each result carries a deep copy, because the pooled
  machine's counter tree is recycled by the next point);
* composite workloads that override ``Workload.run`` (e.g.
  ``interference``, which measures across several machines) fall back
  to their own ``run`` — correct, just not warm;
* machines whose adapters are not
  :attr:`~repro.memory.adapter.AtomicAdapter.RESETTABLE` are rebuilt
  per point instead of reset (the pool handles this automatically).

Use it through ``run_scenarios(..., batch=True)`` /
``sweep(..., batch=True)`` / ``Campaign(..., batch=True)`` — or the
``--batch`` flag of ``repro sweep`` and ``repro explore`` — which keep
the ResultCache interaction of the sequential path unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..engine.batch import BatchRunner
from ..obs import OBS
from .registry import Workload, get_workload
from .run import build_machine, execute
from .spec import ScenarioSpec, variant_string


def machine_key(spec: ScenarioSpec) -> tuple:
    """The machine-equivalence class of a spec.

    Two specs with equal keys build interchangeable machines: same
    shape (core/bank geometry, latency table), same *materialized*
    variant (the canonical string, so ``lrscwait:half`` at 8 cores and
    ``lrscwait:4`` share a machine) and same seed (the per-core RNG
    streams are seeded at construction).  Workload and params are
    deliberately absent — kernels are loaded per point.
    """
    return (spec.num_cores, spec.cores_per_tile, spec.banks_per_tile,
            spec.words_per_bank, spec.num_groups, spec.latency,
            variant_string(spec.variant_spec()), spec.seed)


def execute_batch(specs: Sequence[ScenarioSpec]) -> list:
    """Run specs in order through warm machines; results align with input.

    This is the single-process kernel behind
    ``run_scenarios(..., batch=True)``: cache bookkeeping stays with the
    caller, so every spec passed here is actually simulated.
    """
    runner = BatchRunner()
    results = []
    events = OBS.events
    monitor = OBS.heartbeat
    for spec in specs:
        workload = get_workload(spec.workload)
        if events is not None or monitor is not None:
            spec_hash = spec.stable_hash()
            if events is not None:
                events.emit("point_started", spec_hash=spec_hash,
                            workload=spec.workload)
            if monitor is not None:
                monitor.point_started(
                    spec_hash, last_seq=(events.last_seq
                                         if events is not None else None))
        with OBS.span(spec.workload, cat="point", variant=spec.variant,
                      cores=spec.num_cores):
            if type(workload).run is not Workload.run:
                # Composite measurement (its own machines, its own rules).
                results.append(workload.run(spec))
            else:
                with OBS.span("acquire", cat="phase"):
                    machine = runner.acquire(machine_key(spec),
                                             lambda s=spec: build_machine(s))
                result = execute(workload, spec, machine=machine)
                if result.stats is machine.stats:
                    # The pooled machine recycles its counter tree on the
                    # next acquire; detach a snapshot so the result stays
                    # immutable.
                    result = dataclasses.replace(
                        result, stats=result.stats.snapshot())
                results.append(result)
        if monitor is not None:
            monitor.point_finished(
                last_seq=events.last_seq if events is not None else None)
    return results
