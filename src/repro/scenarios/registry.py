"""The workload registry.

A *workload* packages everything a :class:`~repro.scenarios.spec.
ScenarioSpec` needs beyond the machine itself: default parameters,
kernel construction, verification, and result extraction.  Workloads
register under a name with the :func:`register_workload` decorator::

    @register_workload("histogram")
    class HistogramWorkload(Workload):
        params = {"bins": 16, "updates_per_core": 8}
        def load(self, machine, spec):
            ...
            return LoadedWorkload(verify=..., finish=...)

and are looked up by :func:`get_workload` when a spec runs.  User code
registers its own workloads exactly the same way (see
``examples/custom_scenario.py``); nothing distinguishes built-ins.

:class:`WorkloadSpec` is the structural protocol a registered class
must satisfy; :class:`Workload` is the convenience base class that
implements the common run template (build machine → load → run mode →
verify → collect) so most workloads only write :meth:`Workload.load`.
Composite experiments that need full control of execution (e.g. the
paired baseline/interfered interference measurement) override
:meth:`Workload.run` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from ..engine.errors import ConfigError


class UnknownWorkloadError(ConfigError):
    """A spec named a workload that is not registered."""


@dataclass
class LoadedWorkload:
    """What :meth:`Workload.load` hands back to the run template.

    * ``watched`` — core ids whose completion ends a ``mode="watched"``
      run (``None`` if the workload does not support that mode);
    * ``verify`` — correctness check, called after completion runs
      (horizon/watched runs freeze kernels mid-flight, so invariants
      that assume full completion are skipped there);
    * ``finish`` — ``finish(stats) -> (point, metrics)`` builds the
      workload's native result object (may be ``None``) plus a dict of
      scalar metrics for generic rendering.
    """

    watched: Optional[Sequence[int]] = None
    verify: Optional[Callable[[], None]] = None
    finish: Optional[Callable] = None


@runtime_checkable
class WorkloadSpec(Protocol):
    """Structural interface of a registered workload."""

    name: str
    description: str
    #: Default workload parameters; spec ``params`` must be a subset.
    params: dict

    def load(self, machine, spec) -> LoadedWorkload:
        """Allocate data, attach kernels; return the run hooks."""
        ...

    def run(self, spec):
        """Execute the spec end-to-end, returning a ScenarioResult."""
        ...


class Workload:
    """Base class implementing the standard scenario run template."""

    name: str = ""
    description: str = ""
    #: Default workload parameters (every legal param key appears here).
    params: dict = {}
    #: Spec-level field defaults for :func:`default_spec` (e.g. a
    #: workload that wants an odd tile shape or a specific variant).
    spec_defaults: dict = {}
    #: Tiny overrides (spec fields or params) for CI smoke runs.
    smoke: dict = {}
    #: Names of the extra scalar metrics this workload's ``finish``
    #: attaches to every result (beyond the universal scalars and the
    #: named ``METRICS`` extractors).  Declarative so consumers that
    #: must fail fast — the DSE campaign validates objective metrics
    #: before paying for a single simulation — can know the full
    #: metric vocabulary without running anything.
    extra_metrics: tuple = ()

    def resolve_params(self, spec) -> dict:
        """Defaults merged with the spec's overrides; rejects unknowns."""
        overrides = spec.params_dict()
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ConfigError(
                f"unknown params {unknown} for workload {self.name!r}; "
                f"accepted: {sorted(self.params)}")
        merged = dict(self.params)
        merged.update(overrides)
        return merged

    def load(self, machine, spec) -> LoadedWorkload:
        raise NotImplementedError(
            f"workload {self.name!r} does not implement load()")

    def run(self, spec):
        from .run import execute                  # late: avoid cycle
        return execute(self, spec)


#: name -> workload instance.
_REGISTRY: dict = {}


def register_workload(name: str, *, replace: bool = False):
    """Class decorator registering a workload under ``name``.

    The class is instantiated once at registration (workloads are
    stateless — per-run state lives in :meth:`Workload.load` closures).
    Re-registering an existing name raises unless ``replace=True``,
    which user code can use to shadow a built-in deliberately.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"workload name must be a non-empty string, "
                          f"got {name!r}")

    def decorator(cls):
        if name in _REGISTRY and not replace:
            raise ConfigError(
                f"workload {name!r} already registered "
                f"({type(_REGISTRY[name]).__name__}); "
                f"pass replace=True to shadow it")
        instance = cls()
        instance.name = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_workload(name: str) -> None:
    """Remove a registration (mainly for tests tearing down fixtures)."""
    _REGISTRY.pop(name, None)


def get_workload(name: str):
    """The registered workload instance, or :class:`UnknownWorkloadError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"no workload registered under {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY)) or '(none)'}")


def list_workloads() -> list:
    """``(name, workload)`` pairs, sorted by name."""
    return sorted(_REGISTRY.items())
