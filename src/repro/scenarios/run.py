"""Executing scenario specs.

The spec layer's verbs:

* :func:`build_machine` — the :class:`~repro.machine.Machine` a spec
  describes (shape + variant + seed), with no kernels loaded;
* :func:`run_scenario` — one spec to one :class:`ScenarioResult`;
* :func:`run_scenarios` — many independent specs, sharded across a
  worker pool exactly like the figure sweeps (deterministic: results
  are identical for any ``jobs`` value) and memoized in a
  :class:`~repro.eval.runner.ResultCache` keyed by
  :meth:`~repro.scenarios.spec.ScenarioSpec.stable_hash`;
* :func:`sweep` — the cartesian product of axis overrides applied to a
  base spec (the engine behind ``repro sweep``).

``METRICS`` names the stat extractors a spec may request in its
``metrics`` field; workloads attach their own extras on top.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..engine.errors import ConfigError
from ..machine import Machine
from ..obs import OBS
from ..power.energy import EnergyModel
from .registry import get_workload
from .spec import ScenarioSpec

#: Metric name -> extractor over a finished run's SimStats.  These are
#: the scalars a spec can ask for by name in ``ScenarioSpec.metrics``.
METRICS = {
    "cycles": lambda stats: stats.cycles,
    "throughput": lambda stats: stats.throughput,
    "messages": lambda stats: stats.network.total_messages,
    "hops": lambda stats: stats.network.hops,
    "ingress_wait_cycles": lambda stats: stats.network.ingress_wait_cycles,
    "ops": lambda stats: sum(c.ops_completed for c in stats.cores),
    "sc_failures": lambda stats: stats.total_sc_failures,
    "wait_rejections": lambda stats: sum(c.wait_rejections
                                         for c in stats.cores),
    "sleep_cycles": lambda stats: stats.total_sleep_cycles,
    "active_cycles": lambda stats: stats.total_active_cycles,
    "energy_pj_per_op": lambda stats: EnergyModel().evaluate(stats).pj_per_op,
    "power_mw": lambda stats: EnergyModel().evaluate(stats).power_mw(),
}

#: Spec-level keys (and CLI aliases) recognized by ``apply_settings``;
#: anything else routes to the workload's params.
_SPEC_FIELD_ALIASES = {
    "cores": "num_cores",
    "num_cores": "num_cores",
    "cores_per_tile": "cores_per_tile",
    "banks_per_tile": "banks_per_tile",
    "words_per_bank": "words_per_bank",
    "num_groups": "num_groups",
    "variant": "variant",
    "mode": "mode",
    "horizon": "horizon",
    "seed": "seed",
    "metrics": "metrics",
}


@dataclass
class ScenarioResult:
    """One executed scenario point.

    ``point`` carries the workload's native result object when it has
    one (:class:`~repro.eval.points.HistogramPoint`,
    :class:`~repro.eval.points.QueuePoint`, ...), which is how the
    figure runners stay bit-identical to their pre-spec selves.
    ``stats`` is the full counter set for diagnostics; it is ``None``
    for composite workloads that run several machines *and on results
    served from a cache* — the per-core/per-bank lists dwarf the
    scalars the runners actually consume, so only ``point``/``metrics``
    persist (see :func:`run_scenarios`).
    """

    spec: ScenarioSpec
    cycles: int
    throughput: float
    messages: int
    active_cycles: int
    sleep_cycles: int
    metrics: dict = field(default_factory=dict)
    point: object = None
    stats: object = None
    #: :class:`~repro.telemetry.report.TelemetryReport` when the run was
    #: probed (see :func:`run_scenario`); never persisted in caches.
    telemetry: object = None

    def scalars(self) -> dict:
        """Headline numbers + extras, for tables and JSON output."""
        merged = {
            "cycles": self.cycles,
            "throughput": self.throughput,
            "messages": self.messages,
            "active_cycles": self.active_cycles,
            "sleep_cycles": self.sleep_cycles,
        }
        merged.update(self.metrics)
        return merged


def build_machine(spec: ScenarioSpec, **machine_kwargs) -> Machine:
    """The machine a spec describes (no kernels loaded yet)."""
    return Machine(spec.system_config(), spec.variant_spec(),
                   seed=spec.seed, **machine_kwargs)


class _ProbeRequest:
    """Probes queued by :func:`run_scenario` for the next template run.

    Threading a ``probes`` argument through every registered workload's
    ``run`` would break third-party workload signatures, so the request
    rides a module-level stack instead: :func:`execute` (the standard
    template) consumes it when it builds the machine.  Composite
    workloads that bypass the template never consume it, which
    :func:`run_scenario` turns into a clear error.
    """

    def __init__(self, probes) -> None:
        self.probes = list(probes)
        self.consumed = False

    def take(self) -> list:
        self.consumed = True
        return self.probes


_PROBE_STACK: list = []


def execute(workload, spec: ScenarioSpec,
            machine: Machine = None) -> ScenarioResult:
    """The standard run template shared by every non-composite workload.

    ``machine`` lets the batch runner supply a warm (freshly reset)
    machine instead of paying ``build_machine`` per point; it must be
    equivalent to ``build_machine(spec)`` or results will differ.
    """
    with OBS.span("build", cat="phase"):
        if machine is None:
            machine = build_machine(spec)
        loaded = workload.load(machine, spec)
        request = _PROBE_STACK[-1] if _PROBE_STACK else None
        probes = (machine.attach_probes(request.take())
                  if request is not None and not request.consumed else [])
    with OBS.span("run", cat="phase"):
        if spec.mode == "completion":
            stats = machine.run()
        elif spec.mode == "horizon":
            stats = machine.run_for(spec.horizon)
        else:  # watched
            if loaded.watched is None:
                raise ConfigError(
                    f"workload {spec.workload!r} provides no watched "
                    f"cores; mode='watched' is not available for it")
            stats = machine.run_until_finished(loaded.watched)
    with OBS.span("collect-stats", cat="phase"):
        if spec.mode == "completion" and loaded.verify is not None:
            loaded.verify()
        point, extra = (loaded.finish(stats) if loaded.finish is not None
                        else (None, {}))
        metrics = dict(extra)
        for name in spec.metrics:
            metrics[name] = METRICS[name](stats)
        telemetry = None
        if probes:
            from ..telemetry.report import TelemetryReport
            telemetry = TelemetryReport.collect(machine, probes, spec=spec)
    return ScenarioResult(
        spec=spec,
        cycles=stats.cycles,
        throughput=stats.throughput,
        messages=stats.network.total_messages,
        active_cycles=stats.total_active_cycles,
        sleep_cycles=stats.total_sleep_cycles,
        metrics=metrics,
        point=point,
        stats=stats,
        telemetry=telemetry)


def _execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Module-level entry for pool workers (picklable by name)."""
    events = OBS.events
    monitor = OBS.heartbeat
    if events is not None or monitor is not None:
        spec_hash = spec.stable_hash()
        if events is not None:
            events.emit("point_started", spec_hash=spec_hash,
                        workload=spec.workload)
        if monitor is not None:
            monitor.point_started(
                spec_hash,
                last_seq=events.last_seq if events is not None else None)
    with OBS.span(spec.workload, cat="point", variant=spec.variant,
                  cores=spec.num_cores):
        result = get_workload(spec.workload).run(spec)
    if monitor is not None:
        monitor.point_finished(
            last_seq=events.last_seq if events is not None else None)
    return result


def scenario_cache_key(spec: ScenarioSpec) -> str:
    """The :class:`~repro.eval.runner.ResultCache` hash key of a spec.

    Exposed so schedulers layered on top (the DSE campaign engine) can
    ask "would this point be a cache hit?" — e.g. to charge zero budget
    for it — using exactly the key :func:`run_scenarios` will use.
    """
    return "scenario\x1f" + spec.stable_hash()


_cache_key = scenario_cache_key


def run_scenario(spec: ScenarioSpec, jobs: int = 1,
                 cache=None, probes=None) -> ScenarioResult:
    """Run one spec; ``jobs`` is accepted for interface symmetry with
    :func:`run_scenarios` (a single point always runs in-process).

    ``probes`` attaches telemetry probes (registered names or
    :class:`~repro.telemetry.probes.Probe` instances) to the run; the
    collected :class:`~repro.telemetry.report.TelemetryReport` arrives
    as ``result.telemetry``.  Probed runs always simulate fresh and
    in-process — telemetry is a diagnostic of *this* execution, so the
    result cache is deliberately bypassed and never polluted with probe
    data.  Only workloads using the standard run template support
    probes; composites (e.g. ``interference``) raise
    :class:`~repro.engine.errors.ConfigError`.
    """
    if probes:
        spec.validate()
        request = _ProbeRequest(probes)
        _PROBE_STACK.append(request)
        try:
            result = get_workload(spec.workload).run(spec)
        finally:
            _PROBE_STACK.pop()
        if not request.consumed:
            raise ConfigError(
                f"workload {spec.workload!r} runs outside the standard "
                f"template (composite measurement) and does not support "
                f"telemetry probes")
        return result
    return run_scenarios([spec], jobs=jobs, cache=cache)[0]


def run_scenarios(specs: Sequence[ScenarioSpec], jobs: int = 1,
                  cache=None, batch: bool = False) -> list:
    """Run independent specs, in order, optionally sharded and cached.

    Results come back aligned with ``specs`` and are identical for any
    ``jobs`` value (each scenario is a pure function of its spec).
    ``cache`` is a :class:`~repro.eval.runner.ResultCache`; entries are
    keyed by :meth:`ScenarioSpec.stable_hash` (plus the cache's source
    fingerprint), so editing a spec re-simulates exactly that point.

    With ``jobs > 1`` the worker processes re-import the registry, so
    only *importable* workloads resolve there: built-ins always do;
    workloads registered ad hoc in the driving process (e.g. inside a
    script's ``main``) must run with ``jobs=1``.

    ``batch=True`` drains all cache-missing points through the warm
    batched core (:mod:`repro.scenarios.batch`): one process, machines
    grouped by shape/variant/seed and *reset* between points instead of
    rebuilt.  Results are bit-identical to the sequential path and the
    cache interaction is unchanged.  Batch execution is single-process
    by construction, so it is incompatible with ``jobs != 1``.

    Cached entries are stored without ``stats`` (the bulky diagnostic
    counters); every other field of a cache-served result is identical
    to the freshly-simulated one.
    """
    from ..eval.runner import ExperimentCall, run_experiments
    if batch and jobs != 1:
        raise ConfigError(
            f"batch execution runs all points in one warm process and is "
            f"incompatible with jobs={jobs!r}; drop --jobs or --batch")
    specs = list(specs)
    for spec in specs:
        spec.validate()
    miss = object()
    results: list = [None] * len(specs)
    pending = []
    if cache is not None:
        for index, spec in enumerate(specs):
            hit = cache.lookup_hash(_cache_key(spec), miss)
            if hit is miss:
                pending.append((index, spec))
            else:
                results[index] = hit
    else:
        pending = list(enumerate(specs))
    if not pending:
        if cache is not None:
            cache.flush_counters()
        return results
    if batch:
        from .batch import execute_batch
        computed = execute_batch([spec for _index, spec in pending])
    else:
        calls = [ExperimentCall(_execute_spec, (spec,))
                 for _index, spec in pending]
        computed = run_experiments(calls, jobs=jobs)
    for (index, spec), result in zip(pending, computed):
        results[index] = result
        if cache is not None:
            # stats and telemetry are the bulky diagnostics; cached
            # entries keep only the scalars/point a sweep consumes.
            cache.store_hash(_cache_key(spec),
                             dataclasses.replace(result, stats=None,
                                                 telemetry=None))
    if cache is not None:
        cache.flush_counters()
    return results


def run_spec_grid(rows: Sequence[tuple], columns: Sequence,
                  make_spec: Callable, jobs: int = 1,
                  cache=None) -> dict:
    """Run a labelled grid of specs; returns ``{label: [result/column]}``.

    ``rows`` is ``[(label, row_spec), ...]`` and ``make_spec(row_spec,
    column)`` builds the :class:`ScenarioSpec` for one point — the
    spec-level analogue of :func:`repro.eval.runner.run_grid`, shared
    by the figure sweeps so the label/column bookkeeping lives once.
    """
    rows = list(rows)
    columns = list(columns)
    specs = [make_spec(row_spec, column)
             for _label, row_spec in rows for column in columns]
    results = run_scenarios(specs, jobs=jobs, cache=cache)
    grid: dict = {}
    for index, (label, _row_spec) in enumerate(rows):
        start = index * len(columns)
        grid[label] = results[start:start + len(columns)]
    return grid


def default_spec(workload_name: str, **overrides) -> ScenarioSpec:
    """The registered workload's default spec, plus field overrides."""
    workload = get_workload(workload_name)
    fields = dict(workload.spec_defaults)
    fields.update(overrides)
    return ScenarioSpec(workload=workload_name, **fields)


def apply_settings(spec: ScenarioSpec, settings: dict) -> ScenarioSpec:
    """Layer ``key=value`` overrides onto a spec.

    Keys naming spec fields (``cores``/``num_cores``, ``variant``,
    ``seed``, ``mode``, ``horizon``, shape fields, ``metrics``) update
    the spec; ``variant.<param>`` keys rewrite one parameter of the
    spec's variant string (any registered variant's schema, see
    :func:`~repro.scenarios.spec.merge_variant_params`); every other
    key becomes a workload parameter override — unknown parameters are
    rejected when the spec validates.
    """
    spec_updates = {}
    variant_params = {}
    params = {}
    for key, value in settings.items():
        if key.startswith("variant.") and len(key) > len("variant."):
            variant_params[key[len("variant."):]] = value
            continue
        target = _SPEC_FIELD_ALIASES.get(key)
        if target == "metrics" and isinstance(value, str):
            value = tuple(name.strip() for name in value.split(",")
                          if name.strip())
        if target is not None:
            spec_updates[target] = value
        else:
            params[key] = value
    if variant_params:
        # Parameter overrides apply on top of a same-call ``variant``
        # key, so {"variant": "ticket", "variant.addresses": 8} works.
        from .spec import merge_variant_params
        base_variant = spec_updates.get("variant", spec.variant)
        spec_updates["variant"] = merge_variant_params(base_variant,
                                                       variant_params)
    if spec_updates:
        # replace(), not override(): an explicit ``field=none`` setting
        # must reset optional fields rather than be silently dropped.
        spec = dataclasses.replace(spec, **spec_updates)
    if params:
        spec = spec.with_params(**params)
    return spec


def sweep(base: ScenarioSpec, axes: dict, jobs: int = 1,
          cache=None, batch: bool = False) -> list:
    """Cartesian sweep over axis overrides; ``[(overrides, result)]``.

    ``axes`` maps setting keys (spec fields or workload params, as in
    :func:`apply_settings`) to value lists.  Points run through
    :func:`run_scenarios`, so they shard and cache like any sweep —
    or, with ``batch=True``, drain through the warm batched core.
    """
    if not axes:
        raise ConfigError("sweep needs at least one axis")
    keys = list(axes)
    combos = [dict(zip(keys, values))
              for values in itertools.product(*(axes[k] for k in keys))]
    specs = [apply_settings(base, combo) for combo in combos]
    results = run_scenarios(specs, jobs=jobs, cache=cache, batch=batch)
    return list(zip(combos, results))
