"""Declarative experiment specifications.

A :class:`ScenarioSpec` is the complete, serializable description of
one simulated experiment point: the system shape, the atomic-unit
variant, a registered workload with its parameters, the run mode, and
the seed.  A spec alone reproduces a measurement — it round-trips
through ``to_dict``/``from_dict`` (e.g. to JSON on disk, a CLI
invocation, or a remote worker) and :meth:`ScenarioSpec.stable_hash`
gives a process-independent identity used as the result-cache key.

Variants are encoded as short strings so the whole spec stays plain
data.  The grammar is open — any registered
:class:`~repro.memory.variants.AtomicVariant` parses — with two
argument forms::

    "<name>"                       # e.g. "amo", "colibri", "ticket"
    "<name>:<value>"               # positional parameter shorthand
    "<name>:key=val[,key=val...]"  # explicit parameters

Values are integers or symbolic tokens (``half``/``cores``/``ideal``)
resolved against the system's core count.  The paper's spellings all
still parse (and hash) exactly as before::

    "colibri"          # 4 tracked addresses (the paper's default)
    "colibri:8"        # 8 tracked addresses
    "lrscwait:1"       # bounded reservation queue, 1 slot
    "lrscwait:half"    # num_cores // 2 slots (the paper's 128@256)
    "lrscwait:ideal"   # one slot per core
    "lrsc_backoff:cap=128"  # a registered extra variant, keyed form

:func:`parse_variant` materializes the string for a concrete system
size (``half`` depends on ``num_cores``); :func:`variant_string` is the
inverse used by the spec factories that wrap the pre-existing
figure/table runners, and :func:`merge_variant_params` layers parameter
overrides (the ``variant.<param>`` setting keys) onto a string.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from ..arch.config import LatencyConfig, SystemConfig
from ..engine.errors import ConfigError
from ..memory.variants import VariantSpec

#: Run modes: run every kernel to completion, freeze at a cycle
#: horizon, or stop when the workload's *watched* cores finish.
RUN_MODES = ("completion", "horizon", "watched")


def _freeze_value(value, where: str):
    """Validate and freeze one parameter value (lists become tuples)."""
    if isinstance(value, bool) or value is None or \
            isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item, where) for item in value)
    raise ConfigError(
        f"{where} values must be JSON-able scalars or lists, "
        f"got {type(value).__name__}: {value!r}")


def _freeze_mapping(value, where: str) -> tuple:
    """Normalize a dict (or pair-tuple) field to a sorted pair tuple."""
    if isinstance(value, tuple):
        value = dict(value)
    if not isinstance(value, dict):
        raise ConfigError(f"{where} must be a mapping, got {value!r}")
    for key in value:
        if not isinstance(key, str):
            raise ConfigError(f"{where} keys must be strings, got {key!r}")
    return tuple(sorted(
        (key, _freeze_value(val, f"{where}[{key!r}]"))
        for key, val in value.items()))


def _thaw(value):
    """Tuples back to lists for JSON rendering."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


def _parse_variant_raw(text: str) -> tuple:
    """``(plugin, raw-params)`` of a variant string, symbols unresolved."""
    from ..memory.variants import get_variant
    if not isinstance(text, str) or not text:
        raise ConfigError(f"variant must be a non-empty string, got {text!r}")
    name, sep, arg = text.replace("-", "_").partition(":")
    if name == "ideal" and not sep:          # CLI-friendly alias
        name, arg = "lrscwait", "ideal"
    plugin = get_variant(name)               # UnknownVariantError
    raw = {}
    if arg:
        if "=" in arg:
            for item in arg.split(","):
                key, eq, value = item.partition("=")
                if not eq or not key or not value:
                    raise ConfigError(
                        f"variant parameters must be key=value pairs, "
                        f"got {item!r} in {text!r}")
                raw[key.strip()] = _variant_value(text, value.strip())
        elif plugin.positional is None:
            raise ConfigError(f"variant {name!r} takes no argument: {text!r}")
        else:
            raw[plugin.positional] = _variant_value(text, arg)
    missing = sorted(key for key, schema in plugin.params.items()
                     if schema.required and key not in raw)
    if missing:
        hints = ", ".join(f"':{token}'" for key in missing
                          for token in plugin.params[key].symbolic)
        raise ConfigError(
            f"variant {name!r} needs a value for {missing} "
            f"(e.g. ':<int>'{', ' + hints if hints else ''}), got {text!r}")
    return plugin, raw


def parse_variant(text: str, num_cores: int) -> VariantSpec:
    """Materialize a variant string for a system of ``num_cores``.

    Any registered variant parses; symbolic parameter values
    (``half``/``cores``/``ideal``) resolve against ``num_cores``, so
    the returned spec is fully concrete.
    """
    plugin, raw = _parse_variant_raw(text)
    spec = VariantSpec(kind=plugin.name, params=raw)   # validates
    return spec.materialize(num_cores)


def _variant_value(text: str, arg: str):
    """A variant-string parameter value: int or symbolic token."""
    try:
        return int(arg)
    except ValueError:
        if arg.isidentifier():
            return arg                       # symbolic; schema-checked
        raise ConfigError(f"variant argument must be an int: {text!r}")


def variant_string(variant: VariantSpec) -> str:
    """The canonical spec string for a materialized variant.

    ``lrscwait`` slot counts are encoded literally, so a variant made
    from ``"lrscwait:half"`` stringifies to its concrete slot count —
    the spec records what actually ran.  Delegates to the registered
    plugin's :meth:`~repro.memory.variants.AtomicVariant.string`, so
    ``parse_variant(variant_string(v), n) == v`` for any registered
    variant.
    """
    from ..memory.variants import get_variant
    return get_variant(variant.kind).string(variant.params_dict())


def merge_variant_params(text: str, updates: dict) -> str:
    """Layer parameter overrides onto a variant string.

    The engine behind ``variant.<param>`` setting keys (``repro sweep
    --axis variant.queue_slots=1,8,half``): the string is parsed
    *without* resolving symbols, the overrides are merged, and the
    canonical string of the result is returned — so axes can range
    over one parameter of any registered variant while the rest of the
    string stays put.
    """
    plugin, raw = _parse_variant_raw(text)
    for key, value in updates.items():
        if key not in plugin.params:
            raise ConfigError(
                f"variant {plugin.name!r} has no parameter {key!r}; "
                f"accepted: {sorted(plugin.params) or '(none)'}")
        plugin.check_value(key, value)
        raw[key] = value
    return plugin.string(plugin.fill_defaults(raw))


def shape_from_config(config: SystemConfig) -> dict:
    """Spec shape fields equivalent to an existing :class:`SystemConfig`.

    Used by the legacy entry points that accept a config object
    (``run_interference``) to become spec factories without changing
    their signatures.
    """
    defaults = LatencyConfig()
    latency = {
        field.name: getattr(config.latency, field.name)
        for field in dataclasses.fields(LatencyConfig)
        if getattr(config.latency, field.name) != getattr(defaults,
                                                          field.name)
    }
    return {
        "num_cores": config.num_cores,
        "cores_per_tile": config.cores_per_tile,
        "banks_per_tile": config.banks_per_tile,
        "words_per_bank": config.words_per_bank,
        "num_groups": config.num_groups,
        "latency": latency,
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment point.

    ``params`` and ``latency`` accept plain dicts at construction and
    are frozen to sorted ``(key, value)`` tuples, so specs are
    hashable, comparable and deterministic to serialize.  ``params``
    holds only the *overrides* over the workload's defaults — two specs
    that spell the same defaults differently still hash differently,
    which keeps the hash a pure function of the spec's content.
    """

    workload: str
    num_cores: int = 32
    #: ``None`` = the scaled-MemPool default (4 cores / 16 banks).
    cores_per_tile: Optional[int] = None
    banks_per_tile: Optional[int] = None
    words_per_bank: int = 256
    #: ``None`` = auto (4 groups when the tile count allows, else 1).
    num_groups: Optional[int] = None
    #: Latency overrides over :class:`LatencyConfig` defaults.
    latency: tuple = ()
    variant: str = "colibri"
    #: Workload parameter overrides (see ``repro list`` for defaults).
    params: tuple = ()
    mode: str = "completion"
    #: Cycle budget, required iff ``mode == "horizon"``.
    horizon: Optional[int] = None
    seed: int = 0
    #: Extra stat metrics to attach to the result (see run.METRICS).
    metrics: tuple = ()

    def __post_init__(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ConfigError(
                f"workload must be a non-empty string, got {self.workload!r}")
        for name in ("num_cores", "words_per_bank", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(
                    f"{name} must be an int, got {value!r}")
        object.__setattr__(self, "params",
                           _freeze_mapping(self.params, "params"))
        object.__setattr__(self, "latency",
                           _freeze_mapping(self.latency, "latency"))
        metrics = self.metrics
        if isinstance(metrics, str):
            metrics = (metrics,)
        object.__setattr__(self, "metrics", tuple(metrics))
        if self.mode not in RUN_MODES:
            raise ConfigError(
                f"mode must be one of {RUN_MODES}, got {self.mode!r}")
        if self.mode == "horizon":
            if not isinstance(self.horizon, int) or self.horizon < 1:
                raise ConfigError(
                    "mode='horizon' needs a positive integer horizon, "
                    f"got {self.horizon!r}")

    # -- parameter access -----------------------------------------------------

    def params_dict(self) -> dict:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def with_params(self, **updates) -> "ScenarioSpec":
        """Copy with some workload parameters replaced/added."""
        merged = self.params_dict()
        merged.update(updates)
        return dataclasses.replace(self, params=merged)

    def override(self, **fields) -> "ScenarioSpec":
        """Copy with some spec-level fields replaced (``None`` skipped).

        Convenience for CLI-style flag layering: ``spec.override(
        num_cores=args.cores, seed=args.seed)`` leaves unset flags
        alone.  To *set* an optional field back to ``None`` (e.g.
        ``cores_per_tile``), use :func:`dataclasses.replace` — which is
        what ``--set field=none`` does via ``apply_settings``.
        """
        updates = {key: value for key, value in fields.items()
                   if value is not None}
        return dataclasses.replace(self, **updates) if updates else self

    # -- materialization ------------------------------------------------------

    def system_config(self) -> SystemConfig:
        """Build the :class:`SystemConfig` this spec describes."""
        if self.num_groups is None:
            config = SystemConfig.scaled(
                self.num_cores, words_per_bank=self.words_per_bank,
                cores_per_tile=self.cores_per_tile,
                banks_per_tile=self.banks_per_tile)
        else:
            config = SystemConfig(
                num_cores=self.num_cores,
                cores_per_tile=self.cores_per_tile or 4,
                banks_per_tile=self.banks_per_tile or 16,
                num_groups=self.num_groups,
                words_per_bank=self.words_per_bank)
            config.validate()
        if self.latency:
            config = config.with_latency(**dict(self.latency))
            config.validate()
        return config

    def variant_spec(self) -> VariantSpec:
        """Materialize the variant string for this spec's system size."""
        return parse_variant(self.variant, self.num_cores)

    def validate(self) -> None:
        """Full consistency check: shape, variant, workload and params.

        Raises :class:`ConfigError` (or its
        :class:`~repro.scenarios.registry.UnknownWorkloadError`
        subclass) naming what is wrong.
        """
        self.system_config()
        self.variant_spec()
        from .registry import get_workload        # late: avoid cycle
        workload = get_workload(self.workload)
        workload.resolve_params(self)
        from .run import METRICS                  # late: avoid cycle
        unknown = [name for name in self.metrics if name not in METRICS]
        if unknown:
            raise ConfigError(
                f"unknown metrics {unknown} for scenario "
                f"{self.workload!r}; known: {sorted(METRICS)}")

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data rendering (JSON-able, ``from_dict`` inverse)."""
        return {
            "workload": self.workload,
            "num_cores": self.num_cores,
            "cores_per_tile": self.cores_per_tile,
            "banks_per_tile": self.banks_per_tile,
            "words_per_bank": self.words_per_bank,
            "num_groups": self.num_groups,
            "latency": {key: value for key, value in self.latency},
            "variant": self.variant,
            "params": {key: _thaw(value) for key, value in self.params},
            "mode": self.mode,
            "horizon": self.horizon,
            "seed": self.seed,
            "metrics": list(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ConfigError(f"spec data must be a dict, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown spec fields {unknown}; known: {sorted(known)}")
        if "workload" not in data:
            raise ConfigError("spec data needs a 'workload' field")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def stable_hash(self) -> str:
        """SHA-256 over the canonical JSON — identical across processes
        and machines for equal specs; the scenario result-cache key."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human summary used by the CLI."""
        parts = [f"{self.workload}", f"{self.num_cores} cores",
                 self.variant, f"seed {self.seed}"]
        if self.mode != "completion":
            parts.append(self.mode)
        if self.params:
            parts.append(", ".join(f"{k}={v}" for k, v in self.params))
        return " | ".join(parts)
