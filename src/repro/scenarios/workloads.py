"""Built-in registered workloads.

Four wrap the paper's kernels — ``histogram`` (Figs. 3/4, Table II),
``queue`` (Fig. 6), ``interference`` (Fig. 5) and ``matmul`` (Fig. 5's
victim, standalone) — and three extend the scenario space beyond the
paper:

* ``histogram_zipf`` — the histogram under a Zipf hot-spot stream:
  contention concentrates on a few bins even when many exist, the
  regime real aggregation workloads live in;
* ``pipeline`` — a producer → transform… → consumer chain through
  one-slot mailboxes, sleeping on Mwait (or polling, for comparison);
* ``barrier_storm`` — every core slams a sense-reversing central
  barrier for many rounds back-to-back, the broadcast-wakeup stress
  case for Mwait.

The new scenarios deliberately use *odd* tile shapes (2 or 3 cores per
tile) to exercise the relaxed :meth:`SystemConfig.scaled` overrides.
"""

from __future__ import annotations

import random

from ..algorithms.histogram import Histogram
from ..algorithms.matmul import Matmul
from ..algorithms.mcs_queue import ConcurrentQueue, queue_worker_kernel
from ..engine.errors import ConfigError
from ..eval.points import HistogramPoint, QueuePoint
from ..interconnect.messages import Status
from ..power.energy import EnergyModel
from ..sync.backoff import FixedBackoff
from ..sync.barrier import CentralBarrier
from ..sync.locks import (
    AmoSpinLock,
    ColibriSpinLock,
    LrscSpinLock,
    MwaitMcsLock,
)
from ..workloads.interference import measure_interference
from ..workloads.streams import zipf_stream
from .registry import LoadedWorkload, Workload, register_workload
from .run import ScenarioResult
from .spec import ScenarioSpec, shape_from_config, variant_string

#: Lock classes by the spec-level lock parameter.
LOCK_CLASSES = {
    "amo": AmoSpinLock,
    "lrsc": LrscSpinLock,
    "colibri": ColibriSpinLock,
    "mcs": MwaitMcsLock,
}


def _resolve_method(method, variant) -> str:
    """``"native"``/``None`` means the variant's own RMW flavour."""
    if method in (None, "native"):
        return variant.native_method
    return method


def _core_count(value, name: str, machine) -> int:
    """Validate a cores-subset parameter (``None`` = every core)."""
    if value is None:
        return machine.config.num_cores
    if not isinstance(value, int) or isinstance(value, bool) or \
            not 1 <= value <= machine.config.num_cores:
        raise ConfigError(
            f"{name}={value!r} must be an int in "
            f"1..{machine.config.num_cores} (or None for all cores)")
    return value


def _attach_locks(histogram: Histogram, lock: str,
                  backoff_window: int) -> None:
    lock_cls = LOCK_CLASSES.get(lock)
    if lock_cls is None:
        raise ConfigError(f"unknown lock {lock!r}; "
                          f"accepted: {sorted(LOCK_CLASSES)}")
    if lock_cls is MwaitMcsLock:
        histogram.attach_locks(lock_cls)
    else:
        histogram.attach_locks(lock_cls,
                               backoff=FixedBackoff(backoff_window))


@register_workload("histogram")
class HistogramWorkload(Workload):
    """Contended histogram updates — the Figs. 3/4 and Table II kernel."""

    description = ("uniform-random atomic histogram updates; contention "
                   "set by the bin count (paper Figs. 3/4, Table II)")
    params = {
        "bins": 16,
        "updates_per_core": 8,
        #: "amo" | "lrsc" | "wait" | "lock" | "native" (variant's own).
        "method": "native",
        "lock": "amo",
        "lock_backoff_window": 128,
        #: Series label on the measured point (None = variant/method).
        "label": None,
    }
    spec_defaults = {"num_cores": 32, "variant": "colibri"}
    smoke = {"cores": 8, "bins": 2, "updates_per_core": 2}
    extra_metrics = ("pj_per_op", "sc_failures", "wait_rejections")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        method = _resolve_method(p["method"], machine.variant)
        histogram = Histogram(machine, p["bins"])
        if method == "lock":
            _attach_locks(histogram, p["lock"], p["lock_backoff_window"])
            factory = histogram.kernel_factory(method,
                                               p["updates_per_core"])
        else:
            # RMW methods run the vectorized driver (bit-identical to
            # the scalar kernel; golden-tested); locks stay scalar.
            factory = histogram.flat_kernel_factory(method,
                                                    p["updates_per_core"])
        machine.load_all(factory)
        expected = machine.config.num_cores * p["updates_per_core"]
        label = p["label"] or f"{machine.variant.label()}/{method}"

        def finish(stats):
            energy = EnergyModel().evaluate(stats)
            point = HistogramPoint(
                label=label,
                num_cores=machine.config.num_cores,
                num_bins=p["bins"],
                updates_per_core=p["updates_per_core"],
                cycles=stats.cycles,
                throughput=stats.throughput,
                sc_failures=stats.total_sc_failures,
                wait_rejections=sum(c.wait_rejections for c in stats.cores),
                sleep_cycles=stats.total_sleep_cycles,
                active_cycles=stats.total_active_cycles,
                messages=stats.network.total_messages,
                energy=energy)
            metrics = {"pj_per_op": point.pj_per_op,
                       "sc_failures": point.sc_failures,
                       "wait_rejections": point.wait_rejections}
            return point, metrics

        return LoadedWorkload(
            verify=lambda: histogram.verify(expected), finish=finish)


@register_workload("histogram_zipf")
class ZipfHistogramWorkload(Workload):
    """Hot-spot histogram: Zipf-distributed bins (non-paper scenario)."""

    description = ("histogram under a Zipf(exponent) hot-spot stream — "
                   "contention piles onto rank-1 bins even at high bin "
                   "counts (non-paper scenario)")
    params = {
        "bins": 64,
        "updates_per_core": 8,
        "exponent": 1.2,
        "method": "native",       # RMW only; locks not supported here
        "label": None,
    }
    spec_defaults = {"num_cores": 32, "variant": "colibri"}
    smoke = {"cores": 8, "bins": 8, "updates_per_core": 3}
    extra_metrics = ("hot_bin_share", "pj_per_op")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        method = _resolve_method(p["method"], machine.variant)
        if method == "lock":
            raise ConfigError(
                "histogram_zipf supports RMW methods only "
                "(amo/lrsc/wait); use the 'histogram' workload for locks")
        histogram = Histogram(machine, p["bins"])
        # Per-core deterministic hot-spot streams, precomputed so the
        # simulated kernel spends no host time drawing.
        streams = [
            list(zipf_stream(random.Random(spec.seed * 1_000_003 + core),
                             p["bins"], p["updates_per_core"],
                             exponent=p["exponent"]))
            for core in range(machine.config.num_cores)
        ]

        # Vectorized driver over the precomputed streams (bit-identical
        # to a scalar fetch_add loop; golden-tested).
        machine.load_all(histogram.flat_stream_factory(streams, method))
        expected = machine.config.num_cores * p["updates_per_core"]

        def finish(stats):
            counts = histogram.counts()
            total = sum(counts) or 1
            return None, {"hot_bin_share": max(counts) / total,
                          "pj_per_op":
                              EnergyModel().evaluate(stats).pj_per_op}

        return LoadedWorkload(
            verify=lambda: histogram.verify(expected), finish=finish)


@register_workload("queue")
class QueueWorkload(Workload):
    """Concurrent MCS-style queue — the Fig. 6 kernel."""

    description = ("shared MCS-style linked queue, every active core "
                   "alternating enqueue/dequeue (paper Fig. 6)")
    params = {
        "method": "wait",         # "lrsc" | "wait" | "lock"
        "ops_per_core": 16,
        #: Cores using the queue (None = all; the system keeps its size).
        "active_cores": None,
        "label": None,
    }
    spec_defaults = {"num_cores": 16, "variant": "colibri"}
    smoke = {"cores": 8, "ops_per_core": 4}
    extra_metrics = ("jain_fairness", "fairness_band")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        active = _core_count(p["active_cores"], "active_cores", machine)
        ops = p["ops_per_core"]
        queue = ConcurrentQueue(machine, p["method"],
                                nodes_per_core=ops // 2 + 2)
        machine.load_range(
            range(active),
            lambda api: queue_worker_kernel(queue, api, ops))
        label = p["label"] or f"queue/{p['method']}"

        def finish(stats):
            rates = []
            for core_id in range(active):
                finish_cycle = (machine.cores[core_id].finish_cycle
                                or stats.cycles)
                rates.append(stats.cores[core_id].ops_completed
                             / max(1, finish_cycle))
            total = sum(rates)
            jain = (total * total
                    / (len(rates) * sum(r * r for r in rates))
                    if total else 1.0)
            point = QueuePoint(
                label=label,
                num_cores=active,
                throughput=stats.throughput,
                cycles=stats.cycles,
                min_core_rate=min(rates),
                max_core_rate=max(rates),
                jain_fairness=jain)
            return point, {"jain_fairness": jain,
                           "fairness_band": point.fairness_band}

        return LoadedWorkload(finish=finish)


@register_workload("matmul")
class MatmulWorkload(Workload):
    """Blocked GEMM on interleaved arrays — Fig. 5's victim, standalone."""

    description = ("blocked matrix multiply over interleaved SPM arrays "
                   "(Fig. 5's interference victim, run alone)")
    params = {
        "dim": 8,
        #: Worker cores (None = all cores split the rows).
        "workers": None,
    }
    spec_defaults = {"num_cores": 16, "variant": "colibri"}
    smoke = {"cores": 8, "dim": 4}
    extra_metrics = ("macs", "workers")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        workers = _core_count(p["workers"], "workers", machine)
        matmul = Matmul(machine, p["dim"])
        matmul.fill_inputs()
        rows = matmul.partition_rows(workers)
        for worker, row_slice in enumerate(rows):
            machine.load(worker,
                         lambda api, r=row_slice:
                         matmul.flat_worker_kernel(api, r))

        def finish(stats):
            return None, {"macs": p["dim"] ** 3,
                          "workers": workers}

        return LoadedWorkload(
            watched=list(range(workers)),
            verify=matmul.verify, finish=finish)


@register_workload("interference")
class InterferenceWorkload(Workload):
    """Matmul under atomic pollers — the paired Fig. 5 measurement.

    A composite scenario: the measurement is the *ratio* between a
    baseline run (workers alone) and an interfered run (workers plus
    endless pollers), so it overrides :meth:`Workload.run` instead of
    using the single-machine template.  ``mode`` is ignored — both
    runs watch the workers by construction.
    """

    description = ("matmul makespan with vs. without endless atomic "
                   "pollers sharing the system (paper Fig. 5); "
                   "a paired two-run measurement")
    params = {
        "method": "lrsc",         # pollers' RMW flavour
        "workers": 4,
        "bins": 1,
        "matmul_dim": 16,
    }
    spec_defaults = {"num_cores": 16, "variant": "lrsc"}
    smoke = {"cores": 16, "workers": 4, "matmul_dim": 4}
    extra_metrics = ("baseline_cycles", "interfered_cycles",
                     "relative_throughput")

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        p = self.resolve_params(spec)
        result, stats = measure_interference(
            spec.system_config(), spec.variant_spec(), p["method"],
            p["workers"], p["bins"], matmul_dim=p["matmul_dim"],
            seed=spec.seed)
        from .run import METRICS
        metrics = {
            "baseline_cycles": result.baseline_cycles,
            "interfered_cycles": result.interfered_cycles,
            "relative_throughput": result.relative_throughput,
        }
        for name in spec.metrics:
            metrics[name] = METRICS[name](stats)
        return ScenarioResult(
            spec=spec,
            cycles=result.interfered_cycles,
            throughput=stats.throughput,
            messages=stats.network.total_messages,
            active_cycles=stats.total_active_cycles,
            sleep_cycles=stats.total_sleep_cycles,
            metrics=metrics,
            point=result,
            stats=stats)


def interference_spec(config, variant, method: str, num_workers: int,
                      num_bins: int, matmul_dim: int = 16,
                      seed: int = 0) -> ScenarioSpec:
    """Spec equivalent of the legacy ``run_interference`` signature."""
    return ScenarioSpec(
        workload="interference",
        variant=variant_string(variant),
        params={"method": method, "workers": num_workers,
                "bins": num_bins, "matmul_dim": matmul_dim},
        seed=seed,
        **shape_from_config(config))


def _wait_until_changed(api, addr: int, expected: int, use_mwait: bool,
                        poll_window: int = 12):
    """Block until ``mem[addr] != expected``; return the new value.

    Mwait closes the check-then-sleep race in hardware; the software
    fallback (and the QUEUE_FULL overflow path) polls with a small
    randomized interval, exactly like the producer/consumer example.
    """
    if use_mwait:
        while True:
            resp = yield from api.mwait(addr, expected=expected)
            if resp.status is Status.QUEUE_FULL:
                value = yield from api.lw(addr)
                if value != expected:
                    return value
                yield from api.compute(1 + api.rng.randrange(poll_window))
                continue
            if resp.value != expected:
                return resp.value
    while True:
        value = yield from api.lw(addr)
        if value != expected:
            return value
        yield from api.compute(1 + api.rng.randrange(poll_window))


@register_workload("pipeline")
class PipelineWorkload(Workload):
    """Producer → transform… → consumer chain (non-paper scenario)."""

    description = ("every core is one stage of a pipeline chained by "
                   "one-slot mailboxes; items flow end to end, stages "
                   "sleep on Mwait or poll (non-paper scenario)")
    params = {
        "items": 8,
        "produce_cycles": 20,
        "stage_cycles": 4,
        "use_mwait": True,
    }
    #: 6 cores in 2-core tiles: the odd shape scaled() now allows.
    spec_defaults = {"num_cores": 6, "cores_per_tile": 2,
                     "variant": "colibri"}
    smoke = {"items": 3}
    extra_metrics = ("items_delivered", "stages")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        stages = machine.config.num_cores
        if stages < 2:
            raise ConfigError("pipeline needs num_cores >= 2 "
                              "(a producer and a consumer)")
        items = p["items"]
        use_mwait = p["use_mwait"] and machine.variant.supports_wait
        #: Each link is (data, flag, ack): the downstream stage sleeps
        #: on ``flag`` (item available) and the upstream stage on
        #: ``ack`` (item consumed).  One sleeper per address — a wait
        #: queue serves waiters FIFO regardless of their expected
        #: value, so two stages sharing one flag with opposite
        #: expectations could queue behind each other and deadlock.
        links = [tuple(machine.allocator.alloc_interleaved(1)
                       for _ in range(3))
                 for _ in range(stages - 1)]
        received: list = []

        def send(api, link, seq, value, wait_ack):
            data, flag, ack = link
            yield from api.sw(data, value)
            yield from api.sw(flag, 1)
            if wait_ack:  # slot reusable once the consumer acked seq
                yield from _wait_until_changed(api, ack, seq, use_mwait)

        def recv(api, link, seq):
            data, flag, ack = link
            yield from _wait_until_changed(api, flag, 0, use_mwait)
            value = yield from api.lw(data)
            yield from api.sw(flag, 0)
            yield from api.sw(ack, seq + 1)
            return value

        def producer(api):
            for seq in range(items):
                yield from api.compute(p["produce_cycles"])
                yield from send(api, links[0], seq, seq,
                                wait_ack=seq < items - 1)
                yield from api.retire()

        def transform(api, stage):
            for seq in range(items):
                value = yield from recv(api, links[stage - 1], seq)
                yield from api.compute(p["stage_cycles"])
                yield from send(api, links[stage], seq, value + 1,
                                wait_ack=seq < items - 1)
                yield from api.retire()

        def consumer(api):
            for seq in range(items):
                value = yield from recv(api, links[-1], seq)
                received.append(value)
                yield from api.retire()

        machine.load(0, producer)
        for stage in range(1, stages - 1):
            machine.load(stage, lambda api, s=stage: transform(api, s))
        machine.load(stages - 1, consumer)

        def verify():
            expected = [seq + stages - 2 for seq in range(items)]
            if received != expected:
                raise AssertionError(
                    f"pipeline corrupted items: {received} != {expected}")

        def finish(stats):
            return None, {"items_delivered": len(received),
                          "stages": stages}

        return LoadedWorkload(verify=verify, finish=finish)


@register_workload("barrier_storm")
class BarrierStormWorkload(Workload):
    """Back-to-back central-barrier rounds (non-paper scenario)."""

    description = ("all cores hit a sense-reversing central barrier "
                   "for many consecutive rounds — broadcast-wakeup "
                   "stress for Mwait vs polling (non-paper scenario)")
    params = {
        "rounds": 5,
        "compute_cycles": 8,
        "use_mwait": True,
    }
    #: 12 cores in 3-core tiles: another odd scaled() shape.
    spec_defaults = {"num_cores": 12, "cores_per_tile": 3,
                     "variant": "colibri"}
    smoke = {"cores": 6, "cores_per_tile": 3, "rounds": 2}
    extra_metrics = ("rounds", "sleep_cycles")

    def load(self, machine, spec: ScenarioSpec) -> LoadedWorkload:
        p = self.resolve_params(spec)
        use_mwait = p["use_mwait"] and machine.variant.supports_wait
        barrier = CentralBarrier.create(machine, use_mwait=use_mwait)
        parties = machine.config.num_cores
        completions = [0] * parties

        def kernel(api):
            for _ in range(p["rounds"]):
                yield from api.compute(
                    1 + api.rng.randrange(p["compute_cycles"]))
                yield from barrier.wait(api)
                completions[api.core_id] += 1
                yield from api.retire()

        machine.load_all(kernel)

        def verify():
            lagging = [core for core, done in enumerate(completions)
                       if done != p["rounds"]]
            if lagging:
                raise AssertionError(
                    f"cores {lagging} missed barrier rounds: "
                    f"{completions}")
            count = machine.peek(barrier.count_addr)
            if count != 0:
                raise AssertionError(
                    f"barrier count not reset after last round: {count}")

        def finish(stats):
            return None, {"rounds": p["rounds"],
                          "sleep_cycles": stats.total_sleep_cycles}

        return LoadedWorkload(verify=verify, finish=finish)
