"""Software synchronization library running on the simulated cores."""

from .backoff import (
    DEFAULT_LRSC_BACKOFF,
    ExponentialBackoff,
    FixedBackoff,
    NoBackoff,
    PAPER_LOCK_BACKOFF,
    QUEUE_FULL_BACKOFF,
)
from .barrier import CentralBarrier
from .locks import (
    AmoSpinLock,
    ColibriSpinLock,
    LOCKED,
    LrscSpinLock,
    MwaitMcsLock,
    TicketLock,
    UNLOCKED,
)
from .rmw import amo_fetch_add, fetch_add, lrsc_fetch_modify, wait_fetch_modify

__all__ = [
    "DEFAULT_LRSC_BACKOFF",
    "ExponentialBackoff",
    "FixedBackoff",
    "NoBackoff",
    "PAPER_LOCK_BACKOFF",
    "QUEUE_FULL_BACKOFF",
    "CentralBarrier",
    "AmoSpinLock",
    "ColibriSpinLock",
    "LOCKED",
    "LrscSpinLock",
    "MwaitMcsLock",
    "TicketLock",
    "UNLOCKED",
    "amo_fetch_add",
    "fetch_add",
    "lrsc_fetch_modify",
    "wait_fetch_modify",
]
