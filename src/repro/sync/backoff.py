"""Backoff policies for retry loops.

Retry-based primitives (plain LR/SC and every spin lock) need a policy
for how long to wait after a failed attempt.  The paper's related-work
section discusses exactly this: "Existing backoff schemes, such as
exponential backoff ... can reduce the overhead on shared resources but
still make the cores busy-waiting" (§II).  The evaluation fixes the
spin-lock backoff to 128 cycles (§V-A) and Table II's LRSC row uses the
same window.

All policies draw from the core's own deterministic RNG so runs stay
reproducible, and all windows are randomized (a deterministic fixed
wait re-creates the lockstep livelock that symmetric manycore systems
exhibit — our simulator, having no analog jitter, shows it immediately).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class NoBackoff:
    """Retry immediately.  Livelock-prone under contention; provided as
    the pathological baseline for the backoff ablation benchmark."""

    def delay(self, rng: random.Random, attempt: int) -> int:
        """Cycles to wait before retry ``attempt`` (0-based); here 0."""
        return 0


@dataclass(frozen=True)
class FixedBackoff:
    """Uniform random wait in ``[1, window]`` — the paper's 128-cycle
    spin-lock backoff (randomized to break symmetry)."""

    window: int = 128

    def delay(self, rng: random.Random, attempt: int) -> int:
        """Cycles to wait before the next retry."""
        return rng.randrange(1, self.window + 1)


@dataclass(frozen=True)
class ExponentialBackoff:
    """Randomized exponential backoff: uniform in ``[1, min(cap,
    base * 2**attempt)]`` — the classic policy of Anderson [1]."""

    base: int = 8
    cap: int = 2048

    def delay(self, rng: random.Random, attempt: int) -> int:
        """Cycles to wait before the next retry."""
        window = min(self.cap, self.base << min(attempt, 30))
        return rng.randrange(1, window + 1)


#: Default policy for raw LR/SC retry loops (adapts to contention).
DEFAULT_LRSC_BACKOFF = ExponentialBackoff()
#: The paper's spin-lock configuration: fixed 128-cycle window.
PAPER_LOCK_BACKOFF = FixedBackoff(128)
#: Short randomized wait for LRwait QUEUE_FULL retries on bounded
#: hardware (the queue drains quickly; long waits just add latency).
QUEUE_FULL_BACKOFF = FixedBackoff(32)
