"""Sense-reversing central barrier.

A classic centralized barrier used by multi-phase workloads (and as an
Mwait demonstration): arrivals are counted with ``amoadd``; the last
arriver resets the count and flips the shared *sense* word; everyone
else waits for the sense flip — by sleeping on it with **Mwait** when
the hardware supports it, by polling with backoff otherwise.

This is exactly the producer/consumer-style "waiting for a shared
variable outside a critical section" situation the paper motivates
Mwait with (§I, §III-C).
"""

from __future__ import annotations

from ..cores.api import CoreApi
from ..interconnect.messages import Status
from .backoff import FixedBackoff


class CentralBarrier:
    """Counter + sense word; ``wait`` parks the core until all arrive."""

    def __init__(self, count_addr: int, sense_addr: int, parties: int,
                 use_mwait: bool = True,
                 backoff=FixedBackoff(16)) -> None:
        self.count_addr = count_addr
        self.sense_addr = sense_addr
        self.parties = parties
        self.use_mwait = use_mwait
        self.backoff = backoff

    @classmethod
    def create(cls, machine, parties=None, use_mwait: bool = True
               ) -> "CentralBarrier":
        """Allocate the two barrier words for ``parties`` cores
        (defaults to all cores of the machine)."""
        if parties is None:
            parties = machine.config.num_cores
        return cls(machine.allocator.alloc_interleaved(1),
                   machine.allocator.alloc_interleaved(1),
                   parties, use_mwait=use_mwait)

    def wait(self, api: CoreApi):
        """Block until all ``parties`` cores have called ``wait``."""
        sense = yield from api.lw(self.sense_addr)
        arrived = yield from api.amo_add(self.count_addr, 1)
        if arrived + 1 == self.parties:
            # Last arriver: reset the count, flip the sense.
            yield from api.sw(self.count_addr, 0)
            yield from api.sw(self.sense_addr, 1 - sense)
            return
        if self.use_mwait:
            yield from self._sleep_on_sense(api, sense)
        else:
            yield from self._poll_sense(api, sense)

    def _sleep_on_sense(self, api: CoreApi, sense: int):
        attempt = 0
        while True:
            resp = yield from api.mwait(self.sense_addr, expected=sense)
            if resp.status is Status.QUEUE_FULL:
                value = yield from api.lw(self.sense_addr)
                if value != sense:
                    return
                yield from api.compute(self.backoff.delay(api.rng, attempt))
                attempt += 1
                continue
            if resp.value != sense:
                return

    def _poll_sense(self, api: CoreApi, sense: int):
        attempt = 0
        while True:
            value = yield from api.lw(self.sense_addr)
            if value != sense:
                return
            yield from api.compute(self.backoff.delay(api.rng, attempt))
            attempt += 1
