"""Lock implementations (the contenders of Fig. 4).

Every lock is a small object holding pre-allocated SPM addresses plus
generator methods ``acquire(api)`` / ``release(api)`` used with
``yield from`` inside kernels.  The roster matches the paper's lock
comparison (§V-A, Fig. 4):

* :class:`AmoSpinLock` — test-and-set via ``amoswap`` with a 128-cycle
  randomized backoff ("Atomic Add lock");
* :class:`LrscSpinLock` — test-and-set via LR/SC with backoff
  ("LRSC lock");
* :class:`ColibriSpinLock` — test-and-set via LRwait/SCwait with
  backoff ("Colibri lock"): polling still happens when the lock is
  observed taken, but the RMW itself never retries;
* :class:`MwaitMcsLock` — an MCS queue lock where waiters sleep on
  their own tile-local node with **Mwait** instead of spinning
  ("Mwait lock"); completely polling-free on wait-capable hardware;
* :class:`TicketLock` — fetch-and-add ticket lock (not in the paper's
  figure; used by the ablation benches as a fairness-preserving
  spin-lock reference).

Construction goes through ``create(machine)`` classmethods that
allocate the lock's memory, so example code reads naturally::

    lock = MwaitMcsLock.create(machine)

    def kernel(api):
        yield from lock.acquire(api)
        ...  # critical section
        yield from lock.release(api)
"""

from __future__ import annotations

from ..cores.api import CoreApi
from ..interconnect.messages import Status
from .backoff import (
    ExponentialBackoff,
    FixedBackoff,
    PAPER_LOCK_BACKOFF,
    QUEUE_FULL_BACKOFF,
)

#: Lock-word values.
UNLOCKED, LOCKED = 0, 1

#: Adaptive backoff for *lost races on a free lock* (thundering herd).
#: A fixed window cannot serve both 4 and 256 contenders; the race
#: path therefore adapts, while the observed-taken path keeps the
#: paper's fixed 128-cycle wait.  The cap is deliberately moderate:
#: larger caps drain the herd faster but can starve a loser behind a
#: lock that is continuously re-acquired.
HERD_BACKOFF = ExponentialBackoff(base=16, cap=512)


class AmoSpinLock:
    """Test-and-test-and-set spin lock on one word, via ``amoswap``.

    The classic TTAS refinement: poll with plain loads while the lock
    is observed taken (no write traffic, fixed backoff) and issue the
    ``amoswap`` only after observing it free.  Lost swap races back off
    adaptively.
    """

    def __init__(self, lock_addr: int, backoff=PAPER_LOCK_BACKOFF) -> None:
        self.lock_addr = lock_addr
        self.backoff = backoff

    @classmethod
    def create(cls, machine, backoff=PAPER_LOCK_BACKOFF) -> "AmoSpinLock":
        """Allocate the lock word and return the lock."""
        return cls(machine.allocator.alloc_interleaved(1), backoff)

    def acquire(self, api: CoreApi):
        """TTAS loop: test until free, then swap; repeat on lost races."""
        races = 0
        # Optimistic first grab: free-lock acquisitions cost one AMO.
        old = yield from api.amo_swap(self.lock_addr, LOCKED)
        if old == UNLOCKED:
            return
        attempt = 0
        while True:
            value = yield from api.lw(self.lock_addr)
            if value == UNLOCKED:
                old = yield from api.amo_swap(self.lock_addr, LOCKED)
                if old == UNLOCKED:
                    return
                races += 1
                yield from api.compute(HERD_BACKOFF.delay(api.rng, races))
                continue
            yield from api.compute(self.backoff.delay(api.rng, attempt))
            attempt += 1

    def release(self, api: CoreApi):
        """Store UNLOCKED; a plain store suffices for TAS locks."""
        yield from api.sw(self.lock_addr, UNLOCKED)


class LrscSpinLock:
    """Test-and-test-and-set spin lock built from plain LR/SC.

    The LR doubles as the test.  A lock observed taken backs off with
    the paper's fixed window; a *failed SC on a free lock* means the
    herd is racing (another core's LR stole the single reservation
    slot), which a fixed window cannot drain — that path backs off
    adaptively, like Anderson's classic analysis prescribes.
    """

    def __init__(self, lock_addr: int, backoff=PAPER_LOCK_BACKOFF) -> None:
        self.lock_addr = lock_addr
        self.backoff = backoff

    @classmethod
    def create(cls, machine, backoff=PAPER_LOCK_BACKOFF) -> "LrscSpinLock":
        """Allocate the lock word and return the lock."""
        return cls(machine.allocator.alloc_interleaved(1), backoff)

    def acquire(self, api: CoreApi):
        """LR as test; SC only when observed free; adaptive race path."""
        attempt = 0
        races = 0
        while True:
            value = yield from api.lr(self.lock_addr)
            if value == UNLOCKED:
                success = yield from api.sc(self.lock_addr, LOCKED)
                if success:
                    return
                races += 1
                yield from api.compute(HERD_BACKOFF.delay(api.rng, races))
                continue
            # RISC-V allows abandoning a reservation without an SC, so
            # the taken-lock path just backs off and retries the LR.
            yield from api.compute(self.backoff.delay(api.rng, attempt))
            attempt += 1

    def release(self, api: CoreApi):
        """Store UNLOCKED."""
        yield from api.sw(self.lock_addr, UNLOCKED)


class ColibriSpinLock:
    """Test-and-set spin lock built from LRwait/SCwait.

    Unlike plain LR, *every* LRwait must be closed by an SCwait so the
    reservation queue drains (§III constraint); observing a taken lock
    therefore writes the value back unchanged before backing off.
    """

    def __init__(self, lock_addr: int, backoff=PAPER_LOCK_BACKOFF,
                 full_backoff=QUEUE_FULL_BACKOFF) -> None:
        self.lock_addr = lock_addr
        self.backoff = backoff
        self.full_backoff = full_backoff

    @classmethod
    def create(cls, machine, backoff=PAPER_LOCK_BACKOFF) -> "ColibriSpinLock":
        """Allocate the lock word and return the lock."""
        return cls(machine.allocator.alloc_interleaved(1), backoff)

    def acquire(self, api: CoreApi):
        """LRwait the word; SCwait 1 when free, else write back and retry."""
        attempt = 0
        while True:
            resp = yield from api.lrwait(self.lock_addr)
            if resp.status is Status.QUEUE_FULL:
                yield from api.compute(
                    self.full_backoff.delay(api.rng, attempt))
                attempt += 1
                continue
            if resp.value == UNLOCKED:
                success = yield from api.scwait(self.lock_addr, LOCKED)
                if success:
                    return
            else:
                # Mandatory queue-yielding SCwait (unchanged value).
                yield from api.scwait(self.lock_addr, resp.value)
                yield from api.compute(self.backoff.delay(api.rng, attempt))
            attempt += 1

    def release(self, api: CoreApi):
        """Store UNLOCKED."""
        yield from api.sw(self.lock_addr, UNLOCKED)


class MwaitMcsLock:
    """MCS queue lock with Mwait-sleeping waiters (the "Mwait lock").

    Each core owns a two-word node in a bank of its own tile:
    ``next`` (successor's node address, 0 = none) and ``flag``
    (0 = wait, 1 = lock passed to you).  The global ``tail`` word holds
    the node address of the last waiter (0 = free).

    * acquire: swap own node into ``tail``; if there was a predecessor,
      link behind it and **Mwait on the own flag** — the core sleeps in
      its tile until the releaser's store wakes it (no polling, and the
      wait traffic never leaves the tile).
    * release: if no successor is linked, try to swing ``tail`` back to
      0 with an LRwait/SCwait CAS; if a racing enqueuer already moved
      the tail, wait for the ``next`` link and hand over via its flag.

    On hardware whose Mwait queue can reject (``QUEUE_FULL``), waiting
    falls back to polling the flag with backoff — the software contract
    for bounded wait queues.
    """

    #: Encoded "no node" value in tail/next words.
    NIL = 0

    def __init__(self, tail_addr: int, node_addrs: list,
                 flag_stride: int,
                 fallback_backoff=FixedBackoff(32)) -> None:
        self.tail_addr = tail_addr
        #: Per-core node base address (word 0 = next, word +stride = flag).
        self.node_addrs = node_addrs
        self.flag_stride = flag_stride
        self.fallback_backoff = fallback_backoff
        if any(addr == self.NIL for addr in node_addrs):
            raise ValueError("node at address 0 clashes with NIL encoding")

    @classmethod
    def create(cls, machine) -> "MwaitMcsLock":
        """Allocate tail word + one tile-local node per core."""
        tail = machine.allocator.alloc_interleaved(1)
        stride = machine.config.num_banks * machine.config.word_bytes
        nodes = [machine.allocator.alloc_core_local(core_id, 2)
                 for core_id in range(machine.config.num_cores)]
        return cls(tail, nodes, stride)

    def _node(self, api: CoreApi) -> tuple:
        node = self.node_addrs[api.core_id]
        return node, node + self.flag_stride

    def acquire(self, api: CoreApi):
        """Enqueue own node; sleep on the flag if there is a predecessor."""
        next_addr, flag_addr = self._node(api)
        yield from api.sw(next_addr, self.NIL)
        yield from api.sw(flag_addr, 0)
        predecessor = yield from api.amo_swap(self.tail_addr,
                                              self.node_addrs[api.core_id])
        if predecessor == self.NIL:
            return  # lock was free
        # Link behind the predecessor, then sleep until woken.
        yield from api.sw(predecessor, self.node_addrs[api.core_id])
        yield from self._wait_flag(api, flag_addr)

    def _wait_flag(self, api: CoreApi, flag_addr: int):
        """Mwait on the own flag, falling back to polling on QUEUE_FULL."""
        attempt = 0
        while True:
            resp = yield from api.mwait(flag_addr, expected=0)
            if resp.status is not Status.QUEUE_FULL:
                if resp.value != 0:
                    return
                continue  # spurious: value unchanged, monitor again
            # Bounded hardware rejected the monitor: poll politely.
            value = yield from api.lw(flag_addr)
            if value != 0:
                return
            yield from api.compute(
                self.fallback_backoff.delay(api.rng, attempt))
            attempt += 1

    def release(self, api: CoreApi):
        """Hand the lock to the successor, or swing the tail back to NIL."""
        next_addr, _flag_addr = self._node(api)
        successor = yield from api.lw(next_addr)
        if successor == self.NIL:
            # Appear to be last: CAS(tail, own node, NIL) via LRSCwait.
            swung = yield from self._try_swing_tail(api)
            if swung:
                return
            # A racing enqueuer took the tail; wait for its link.
            successor = yield from self._await_successor(api, next_addr)
        yield from api.sw(successor + self.flag_stride, 1)

    def _try_swing_tail(self, api: CoreApi):
        """CAS tail from own node to NIL; returns True on success."""
        own = self.node_addrs[api.core_id]
        attempt = 0
        while True:
            resp = yield from api.lrwait(self.tail_addr)
            if resp.status is Status.QUEUE_FULL:
                yield from api.compute(
                    self.fallback_backoff.delay(api.rng, attempt))
                attempt += 1
                continue
            if resp.value == own:
                success = yield from api.scwait(self.tail_addr, self.NIL)
                if success:
                    return True
                continue
            # Tail moved on: write back unchanged to drain the queue.
            yield from api.scwait(self.tail_addr, resp.value)
            return False

    def _await_successor(self, api: CoreApi, next_addr: int):
        """Sleep (Mwait) until the successor links itself behind us."""
        attempt = 0
        while True:
            resp = yield from api.mwait(next_addr, expected=self.NIL)
            if resp.status is Status.QUEUE_FULL:
                value = yield from api.lw(next_addr)
                if value != self.NIL:
                    return value
                yield from api.compute(
                    self.fallback_backoff.delay(api.rng, attempt))
                attempt += 1
                continue
            if resp.value != self.NIL:
                return resp.value


class TicketLock:
    """Fetch-and-add ticket lock (FIFO-fair spin lock).

    Not part of the paper's Fig. 4 roster; used by the ablation benches
    as a fair polling baseline against the Mwait MCS lock.
    """

    def __init__(self, ticket_addr: int, serving_addr: int,
                 backoff=FixedBackoff(16)) -> None:
        self.ticket_addr = ticket_addr
        self.serving_addr = serving_addr
        self.backoff = backoff

    @classmethod
    def create(cls, machine) -> "TicketLock":
        """Allocate the ticket/serving counter pair."""
        return cls(machine.allocator.alloc_interleaved(1),
                   machine.allocator.alloc_interleaved(1))

    def acquire(self, api: CoreApi):
        """Take a ticket, poll now-serving until it matches."""
        ticket = yield from api.amo_add(self.ticket_addr, 1)
        attempt = 0
        while True:
            serving = yield from api.lw(self.serving_addr)
            if serving == ticket:
                return
            yield from api.compute(self.backoff.delay(api.rng, attempt))
            attempt += 1

    def release(self, api: CoreApi):
        """Advance now-serving (only the holder writes it)."""
        serving = yield from api.lw(self.serving_addr)
        yield from api.sw(self.serving_addr, serving + 1)
