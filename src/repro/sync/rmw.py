"""Generic atomic read-modify-write sequences.

These are the software idioms the paper benchmarks against each other
(§V-A, histogram): the same *fetch-and-modify* expressed through each
primitive.  All helpers are generator functions used with
``yield from`` inside kernels and return the **old** value:

* :func:`amo_fetch_add` — one ``amoadd`` instruction (the roofline; only
  possible when the modification is an addition);
* :func:`lrsc_fetch_modify` — the classic LR/SC retry loop, with
  backoff after failed SCs;
* :func:`wait_fetch_modify` — the LRwait/SCwait sequence: no retry loop
  in the common case, the core sleeps until served.  On bounded
  hardware (small LRSCwait queues or exhausted Colibri address slots)
  the LRwait itself can bounce with ``QUEUE_FULL``, and the helper
  retries after a short randomized wait — this is the software contract
  §III-B describes.

``modify`` is a plain Python function ``old -> new`` standing for the
register computation between the load and the store; its cost in cycles
is modelled by ``compute_cycles``.
"""

from __future__ import annotations

from typing import Callable

from ..cores.api import CoreApi
from ..interconnect.messages import Status
from .backoff import (
    DEFAULT_LRSC_BACKOFF,
    QUEUE_FULL_BACKOFF,
)


def amo_fetch_add(api: CoreApi, addr: int, value: int = 1):
    """Fetch-and-add through the single AMO instruction."""
    old = yield from api.amo_add(addr, value)
    return old


def lrsc_fetch_modify(api: CoreApi, addr: int,
                      modify: Callable[[int], int],
                      compute_cycles: int = 1,
                      backoff=DEFAULT_LRSC_BACKOFF):
    """Generic RMW via LR/SC with retry-on-failure.

    Returns the old value once an SC finally succeeds.  Every failed SC
    costs a full round trip plus the backoff wait — the polling/retry
    traffic LRSCwait eliminates.
    """
    attempt = 0
    while True:
        old = yield from api.lr(addr)
        yield from api.compute(compute_cycles)
        success = yield from api.sc(addr, modify(old))
        if success:
            return old
        delay = backoff.delay(api.rng, attempt)
        yield from api.compute(delay)
        attempt += 1


def wait_fetch_modify(api: CoreApi, addr: int,
                      modify: Callable[[int], int],
                      compute_cycles: int = 1,
                      full_backoff=QUEUE_FULL_BACKOFF):
    """Generic RMW via LRwait/SCwait.

    The LRwait response only arrives when this core is the queue head,
    so the subsequent SCwait succeeds unless an interfering plain store
    hit the address in between (rare by construction); then the whole
    sequence retries.  A ``QUEUE_FULL`` bounce retries after a short
    randomized wait.
    """
    attempt = 0
    while True:
        resp = yield from api.lrwait(addr)
        if resp.status is Status.QUEUE_FULL:
            delay = full_backoff.delay(api.rng, attempt)
            yield from api.compute(delay)
            attempt += 1
            continue
        old = resp.value
        yield from api.compute(compute_cycles)
        success = yield from api.scwait(addr, modify(old))
        if success:
            return old
        attempt += 1


def fetch_add(api: CoreApi, addr: int, value: int, method: str,
              **kwargs):
    """Fetch-and-add through the primitive named by ``method``.

    ``method`` is one of ``"amo"``, ``"lrsc"``, ``"wait"`` — the same
    naming the evaluation harness uses for histogram variants.
    """
    if method == "amo":
        old = yield from amo_fetch_add(api, addr, value)
        return old
    if method == "lrsc":
        old = yield from lrsc_fetch_modify(
            api, addr, lambda v: v + value, **kwargs)
        return old
    if method == "wait":
        old = yield from wait_fetch_modify(
            api, addr, lambda v: v + value, **kwargs)
        return old
    raise ValueError(f"unknown RMW method {method!r}")
