"""Pluggable telemetry: probes, contention heatmaps, trace export.

The simulator's aggregate counters (:mod:`repro.engine.stats`) say how
a run ended; telemetry says *where the cycles went on the way*.  A
:class:`~repro.telemetry.probes.Probe` subscribes to narrow hook points
on the event kernel, cores, banks and interconnect (via the
:class:`~repro.telemetry.hub.Telemetry` hub each
:class:`~repro.engine.simulator.Simulator` owns), folds observations
into compact state during the run, and reports a JSON-able section
afterwards.  Probes cost ~zero when not installed: every hook site is
one attribute load and one branch, same as the ``tracer.enabled``
gating.

Built-in probes (``repro trace --probe <name>``):

* ``bank_contention`` — per-bank access/conflict/retry counters binned
  over cycle windows (the contention heatmap);
* ``core_timeline`` — running/stalled/sleeping spans per core;
* ``queue_occupancy`` — reservation/wait-queue depth over time;
* ``message_latency`` — per-op round-trip histograms + traffic classes.

Typical use through the scenario layer::

    from repro.scenarios import default_spec, run_scenario

    result = run_scenario(default_spec("histogram"),
                          probes=["bank_contention", "core_timeline"])
    print(result.telemetry.render())
    result.telemetry.save_json("telemetry.json")

or directly on a machine::

    machine = Machine(config, variant)
    machine.attach_probes(["bank_contention"])
    ...load and run...
    report = TelemetryReport.collect(machine)

User probes register exactly like workloads::

    @register_probe("my_probe")
    class MyProbe(Probe):
        def install(self, machine):
            machine.telemetry.subscribe("bank_access", self._on_access)
"""

from .hub import HOOKS, Telemetry
from .probes import (
    Probe,
    UnknownProbeError,
    create_probe,
    get_probe,
    list_probes,
    register_probe,
    unregister_probe,
)
from .report import TelemetryReport
from .schema import SchemaError, validate_report

# Importing the module registers the built-in probes; it must come
# after the imports above (it reaches back into .probes).
from . import builtin as _builtin_probes  # noqa: E402,F401
from .builtin import (
    BankContention,
    CoreTimeline,
    MessageLatency,
    QueueOccupancy,
)

__all__ = [
    "BankContention",
    "CoreTimeline",
    "HOOKS",
    "MessageLatency",
    "Probe",
    "QueueOccupancy",
    "SchemaError",
    "Telemetry",
    "TelemetryReport",
    "UnknownProbeError",
    "create_probe",
    "get_probe",
    "list_probes",
    "register_probe",
    "unregister_probe",
    "validate_report",
]
