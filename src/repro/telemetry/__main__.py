"""``python -m repro.telemetry <report.json> [...]`` — schema validation.

Thin wrapper over :func:`repro.telemetry.schema.main` so CI can
validate exported telemetry reports without tripping runpy's
already-imported-module warning.
"""

import sys

from .schema import main

if __name__ == "__main__":
    sys.exit(main())
