"""Built-in telemetry probes.

Four probes cover the paper's diagnostic questions:

* :class:`BankContention` — *where do the cycles go under contention?*
  Per-bank access/conflict/queued-cycle counters binned over fixed
  cycle windows (the contention heatmap), plus failed-response counts
  (the retry storms LR/SC suffers on hot bins).
* :class:`CoreTimeline` — *what is each core doing?*  Contiguous
  running/stalled/sleeping state spans per core, the data behind the
  ASCII timeline and the VCD core signals.
* :class:`QueueOccupancy` — *how full are the reservation queues?*
  Wait-queue depth over time per bank for LRSCwait's bounded queue and
  Colibri's distributed waiter lists.
* :class:`MessageLatency` — *how long do requests take?*  Power-of-two
  round-trip histograms per operation, plus interconnect message counts
  by distance class.

Probes receive message objects duck-typed (``msg.op.value`` when the
message carries an op, ``wakeup_request`` otherwise), so this module
needs nothing from the interconnect layer.
"""

from __future__ import annotations

from .probes import Probe, register_probe


def _op_name(msg) -> str:
    """Mnemonic of a bank-port message (requests and WakeUpRequests)."""
    op = getattr(msg, "op", None)
    return op.value if op is not None else "wakeup_request"


@register_probe("bank_contention")
class BankContention(Probe):
    """Per-bank access/conflict/retry counters over cycle windows."""

    description = ("per-bank port accesses, conflicts, queued cycles and "
                   "failed responses, binned over cycle windows "
                   "(the contention heatmap)")

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        #: bank -> window index -> [accesses, conflicts, queued_cycles]
        self._windows: dict = {}
        #: bank -> [accesses, conflicts, queued_cycles, failed_responses]
        self._totals: dict = {}
        self._num_banks = 0

    def install(self, machine) -> None:
        self._num_banks = machine.config.num_banks
        machine.telemetry.subscribe("bank_access", self._on_access)
        machine.telemetry.subscribe("bank_response", self._on_response)

    def _on_access(self, cycle, bank_id, msg, queued) -> None:
        bucket = self._windows.setdefault(bank_id, {})
        index = cycle // self.window
        cell = bucket.get(index)
        if cell is None:
            cell = bucket[index] = [0, 0, 0]
        cell[0] += 1
        totals = self._totals.get(bank_id)
        if totals is None:
            totals = self._totals[bank_id] = [0, 0, 0, 0]
        totals[0] += 1
        if queued:
            cell[1] += 1
            cell[2] += queued
            totals[1] += 1
            totals[2] += queued

    def _on_response(self, cycle, bank_id, resp) -> None:
        if resp.status.value != "ok":
            totals = self._totals.get(bank_id)
            if totals is None:
                totals = self._totals[bank_id] = [0, 0, 0, 0]
            totals[3] += 1

    def report(self) -> dict:
        banks = []
        for bank_id in range(self._num_banks):
            totals = self._totals.get(bank_id, [0, 0, 0, 0])
            windows = self._windows.get(bank_id, {})
            banks.append({
                "bank": bank_id,
                "accesses": totals[0],
                "conflicts": totals[1],
                "queued_cycles": totals[2],
                "failed_responses": totals[3],
                "windows": [[index] + list(cell)
                            for index, cell in sorted(windows.items())],
            })
        return {"window_cycles": self.window, "banks": banks}


@register_probe("core_timeline")
class CoreTimeline(Probe):
    """Running/stalled/sleeping state spans per core."""

    description = ("contiguous FSM-state spans per core "
                   "(active/stalled/sleeping timeline; VCD-exportable)")

    def __init__(self) -> None:
        #: core -> [[state, start, end], ...] closed spans.
        self._spans: dict = {}
        #: core -> (state, since_cycle) currently open span.
        self._open: dict = {}
        self._closed = False

    def install(self, machine) -> None:
        now = machine.sim.now
        for core in machine.cores:
            self._spans[core.core_id] = []
            self._open[core.core_id] = (core.state, now)
        machine.telemetry.subscribe("core_state", self._on_state)

    def _on_state(self, cycle, core_id, state) -> None:
        old_state, start = self._open[core_id]
        if cycle > start:
            self._spans[core_id].append([old_state, start, cycle])
        self._open[core_id] = (state, cycle)

    def finalize(self, machine, stats) -> None:
        if self._closed:
            return
        self._closed = True
        end = machine.sim.now
        for core_id, (state, start) in self._open.items():
            if end > start:
                self._spans[core_id].append([state, start, end])

    def spans(self) -> dict:
        """core_id -> closed ``[state, start, end]`` spans (post-run)."""
        return {core: list(spans) for core, spans in self._spans.items()}

    def report(self) -> dict:
        totals: dict = {}
        cores = []
        for core_id in sorted(self._spans):
            spans = self._spans[core_id]
            for state, start, end in spans:
                totals[state] = totals.get(state, 0) + (end - start)
            cores.append({"core": core_id, "spans": spans})
        return {"cores": cores, "state_totals": totals}


@register_probe("queue_occupancy")
class QueueOccupancy(Probe):
    """Reservation/wait-queue depth over time per bank."""

    description = ("wait-queue occupancy samples, max depth and "
                   "time-weighted mean depth per bank")

    def __init__(self) -> None:
        #: bank -> [[cycle, depth], ...] one sample per change-cycle.
        self._samples: dict = {}
        self._means: dict = {}
        self._num_banks = 0

    def install(self, machine) -> None:
        self._num_banks = machine.config.num_banks
        machine.telemetry.subscribe("queue_depth", self._on_depth)

    def _on_depth(self, cycle, bank_id, depth) -> None:
        samples = self._samples.setdefault(bank_id, [])
        if samples and samples[-1][0] == cycle:
            samples[-1][1] = depth
        else:
            samples.append([cycle, depth])

    def finalize(self, machine, stats) -> None:
        end = machine.sim.now
        for bank_id, samples in self._samples.items():
            if end <= 0:
                self._means[bank_id] = 0.0
                continue
            area = 0
            previous_cycle, previous_depth = 0, 0
            for cycle, depth in samples:
                area += previous_depth * (cycle - previous_cycle)
                previous_cycle, previous_depth = cycle, depth
            area += previous_depth * (end - previous_cycle)
            self._means[bank_id] = area / end

    def report(self) -> dict:
        banks = []
        for bank_id in range(self._num_banks):
            samples = self._samples.get(bank_id, [])
            banks.append({
                "bank": bank_id,
                "max_depth": max((depth for _c, depth in samples),
                                 default=0),
                "mean_depth": self._means.get(bank_id, 0.0),
                "samples": samples,
            })
        return {"banks": banks}


@register_probe("message_latency")
class MessageLatency(Probe):
    """Round-trip latency histograms and interconnect traffic classes."""

    description = ("per-op round-trip latency histograms (power-of-two "
                   "buckets) plus message counts per route class")

    def __init__(self) -> None:
        #: op -> [count, total, max, {bucket_exponent: count}]
        self._round_trip: dict = {}
        #: kind -> {route class: count}
        self._messages: dict = {}

    def install(self, machine) -> None:
        machine.telemetry.subscribe("response", self._on_response)
        machine.telemetry.subscribe("message", self._on_message)

    def _on_response(self, cycle, core_id, resp, waited) -> None:
        entry = self._round_trip.get(resp.op.value)
        if entry is None:
            entry = self._round_trip[resp.op.value] = [0, 0, 0, {}]
        entry[0] += 1
        entry[1] += waited
        if waited > entry[2]:
            entry[2] = waited
        exponent = max(int(waited) - 1, 0).bit_length()
        buckets = entry[3]
        buckets[exponent] = buckets.get(exponent, 0) + 1

    def _on_message(self, cycle, kind, cls, latency, hops) -> None:
        by_class = self._messages.setdefault(kind, {})
        by_class[cls] = by_class.get(cls, 0) + 1

    def report(self) -> dict:
        round_trip = {}
        for op, (count, total, peak, buckets) in sorted(
                self._round_trip.items()):
            round_trip[op] = {
                "count": count,
                "total_cycles": total,
                "mean_cycles": total / count if count else 0.0,
                "max_cycles": peak,
                # Bucket upper bounds are powers of two: [upper, count]
                # counts waits in (upper/2, upper] cycles (the first
                # bucket, upper 1, also absorbs zero-cycle waits).
                "histogram": [[2 ** exponent, n]
                              for exponent, n in sorted(buckets.items())],
            }
        messages = {kind: dict(sorted(by_class.items()))
                    for kind, by_class in sorted(self._messages.items())}
        return {"round_trip": round_trip, "messages": messages}
