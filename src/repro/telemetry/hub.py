"""The telemetry hook hub: near-zero-cost observation points.

Every :class:`~repro.engine.simulator.Simulator` owns one
:class:`Telemetry` hub, and every modelled component holds a reference
to it.  A component guards each observation site with one attribute
load and one ``is not None`` branch::

    cb = self._telemetry.on_bank_access
    if cb is not None:
        cb(now, self.bank_id, msg, queued)

which is the same cost discipline as the ``tracer.enabled`` gating the
hot paths already pay — probes that are not installed cost nothing but
that branch (``BENCH_engine.json`` tracks that this stays within noise
of the PR-1 fast path).

Probes subscribe callbacks by hook name; the first subscriber is
installed directly (no dispatch indirection), further subscribers
promote the slot to a fan-out closure that preserves subscription
order, so multi-probe runs stay deterministic.

This module must stay free of ``repro`` imports: the simulator imports
it, so anything it pulled in would cycle back through the engine.
"""

from __future__ import annotations

from typing import Callable

#: Hook points, in dispatch-payload order:
#:
#: * ``bank_access(cycle, bank_id, msg, queued)`` — a request or
#:   WakeUpRequest entered a bank port; ``queued`` is how many cycles
#:   it waits behind the busy port (0 = serviced on arrival).
#: * ``bank_response(cycle, bank_id, resp)`` — a bank sent a
#:   :class:`~repro.interconnect.messages.MemResponse` (failures show
#:   retry pressure).
#: * ``core_state(cycle, core_id, state)`` — a core FSM transition
#:   (``active``/``stalled``/``sleeping``/``finished``).
#: * ``queue_depth(cycle, bank_id, depth)`` — a bank adapter's
#:   reservation/wait-queue occupancy changed.
#: * ``message(cycle, kind, cls, latency, hops)`` — the interconnect
#:   accepted a message of ``kind`` over a route of distance class
#:   ``cls`` (``local``/``group``/``remote``).
#: * ``response(cycle, core_id, resp, waited)`` — a core received the
#:   response to its outstanding request after ``waited`` cycles.
HOOKS = ("bank_access", "bank_response", "core_state", "queue_depth",
         "message", "response")


class Telemetry:
    """Dispatch hub for the simulator's observation hooks.

    Hook slots (``on_<hook>``) are ``None`` until someone subscribes,
    so observation sites pay only a load-and-branch when telemetry is
    off.  Subscription is append-only for the lifetime of one run;
    probes are per-run objects, so nothing ever unsubscribes.
    """

    __slots__ = tuple("on_" + hook for hook in HOOKS) + ("_subscribers",)

    def __init__(self) -> None:
        for hook in HOOKS:
            setattr(self, "on_" + hook, None)
        self._subscribers = {hook: [] for hook in HOOKS}

    def subscribe(self, hook: str, fn: Callable) -> None:
        """Attach ``fn`` to ``hook``; callbacks fire in subscription order."""
        try:
            subs = self._subscribers[hook]
        except KeyError:
            raise ValueError(
                f"unknown telemetry hook {hook!r}; hooks: {', '.join(HOOKS)}")
        subs.append(fn)
        if len(subs) == 1:
            target = fn
        else:
            chain = tuple(subs)

            def target(*args, _chain=chain):
                for receiver in _chain:
                    receiver(*args)

        setattr(self, "on_" + hook, target)

    def subscribers(self, hook: str) -> tuple:
        """The callbacks attached to ``hook``, in dispatch order."""
        return tuple(self._subscribers[hook])

    @property
    def active(self) -> bool:
        """True when at least one hook has a subscriber."""
        return any(self._subscribers[hook] for hook in HOOKS)
