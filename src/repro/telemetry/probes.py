"""The probe framework: base class and registry.

A *probe* is a per-run observer that subscribes to
:class:`~repro.telemetry.hub.Telemetry` hooks of one machine, folds the
stream of observations into compact state while the simulation runs,
and renders a JSON-able *section* afterwards.  Probe classes register
under a name with :func:`register_probe` — the exact mirror of the
workload registry in :mod:`repro.scenarios.registry`, including the
``replace=True`` shadowing escape hatch — and are looked up by name
from the CLI (``repro trace --probe <name>``) and from
:func:`repro.scenarios.run_scenario`.

Unlike workloads (stateless singletons), probes accumulate per-run
state, so the registry stores *classes* and :func:`create_probe`
instantiates a fresh one per run.
"""

from __future__ import annotations

from ..engine.errors import ConfigError


class UnknownProbeError(ConfigError):
    """A run named a telemetry probe that is not registered."""


class Probe:
    """Base class for telemetry probes.

    Lifecycle: ``install(machine)`` before the run (subscribe to hooks,
    snapshot initial state), the subscribed callbacks during the run,
    ``finalize(machine, stats)`` once after it, then ``report()`` for
    the JSON-able section.  Probes observe only — they must never
    mutate the machine or schedule events.
    """

    #: Registry name, filled by :func:`register_probe`.
    name: str = ""
    description: str = ""

    def install(self, machine) -> None:
        """Subscribe to the machine's telemetry hooks; called pre-run."""
        raise NotImplementedError(
            f"probe {type(self).__name__} does not implement install()")

    def finalize(self, machine, stats) -> None:
        """Post-run accounting (close open spans, compute means)."""

    def report(self) -> dict:
        """The probe's JSON-able report section."""
        raise NotImplementedError(
            f"probe {type(self).__name__} does not implement report()")


#: name -> probe class.
_REGISTRY: dict = {}


def register_probe(name: str, *, replace: bool = False):
    """Class decorator registering a probe class under ``name``.

    Re-registering an existing name raises unless ``replace=True``,
    which user code can use to shadow a built-in deliberately.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(
            f"probe name must be a non-empty string, got {name!r}")

    def decorator(cls):
        if name in _REGISTRY and not replace:
            raise ConfigError(
                f"probe {name!r} already registered "
                f"({_REGISTRY[name].__name__}); "
                f"pass replace=True to shadow it")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_probe(name: str) -> None:
    """Remove a registration (mainly for tests tearing down fixtures)."""
    _REGISTRY.pop(name, None)


def get_probe(name: str) -> type:
    """The registered probe class, or :class:`UnknownProbeError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownProbeError(
            f"no probe registered under {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY)) or '(none)'}")


def create_probe(name: str, **options) -> Probe:
    """A fresh probe instance; ``options`` go to the class constructor."""
    cls = get_probe(name)
    try:
        return cls(**options)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"probe {name!r} rejected options {sorted(options)}: {exc}")


def list_probes() -> list:
    """``(name, probe_class)`` pairs, sorted by name."""
    return sorted(_REGISTRY.items())
