"""The telemetry report: collection, export, and ASCII rendering.

A :class:`TelemetryReport` bundles the sections of every probe attached
to one run together with enough run identity (workload, variant, shape,
seed, final cycle) to interpret them later.  It is plain data: it
round-trips through ``to_dict``/``from_dict`` (and JSON), flattens to
one CSV table per probe, and renders the paper-style diagnostics — the
per-bank contention heatmap and the core-state timeline — as ASCII via
:mod:`repro.eval.reporting`.

Reports are deliberately **not** stored in the scenario result cache
(see :func:`repro.scenarios.run.run_scenarios`): probe data scales with
run length, and cached sweep entries must stay slim.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from ..engine.errors import ConfigError

#: Bump when the report layout changes incompatibly.
REPORT_VERSION = 1

#: Core-state glyphs shared by the ASCII timeline and its legend.
TIMELINE_GLYPHS = {
    "idle": " ",
    "active": "#",
    "stalled": "-",
    "sleeping": ".",
    "finished": " ",
}


@dataclass
class TelemetryReport:
    """All probe sections of one run, plus the run's identity."""

    cycles: int
    num_cores: int
    num_banks: int
    variant: str
    seed: int
    probes: dict = field(default_factory=dict)
    workload: Optional[str] = None
    spec: Optional[dict] = None
    version: int = REPORT_VERSION

    @classmethod
    def collect(cls, machine, probes=None, spec=None) -> "TelemetryReport":
        """Assemble the report of a finished machine run.

        ``probes`` defaults to every probe attached to the machine;
        ``spec`` (a :class:`~repro.scenarios.spec.ScenarioSpec`) adds
        the scenario identity when the run came from one.
        """
        if probes is None:
            probes = machine.probes
        return cls(
            cycles=machine.stats.cycles,
            num_cores=machine.config.num_cores,
            num_banks=machine.config.num_banks,
            variant=machine.variant.label(),
            seed=machine.seed,
            probes={probe.name: probe.report() for probe in probes},
            workload=spec.workload if spec is not None else None,
            spec=spec.to_dict() if spec is not None else None,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "cycles": self.cycles,
            "num_cores": self.num_cores,
            "num_banks": self.num_banks,
            "variant": self.variant,
            "seed": self.seed,
            "workload": self.workload,
            "spec": self.spec,
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryReport":
        if not isinstance(data, dict):
            raise ConfigError(f"report data must be a dict, got {data!r}")
        known = {"version", "cycles", "num_cores", "num_banks", "variant",
                 "seed", "workload", "spec", "probes"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown report fields {unknown}")
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TelemetryReport":
        return cls.from_dict(json.loads(text))

    def save_json(self, path: str) -> str:
        """Write the JSON rendering to ``path``; returns the path."""
        with open(path, "w") as stream:
            stream.write(self.to_json(indent=2))
            stream.write("\n")
        return path

    # -- CSV export -----------------------------------------------------------

    def to_csv(self, directory: str) -> dict:
        """One CSV file per probe section under ``directory``.

        Returns ``{probe_name: path}``.  Known probes flatten to tidy
        long-format tables; unknown (user-registered) probes fall back
        to a generic key/value dump of their section's scalars.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {}
        for name, section in sorted(self.probes.items()):
            flatten = _CSV_FLATTENERS.get(name, _flatten_generic)
            headers, rows = flatten(section)
            path = os.path.join(directory, f"{name}.csv")
            with open(path, "w", newline="") as stream:
                writer = csv.writer(stream)
                writer.writerow(headers)
                writer.writerows(rows)
            paths[name] = path
        return paths

    # -- ASCII rendering ------------------------------------------------------

    def render(self, width: int = 64) -> str:
        """Human-readable dump: summary table plus per-probe views."""
        from ..eval.reporting import render_table
        rows = [("workload", self.workload or "(direct machine run)"),
                ("variant", self.variant),
                ("cores / banks", f"{self.num_cores} / {self.num_banks}"),
                ("seed", self.seed),
                ("cycles", self.cycles),
                ("probes", ", ".join(sorted(self.probes)) or "(none)")]
        parts = [render_table(["field", "value"], rows,
                              title="telemetry report")]
        for name in sorted(self.probes):
            renderer = _SECTION_RENDERERS.get(name)
            if renderer is not None:
                parts.append(renderer(self, self.probes[name], width))
        return "\n\n".join(parts)


# -- per-probe CSV flatteners -----------------------------------------------


def _flatten_bank_contention(section) -> tuple:
    headers = ["bank", "window_start", "accesses", "conflicts",
               "queued_cycles"]
    window = section["window_cycles"]
    rows = []
    for bank in section["banks"]:
        for index, accesses, conflicts, queued in bank["windows"]:
            rows.append([bank["bank"], index * window, accesses,
                         conflicts, queued])
    return headers, rows


def _flatten_core_timeline(section) -> tuple:
    rows = [[core["core"], state, start, end]
            for core in section["cores"]
            for state, start, end in core["spans"]]
    return ["core", "state", "start", "end"], rows


def _flatten_queue_occupancy(section) -> tuple:
    rows = [[bank["bank"], cycle, depth]
            for bank in section["banks"]
            for cycle, depth in bank["samples"]]
    return ["bank", "cycle", "depth"], rows


def _flatten_message_latency(section) -> tuple:
    headers = ["op", "bucket_le_cycles", "count"]
    rows = []
    for op, entry in section["round_trip"].items():
        for upper, count in entry["histogram"]:
            rows.append([op, upper, count])
    return headers, rows


def _flatten_generic(section) -> tuple:
    """Fallback for user-registered probes: top-level scalars only."""
    rows = [[key, value] for key, value in sorted(section.items())
            if isinstance(value, (int, float, str, bool))]
    return ["key", "value"], rows


_CSV_FLATTENERS = {
    "bank_contention": _flatten_bank_contention,
    "core_timeline": _flatten_core_timeline,
    "queue_occupancy": _flatten_queue_occupancy,
    "message_latency": _flatten_message_latency,
}


# -- per-probe ASCII views ----------------------------------------------------


def _render_bank_contention(report, section, width) -> str:
    from ..eval.reporting import render_heatmap, render_table
    window = section["window_cycles"]
    num_windows = max(1, -(-max(report.cycles, 1) // window))
    matrix = []
    labels = []
    idle = 0
    for bank in section["banks"]:
        if not bank["accesses"]:
            idle += 1
            continue
        dense = [0] * num_windows
        for index, accesses, _conflicts, _queued in bank["windows"]:
            if index < num_windows:
                dense[index] += accesses
        matrix.append(dense)
        labels.append(f"bank{bank['bank']}")
    suffix = f"; {idle} idle banks omitted" if idle else ""
    heat = render_heatmap(
        matrix, labels, width=width,
        title=(f"bank accesses per {window}-cycle window "
               f"(total {report.cycles} cycles{suffix})"))
    rows = [(bank["bank"], bank["accesses"], bank["conflicts"],
             bank["queued_cycles"], bank["failed_responses"])
            for bank in section["banks"] if bank["accesses"]]
    totals = render_table(
        ["bank", "accesses", "conflicts", "queued cycles", "failed resp"],
        rows, title="bank totals (banks with traffic)")
    return heat + "\n\n" + totals


def _render_core_timeline(report, section, width) -> str:
    from ..eval.reporting import render_timeline
    lanes = [(f"core{core['core']}",
              [(state, start, end) for state, start, end in core["spans"]])
             for core in section["cores"]]
    legend = "  ".join(f"{glyph or ' '!r}={state}"
                       for state, glyph in TIMELINE_GLYPHS.items()
                       if glyph.strip())
    timeline = render_timeline(
        lanes, end=max(report.cycles, 1), width=width,
        glyphs=TIMELINE_GLYPHS,
        title=f"core states over {report.cycles} cycles ({legend})")
    return timeline


def _render_queue_occupancy(report, section, width) -> str:
    from ..eval.reporting import render_table
    rows = [(bank["bank"], bank["max_depth"], bank["mean_depth"])
            for bank in section["banks"] if bank["samples"]]
    if not rows:
        rows = [("(no queue activity)", "", "")]
    return render_table(["bank", "max depth", "mean depth"], rows,
                        title="reservation/wait-queue occupancy")


def _render_message_latency(report, section, width) -> str:
    from ..eval.reporting import render_table
    rows = [(op, entry["count"], entry["mean_cycles"], entry["max_cycles"])
            for op, entry in section["round_trip"].items()]
    return render_table(["op", "count", "mean cycles", "max cycles"], rows,
                        title="request round-trip latency")


_SECTION_RENDERERS = {
    "bank_contention": _render_bank_contention,
    "core_timeline": _render_core_timeline,
    "queue_occupancy": _render_queue_occupancy,
    "message_latency": _render_message_latency,
}
