"""Structural validation of exported telemetry reports.

CI exports ``repro trace`` reports as JSON and validates them here
before uploading the artifacts, so a probe whose section drifts from
the documented layout fails the pipeline rather than shipping a broken
artifact.  No external schema library: the checks are plain functions
over the dict, which keeps the dependency surface at zero.

Run standalone over one or more files::

    python -m repro.telemetry.schema report.json [more.json ...]

exits 0 when every file validates, 2 with a message otherwise.
"""

from __future__ import annotations

import json
import sys

from ..engine.errors import ConfigError


class SchemaError(ConfigError):
    """An exported telemetry report does not match the documented shape."""


def _require(data: dict, key: str, types, where: str):
    if key not in data:
        raise SchemaError(f"{where}: missing key {key!r}")
    value = data[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise SchemaError(
            f"{where}: {key!r} must be {types}, got {type(value).__name__}")
    return value


def _check_spans(spans, where: str) -> None:
    for span in spans:
        if (not isinstance(span, list) or len(span) != 3
                or not isinstance(span[0], str)
                or not all(isinstance(item, int) for item in span[1:])):
            raise SchemaError(f"{where}: bad span {span!r} "
                              "(want [state, start, end])")
        if span[2] < span[1]:
            raise SchemaError(f"{where}: span {span!r} ends before it starts")


def validate_report(data: dict) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid report."""
    if not isinstance(data, dict):
        raise SchemaError(f"report must be a dict, got {type(data).__name__}")
    _require(data, "version", int, "report")
    _require(data, "cycles", int, "report")
    _require(data, "num_cores", int, "report")
    _require(data, "num_banks", int, "report")
    _require(data, "variant", str, "report")
    _require(data, "seed", int, "report")
    probes = _require(data, "probes", dict, "report")
    for name, section in probes.items():
        if not isinstance(section, dict):
            raise SchemaError(f"probes[{name!r}]: section must be a dict")
        checker = _SECTION_CHECKERS.get(name)
        if checker is not None:
            checker(section, f"probes[{name!r}]")


def _check_bank_contention(section: dict, where: str) -> None:
    _require(section, "window_cycles", int, where)
    banks = _require(section, "banks", list, where)
    for bank in banks:
        for key in ("bank", "accesses", "conflicts", "queued_cycles",
                    "failed_responses"):
            _require(bank, key, int, f"{where}.banks")
        windows = _require(bank, "windows", list, f"{where}.banks")
        for cell in windows:
            if not (isinstance(cell, list) and len(cell) == 4
                    and all(isinstance(item, int) for item in cell)):
                raise SchemaError(
                    f"{where}: bad window cell {cell!r} "
                    "(want [index, accesses, conflicts, queued])")


def _check_core_timeline(section: dict, where: str) -> None:
    cores = _require(section, "cores", list, where)
    for core in cores:
        _require(core, "core", int, f"{where}.cores")
        _check_spans(_require(core, "spans", list, f"{where}.cores"),
                     f"{where}.cores[{core.get('core')}]")
    _require(section, "state_totals", dict, where)


def _check_queue_occupancy(section: dict, where: str) -> None:
    banks = _require(section, "banks", list, where)
    for bank in banks:
        _require(bank, "bank", int, f"{where}.banks")
        _require(bank, "max_depth", int, f"{where}.banks")
        _require(bank, "mean_depth", (int, float), f"{where}.banks")
        for sample in _require(bank, "samples", list, f"{where}.banks"):
            if not (isinstance(sample, list) and len(sample) == 2
                    and all(isinstance(item, int) for item in sample)):
                raise SchemaError(f"{where}: bad sample {sample!r}")


def _check_message_latency(section: dict, where: str) -> None:
    round_trip = _require(section, "round_trip", dict, where)
    for op, entry in round_trip.items():
        sub = f"{where}.round_trip[{op!r}]"
        _require(entry, "count", int, sub)
        _require(entry, "total_cycles", int, sub)
        _require(entry, "mean_cycles", (int, float), sub)
        _require(entry, "max_cycles", int, sub)
        for bucket in _require(entry, "histogram", list, sub):
            if not (isinstance(bucket, list) and len(bucket) == 2
                    and all(isinstance(item, int) for item in bucket)):
                raise SchemaError(f"{sub}: bad histogram bucket {bucket!r}")
    _require(section, "messages", dict, where)


_SECTION_CHECKERS = {
    "bank_contention": _check_bank_contention,
    "core_timeline": _check_core_timeline,
    "queue_occupancy": _check_queue_occupancy,
    "message_latency": _check_message_latency,
}


def main(argv=None) -> int:
    """Validate JSON report files given on the command line."""
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.telemetry.schema report.json [...]")
        return 2
    for path in paths:
        try:
            with open(path) as stream:
                data = json.load(stream)
            validate_report(data)
        except (OSError, ValueError, SchemaError) as exc:
            print(f"schema: {path}: {exc}")
            return 2
        print(f"schema: {path}: ok "
              f"({', '.join(sorted(data.get('probes', {}))) or 'no probes'})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
