"""Workload generators: index streams and the interference experiment."""

from .interference import (
    InterferenceResult,
    endless_histogram_kernel,
    run_interference,
)
from .streams import sequential_stream, uniform_stream, zipf_stream

__all__ = [
    "InterferenceResult",
    "endless_histogram_kernel",
    "run_interference",
    "sequential_stream",
    "uniform_stream",
    "zipf_stream",
]
