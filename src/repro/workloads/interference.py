"""The interference workload of Fig. 5.

The system is partitioned into *pollers* — cores endlessly performing
atomic histogram updates on a handful of bins — and *workers* — cores
computing a matrix multiplication.  Pollers and workers share only the
banks and the interconnect; any worker slowdown is pure interference
from the atomics' traffic.

The experiment runs twice: once with pollers idle (baseline makespan)
and once with them hammering; the figure's y-axis is
``baseline_makespan / interfered_makespan``.

Poller kernels run *forever* (matching the paper's setup where atomics
saturate for the whole measurement); the run stops when the watched
workers finish.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.histogram import Histogram
from ..algorithms.matmul import Matmul
from ..arch.config import SystemConfig
from ..machine import Machine
from ..memory.variants import VariantSpec
from ..sync.backoff import PAPER_LOCK_BACKOFF
from ..sync.rmw import fetch_add


def endless_histogram_kernel(histogram: Histogram, api, method: str,
                             backoff=PAPER_LOCK_BACKOFF):
    """Poller: update random bins until the simulation stops.

    LRSC pollers retry with the paper's fixed 128-cycle backoff
    ("despite a backoff of 128 cycles", §V-B); the backoff is ignored
    by methods that never retry.
    """
    kwargs = {"backoff": backoff} if method == "lrsc" else {}
    while True:
        index = api.rng.randrange(histogram.num_bins)
        yield from fetch_add(api, histogram.bin_addr(index), 1, method,
                             **kwargs)
        yield from api.retire()


@dataclass
class InterferenceResult:
    """One Fig. 5 point."""

    num_pollers: int
    num_workers: int
    num_bins: int
    method: str
    baseline_cycles: int
    interfered_cycles: int

    @property
    def relative_throughput(self) -> float:
        """Worker speed with interference relative to without (<= 1)."""
        if self.interfered_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.interfered_cycles


def measure_interference(config: SystemConfig, variant: VariantSpec,
                         method: str, num_workers: int, num_bins: int,
                         matmul_dim: int = 16, seed: int = 0) -> tuple:
    """The paired measurement: ``(InterferenceResult, interfered stats)``.

    ``method`` is the pollers' RMW flavour (``"amo"``, ``"lrsc"``,
    ``"wait"``); workers always run the same matmul.  The poller count
    is ``num_cores - num_workers``.  This is the execution engine
    behind the ``interference`` scenario; library callers use
    :func:`run_interference` (spec-routed, cacheable) instead.
    """
    num_pollers = config.num_cores - num_workers
    if num_pollers < 0:
        raise ValueError("more workers than cores")
    # Workers take the highest core ids: the histogram bins live in the
    # low banks (tile 0), so workers are remote from the hot tile and
    # experience interference through the shared interconnect, not by
    # sitting next to the bins.
    worker_ids = list(range(config.num_cores - num_workers,
                            config.num_cores))
    poller_ids = list(range(config.num_cores - num_workers))

    def build(load_pollers: bool) -> tuple:
        machine = Machine(config, variant, seed=seed)
        matmul = Matmul(machine, matmul_dim)
        matmul.fill_inputs()
        histogram = Histogram(machine, num_bins)
        rows = matmul.partition_rows(num_workers)
        for worker_index, core_id in enumerate(worker_ids):
            machine.load(core_id,
                         lambda api, r=rows[worker_index]:
                         matmul.worker_kernel(api, r))
        if load_pollers:
            for core_id in poller_ids:
                machine.load(core_id,
                             lambda api: endless_histogram_kernel(
                                 histogram, api, method))
        stats = machine.run_until_finished(worker_ids)
        finish = max(machine.cores[i].finish_cycle for i in worker_ids)
        return finish, stats

    baseline, _baseline_stats = build(load_pollers=False)
    interfered, stats = build(load_pollers=True)
    result = InterferenceResult(
        num_pollers=num_pollers, num_workers=num_workers,
        num_bins=num_bins, method=method,
        baseline_cycles=baseline, interfered_cycles=interfered)
    return result, stats


def run_interference(config: SystemConfig, variant: VariantSpec,
                     method: str, num_workers: int, num_bins: int,
                     matmul_dim: int = 16, seed: int = 0
                     ) -> InterferenceResult:
    """Measure matmul slowdown under atomic interference.

    A thin spec factory: the arguments become an ``interference``
    :class:`~repro.scenarios.spec.ScenarioSpec` and run through
    :func:`~repro.scenarios.run.run_scenario`, so results are
    cache/shard-compatible with every other scenario.  The signature
    (and the returned :class:`InterferenceResult`) is unchanged from
    the pre-spec API.
    """
    from ..scenarios import interference_spec, run_scenario
    spec = interference_spec(config, variant, method, num_workers,
                             num_bins, matmul_dim=matmul_dim, seed=seed)
    return run_scenario(spec).point
