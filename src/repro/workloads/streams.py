"""Workload index streams.

The paper's histogram draws bins uniformly; real workloads are often
skewed.  These generators produce deterministic per-core index streams
for the histogram and queue workloads:

* :func:`uniform_stream` — i.i.d. uniform bins (paper's setup);
* :func:`zipf_stream` — Zipf-distributed bins (hot-spot extension used
  by the ablation benches: contention concentrates on few bins even
  when many exist);
* :func:`sequential_stream` — round-robin (zero contention reference).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator


def uniform_stream(rng: random.Random, num_bins: int,
                   count: int) -> Iterator[int]:
    """``count`` i.i.d. uniform indices in ``[0, num_bins)``."""
    for _ in range(count):
        yield rng.randrange(num_bins)


def zipf_stream(rng: random.Random, num_bins: int, count: int,
                exponent: float = 1.0) -> Iterator[int]:
    """``count`` Zipf(``exponent``)-distributed indices.

    Rank 1 (index 0) is the hottest bin.  ``exponent = 0`` degenerates
    to uniform.
    """
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_bins + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc / total)
    last = num_bins - 1
    for _ in range(count):
        # C-speed binary search over the precomputed CDF; this is the
        # hot-spot scenarios' per-draw hot path.  bisect_left returns
        # the first index whose cumulative mass reaches the sample
        # (identical to the explicit loop it replaced); the clamp only
        # guards the cumulative[-1] < 1.0 rounding corner.
        yield min(bisect_left(cumulative, rng.random()), last)


def sequential_stream(start: int, num_bins: int,
                      count: int) -> Iterator[int]:
    """Round-robin indices starting at ``start`` (conflict-free when
    cores use distinct starts and ``num_bins >= num_cores``)."""
    for offset in range(count):
        yield (start + offset) % num_bins
