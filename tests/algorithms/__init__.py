"""Test package: makes relative conftest imports resolvable."""
