"""Tests for the concurrent histogram workload."""

import pytest

from repro import VariantSpec
from repro.algorithms.histogram import Histogram, create_shared_mcs_locks
from repro.sync.backoff import FixedBackoff
from repro.sync.locks import AmoSpinLock, ColibriSpinLock, LrscSpinLock, MwaitMcsLock

from ..conftest import make_machine

CORES = 8
UPDATES = 6


def build(variant, num_bins, method, lock_cls=None, seed=0):
    machine = make_machine(CORES, variant, seed=seed)
    histogram = Histogram(machine, num_bins)
    if lock_cls is not None:
        if lock_cls is MwaitMcsLock:
            histogram.attach_locks(lock_cls)
        else:
            histogram.attach_locks(lock_cls, backoff=FixedBackoff(32))
        machine.load_all(histogram.kernel_factory("lock", UPDATES))
    else:
        machine.load_all(histogram.kernel_factory(method, UPDATES))
    stats = machine.run()
    return machine, histogram, stats


@pytest.mark.parametrize("num_bins", [1, 4, 16])
def test_amo_histogram_conserves_updates(num_bins):
    _m, histogram, _s = build(VariantSpec.amo(), num_bins, "amo")
    histogram.verify(CORES * UPDATES)


@pytest.mark.parametrize("num_bins", [1, 4])
def test_lrsc_histogram_conserves_updates(num_bins):
    _m, histogram, _s = build(VariantSpec.lrsc(), num_bins, "lrsc")
    histogram.verify(CORES * UPDATES)


@pytest.mark.parametrize("variant", [VariantSpec.lrscwait_ideal(),
                                     VariantSpec.lrscwait(2),
                                     VariantSpec.colibri()])
def test_wait_histogram_conserves_updates(variant):
    _m, histogram, _s = build(variant, 2, "wait")
    histogram.verify(CORES * UPDATES)


@pytest.mark.parametrize("variant,lock_cls", [
    (VariantSpec.amo(), AmoSpinLock),
    (VariantSpec.lrsc(), LrscSpinLock),
    (VariantSpec.colibri(), ColibriSpinLock),
    (VariantSpec.colibri(), MwaitMcsLock),
])
def test_lock_histogram_conserves_updates(variant, lock_cls):
    _m, histogram, _s = build(variant, 2, "lock", lock_cls=lock_cls)
    histogram.verify(CORES * UPDATES)


def test_bins_land_one_per_bank():
    machine = make_machine(CORES, VariantSpec.amo())
    histogram = Histogram(machine, 8)
    banks = [machine.address_map.bank_of(histogram.bin_addr(i))
             for i in range(8)]
    assert banks == list(range(8))


def test_counts_match_per_bin_truth():
    machine, histogram, stats = build(VariantSpec.amo(), 4, "amo", seed=3)
    counts = histogram.counts()
    assert sum(counts) == CORES * UPDATES
    assert all(count >= 0 for count in counts)
    assert len(counts) == 4


def test_verify_raises_on_mismatch():
    machine = make_machine(4, VariantSpec.amo())
    histogram = Histogram(machine, 2)
    machine.poke(histogram.bin_addr(0), 5)
    with pytest.raises(AssertionError, match="lost"):
        histogram.verify(99)


def test_lock_kernel_requires_attach():
    machine = make_machine(4, VariantSpec.amo())
    histogram = Histogram(machine, 2)
    machine.load(0, histogram.kernel_factory("lock", 1))
    with pytest.raises(Exception, match="attach_locks"):
        machine.run()


def test_unknown_method_rejected():
    machine = make_machine(4, VariantSpec.amo())
    histogram = Histogram(machine, 2)
    with pytest.raises(ValueError):
        histogram.kernel_factory("bogus", 1)


def test_shared_mcs_locks_share_node_table():
    machine = make_machine(8, VariantSpec.colibri())
    locks = create_shared_mcs_locks(machine, 10)
    assert len(locks) == 10
    first_nodes = locks[0].node_addrs
    assert all(lock.node_addrs is first_nodes for lock in locks)
    tails = {lock.tail_addr for lock in locks}
    assert len(tails) == 10
