"""Tests for the matmul worker kernel."""

from repro import VariantSpec
from repro.algorithms.matmul import Matmul

from ..conftest import make_machine


def test_single_worker_computes_product():
    machine = make_machine(4, VariantSpec.amo())
    matmul = Matmul(machine, dim=6)
    matmul.fill_inputs(seed=3)
    machine.load(0, lambda api: matmul.worker_kernel(api, range(6)))
    machine.run()
    matmul.verify()


def test_parallel_workers_compute_product():
    machine = make_machine(8, VariantSpec.amo())
    matmul = Matmul(machine, dim=8)
    matmul.fill_inputs(seed=4)
    rows = matmul.partition_rows(8)
    for core_id in range(8):
        machine.load(core_id,
                     lambda api, r=rows[core_id]: matmul.worker_kernel(api, r))
    stats = machine.run()
    matmul.verify()
    assert stats.total_ops == 8 * 8  # one retire per output element


def test_partition_covers_all_rows_disjointly():
    machine = make_machine(4, VariantSpec.amo())
    matmul = Matmul(machine, dim=10)
    rows = matmul.partition_rows(3)
    flat = sorted(r for part in rows for r in part)
    assert flat == list(range(10))


def test_parallel_faster_than_serial():
    def run(workers):
        machine = make_machine(8, VariantSpec.amo())
        matmul = Matmul(machine, dim=8)
        matmul.fill_inputs()
        rows = matmul.partition_rows(workers)
        for core_id in range(workers):
            machine.load(core_id, lambda api, r=rows[core_id]:
                         matmul.worker_kernel(api, r))
        stats = machine.run()
        return stats.cycles

    serial = run(1)
    parallel = run(8)
    assert parallel < serial / 3  # decent scaling on 8 cores
