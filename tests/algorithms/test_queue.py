"""Correctness tests for the concurrent linked queue.

The invariants checked (whatever the synchronization method):

* conservation — every enqueued value is dequeued at most once, and
  enqueued-minus-dequeued values are exactly what remains in the list;
* per-producer FIFO — values from one producer are consumed in the
  order that producer enqueued them (MS-queue linearizability witness
  that does not require a global order);
* no duplication/corruption of node links.
"""

import pytest

from repro import VariantSpec
from repro.algorithms.mcs_queue import ConcurrentQueue, queue_worker_kernel
from repro.engine.errors import MemoryError_

from ..conftest import make_machine

METHOD_VARIANTS = [
    ("lrsc", VariantSpec.lrsc()),
    ("wait", VariantSpec.colibri()),
    ("wait", VariantSpec.lrscwait_ideal()),
    ("lock", VariantSpec.amo()),
]


def test_single_core_fifo():
    machine = make_machine(4, VariantSpec.colibri())
    queue = ConcurrentQueue(machine, "wait", nodes_per_core=8)
    popped = []

    def kernel(api):
        for value in (10, 20, 30):
            yield from queue.enqueue(api, value)
        for _ in range(3):
            ok, value = yield from queue.dequeue(api)
            assert ok
            popped.append(value)

    machine.load(0, kernel)
    machine.run()
    assert popped == [10, 20, 30]


def test_dequeue_empty_returns_not_ok():
    machine = make_machine(4, VariantSpec.colibri())
    queue = ConcurrentQueue(machine, "wait", nodes_per_core=4)
    results = []

    def kernel(api):
        ok, _ = yield from queue.dequeue(api)
        results.append(ok)

    machine.load(0, kernel)
    machine.run()
    assert results == [False]


@pytest.mark.parametrize("method,variant", METHOD_VARIANTS)
def test_concurrent_conservation(method, variant):
    cores, per_core = 8, 6
    machine = make_machine(cores, variant, seed=13)
    queue = ConcurrentQueue(machine, method, nodes_per_core=per_core)
    consumed = []

    def kernel(api):
        for seq in range(per_core):
            yield from queue.enqueue(api, api.core_id * 1000 + seq)
        for _ in range(per_core - 2):
            while True:
                ok, value = yield from queue.dequeue(api)
                if ok:
                    consumed.append(value)
                    break
                yield from api.compute(5)

    machine.load_all(kernel)
    machine.run()
    remaining = queue.drain_values()
    produced = {core * 1000 + seq
                for core in range(cores) for seq in range(per_core)}
    assert len(consumed) == cores * (per_core - 2)
    assert len(set(consumed)) == len(consumed)  # no duplication
    assert set(consumed) | set(remaining) == produced
    assert not set(consumed) & set(remaining)


@pytest.mark.parametrize("method,variant", METHOD_VARIANTS)
def test_per_producer_fifo(method, variant):
    cores, per_core = 8, 5
    machine = make_machine(cores, variant, seed=17)
    queue = ConcurrentQueue(machine, method, nodes_per_core=per_core)
    consumed = []

    def kernel(api):
        for seq in range(per_core):
            yield from queue.enqueue(api, api.core_id * 1000 + seq)
            yield from api.compute(api.rng.randrange(10))
        for _ in range(per_core):
            while True:
                ok, value = yield from queue.dequeue(api)
                if ok:
                    consumed.append(value)
                    break
                yield from api.compute(5)

    machine.load_all(kernel)
    machine.run()
    for core in range(cores):
        own = [v % 1000 for v in consumed if v // 1000 == core]
        assert own == sorted(own), f"producer {core} order violated"


def test_worker_kernel_retires_requested_ops():
    machine = make_machine(8, VariantSpec.colibri(), seed=19)
    queue = ConcurrentQueue(machine, "wait", nodes_per_core=10)
    machine.load_all(lambda api: queue_worker_kernel(queue, api, 12))
    stats = machine.run()
    assert all(c.ops_completed == 12 for c in stats.cores)


def test_arena_exhaustion_raises():
    machine = make_machine(4, VariantSpec.colibri())
    queue = ConcurrentQueue(machine, "wait", nodes_per_core=1)

    def kernel(api):
        yield from queue.enqueue(api, 1)
        yield from queue.enqueue(api, 2)  # second node must fail

    machine.load(0, kernel)
    with pytest.raises(Exception, match="arena"):
        machine.run()


def test_unknown_method_rejected():
    machine = make_machine(4, VariantSpec.amo())
    with pytest.raises(ValueError):
        ConcurrentQueue(machine, "bogus", nodes_per_core=2)


def test_head_tail_in_distinct_banks():
    machine = make_machine(4, VariantSpec.colibri())
    queue = ConcurrentQueue(machine, "wait", nodes_per_core=2)
    head_bank = machine.address_map.bank_of(queue.head_addr)
    tail_bank = machine.address_map.bank_of(queue.tail_addr)
    assert head_bank != tail_bank
