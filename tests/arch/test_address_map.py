"""Unit tests for the word-interleaved address map."""

import pytest

from repro.arch.address_map import AddressMap
from repro.arch.config import SystemConfig
from repro.engine.errors import MemoryError_


@pytest.fixture
def amap():
    return AddressMap(SystemConfig.scaled(16))


def test_consecutive_words_hit_consecutive_banks(amap):
    banks = [amap.bank_of(addr) for addr in range(0, 16 * 4, 4)]
    assert banks == list(range(16))


def test_wraps_to_next_row(amap):
    num_banks = amap.num_banks
    addr = num_banks * 4  # first word of row 1
    assert amap.bank_of(addr) == 0
    assert amap.row_of(addr) == 1


def test_locate_and_address_of_are_inverse(amap):
    for bank in (0, 1, amap.num_banks - 1):
        for row in (0, 5, amap.words_per_bank - 1):
            addr = amap.address_of(bank, row)
            assert amap.locate(addr) == (bank, row)


def test_misaligned_access_rejected(amap):
    with pytest.raises(MemoryError_):
        amap.bank_of(2)


def test_out_of_range_rejected(amap):
    with pytest.raises(MemoryError_):
        amap.bank_of(amap.memory_bytes)
    with pytest.raises(MemoryError_):
        amap.bank_of(-4)


def test_address_of_range_checks(amap):
    with pytest.raises(MemoryError_):
        amap.address_of(amap.num_banks, 0)
    with pytest.raises(MemoryError_):
        amap.address_of(0, amap.words_per_bank)


def test_every_word_maps_uniquely(amap):
    seen = set()
    for word in range(0, amap.num_banks * 2):
        location = amap.locate(word * 4)
        assert location not in seen
        seen.add(location)
