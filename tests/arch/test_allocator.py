"""Unit tests for the SPM allocator."""

import pytest

from repro.arch.allocator import Allocator
from repro.arch.config import SystemConfig
from repro.engine.errors import MemoryError_


@pytest.fixture
def alloc():
    return Allocator(SystemConfig.scaled(16))


def test_interleaved_spreads_across_banks(alloc):
    base = alloc.alloc_interleaved(8)
    banks = [alloc.address_map.bank_of(base + i * 4) for i in range(8)]
    assert banks == list(range(8))


def test_interleaved_allocations_do_not_overlap(alloc):
    first = alloc.alloc_interleaved(10)
    second = alloc.alloc_interleaved(10)
    first_words = {first + i * 4 for i in range(10)}
    second_words = {second + i * 4 for i in range(10)}
    assert not first_words & second_words


def test_row_aligned_starts_at_bank_zero(alloc):
    alloc.alloc_interleaved(3)  # misalign the low watermark
    base = alloc.alloc_row_aligned(4)
    assert alloc.address_map.bank_of(base) == 0


def test_alloc_in_bank_pins_bank(alloc):
    addr = alloc.alloc_in_bank(5, 3)
    stride = alloc.config.num_banks * 4
    for i in range(3):
        assert alloc.address_map.bank_of(addr + i * stride) == 5


def test_alloc_core_local_lands_in_core_tile(alloc):
    for core_id in range(alloc.config.num_cores):
        addr = alloc.alloc_core_local(core_id)
        bank = alloc.address_map.bank_of(addr)
        assert bank in alloc.topology.local_banks_of_core(core_id)


def test_pinned_allocations_do_not_collide(alloc):
    seen = set()
    for _ in range(10):
        addr = alloc.alloc_in_bank(2)
        assert addr not in seen
        seen.add(addr)


def test_bank_exhaustion_raises(alloc):
    words = alloc.config.words_per_bank
    alloc.alloc_in_bank(0, words)
    with pytest.raises(MemoryError_):
        alloc.alloc_in_bank(0, 1)


def test_region_collision_detected(alloc):
    # Fill nearly everything interleaved, then pin into the remainder.
    total = alloc.config.memory_words
    alloc.alloc_interleaved(total - alloc.config.num_banks)
    with pytest.raises(MemoryError_):
        alloc.alloc_in_bank(0, 2)


def test_zero_size_rejected(alloc):
    with pytest.raises(MemoryError_):
        alloc.alloc_interleaved(0)
    with pytest.raises(MemoryError_):
        alloc.alloc_in_bank(0, 0)


def test_words_free_decreases(alloc):
    before = alloc.words_free
    alloc.alloc_interleaved(64)
    assert alloc.words_free < before
