"""Unit tests for system configuration."""

import pytest

from repro.arch.config import LatencyConfig, SystemConfig
from repro.engine.errors import ConfigError


def test_mempool_shape():
    config = SystemConfig.mempool()
    config.validate()
    assert config.num_cores == 256
    assert config.num_tiles == 64
    assert config.num_banks == 1024
    assert config.tiles_per_group == 16
    assert config.memory_bytes == 1024 * 256 * 4  # 1 MiB


def test_scaled_keeps_tile_shape():
    config = SystemConfig.scaled(32)
    assert config.num_tiles == 8
    assert config.banks_per_tile == 16
    assert config.num_banks == 128


def test_scaled_small_system_single_group():
    config = SystemConfig.scaled(8)
    assert config.num_groups == 1


def test_scaled_rejects_non_multiple_of_tile():
    with pytest.raises(ConfigError):
        SystemConfig.scaled(6)


def test_scaled_error_names_offending_field():
    with pytest.raises(ConfigError, match="cores_per_tile"):
        SystemConfig.scaled(6)
    with pytest.raises(ConfigError, match="cores_per_tile=4"):
        SystemConfig.scaled(10, cores_per_tile=4)
    with pytest.raises(ConfigError, match="banks_per_tile"):
        SystemConfig.scaled(8, banks_per_tile=0)
    with pytest.raises(ConfigError, match="num_cores=0"):
        SystemConfig.scaled(0)


def test_scaled_overridable_tile_shape():
    config = SystemConfig.scaled(6, cores_per_tile=2)
    assert config.num_tiles == 3
    assert config.num_groups == 1
    assert config.banks_per_tile == 16
    config.validate()

    config = SystemConfig.scaled(12, cores_per_tile=3, banks_per_tile=8)
    assert config.num_tiles == 4
    assert config.num_groups == 4
    assert config.num_banks == 32
    config.validate()


def test_scaled_single_core_tile():
    config = SystemConfig.scaled(5, cores_per_tile=1)
    assert config.num_tiles == 5
    assert config.num_groups == 1
    config.validate()


def test_scaled_defaults_unchanged_by_relaxation():
    """Explicit default overrides must match the historical shapes."""
    for cores in (8, 16, 32, 64):
        assert SystemConfig.scaled(cores) == SystemConfig.scaled(
            cores, cores_per_tile=4, banks_per_tile=16)


def test_validate_rejects_partial_tiles():
    with pytest.raises(ConfigError):
        SystemConfig(num_cores=10, cores_per_tile=4).validate()


def test_validate_rejects_partial_groups():
    with pytest.raises(ConfigError):
        SystemConfig(num_cores=16, cores_per_tile=4, num_groups=3).validate()


def test_validate_rejects_bad_word_size():
    with pytest.raises(ConfigError):
        SystemConfig(word_bytes=3).validate()


def test_latency_monotonicity_enforced():
    with pytest.raises(ConfigError):
        LatencyConfig(local_tile=5, same_group=3).validate()


def test_latency_positive_enforced():
    with pytest.raises(ConfigError):
        LatencyConfig(bank_cycles=0).validate()


def test_with_latency_returns_modified_copy():
    config = SystemConfig.scaled(16)
    slower = config.with_latency(remote_group=9)
    assert slower.latency.remote_group == 9
    assert config.latency.remote_group == 5
    assert slower.num_cores == config.num_cores
