"""Unit tests for the hierarchical topology."""

import pytest

from repro.arch.config import SystemConfig
from repro.arch.topology import Topology


@pytest.fixture
def topo():
    # 64 cores -> 16 tiles -> 4 groups of 4 tiles; 256 banks.
    return Topology(SystemConfig.scaled(64))


def test_tile_of_core(topo):
    assert topo.tile_of_core(0) == 0
    assert topo.tile_of_core(3) == 0
    assert topo.tile_of_core(4) == 1
    assert topo.tile_of_core(63) == 15


def test_tile_of_bank(topo):
    assert topo.tile_of_bank(0) == 0
    assert topo.tile_of_bank(15) == 0
    assert topo.tile_of_bank(16) == 1


def test_group_of_tile(topo):
    assert topo.group_of_tile(0) == 0
    assert topo.group_of_tile(3) == 0
    assert topo.group_of_tile(4) == 1
    assert topo.group_of_tile(15) == 3


def test_distance_classes(topo):
    # core 0 is in tile 0 (group 0).
    assert topo.distance_class(0, 0) == "local"        # bank in tile 0
    assert topo.distance_class(0, 16) == "group"       # tile 1, group 0
    assert topo.distance_class(0, 16 * 4) == "global"  # tile 4, group 1


def test_latencies_match_config(topo):
    lat = topo.config.latency
    assert topo.latency(0, 0) == lat.local_tile
    assert topo.latency(0, 16) == lat.same_group
    assert topo.latency(0, 16 * 4) == lat.remote_group


def test_hop_count_equals_latency_in_default_model(topo):
    for bank in (0, 16, 64, 255):
        assert topo.hop_count(5, bank) == topo.latency(5, bank)


def test_local_banks_of_core(topo):
    assert list(topo.local_banks_of_core(0)) == list(range(16))
    assert list(topo.local_banks_of_core(7)) == list(range(16, 32))


def test_cores_in_tile_roundtrip(topo):
    for tile in range(topo.config.num_tiles):
        for core in topo.cores_in_tile(tile):
            assert topo.tile_of_core(core) == tile
