"""Shared fixtures and kernel helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.interconnect.messages import Status


@pytest.fixture
def small_config() -> SystemConfig:
    """A 16-core, 4-tile, 64-bank system — fast but multi-group-free."""
    return SystemConfig.scaled(16)


@pytest.fixture
def grouped_config() -> SystemConfig:
    """A 64-core system with 4 real groups (exercises global routes)."""
    return SystemConfig.scaled(64)


def make_machine(num_cores: int, variant: VariantSpec, seed: int = 0,
                 **kwargs) -> Machine:
    """Convenience constructor used across the suite."""
    return Machine(SystemConfig.scaled(num_cores), variant, seed=seed,
                   **kwargs)


# -- reusable kernels ---------------------------------------------------------

def increment_kernel_wait(counter: int, updates: int):
    """LRwait/SCwait increment loop (kernel factory)."""

    def kernel(api):
        for _ in range(updates):
            while True:
                resp = yield from api.lrwait(counter)
                if resp.status is Status.QUEUE_FULL:
                    yield from api.compute(8 + api.rng.randrange(8))
                    continue
                yield from api.compute(1)
                ok = yield from api.scwait(counter, resp.value + 1)
                if ok:
                    break
            yield from api.retire()

    return kernel


def increment_kernel_lrsc(counter: int, updates: int):
    """LR/SC increment loop with randomized backoff (kernel factory)."""

    def kernel(api):
        for _ in range(updates):
            attempt = 0
            while True:
                value = yield from api.lr(counter)
                yield from api.compute(1)
                ok = yield from api.sc(counter, value + 1)
                if ok:
                    break
                window = min(1024, 8 << min(attempt, 8))
                yield from api.compute(api.rng.randrange(1, window))
                attempt += 1
            yield from api.retire()

    return kernel


def increment_kernel_amo(counter: int, updates: int):
    """amoadd increment loop (kernel factory)."""

    def kernel(api):
        for _ in range(updates):
            yield from api.amo_add(counter, 1)
            yield from api.retire()

    return kernel
