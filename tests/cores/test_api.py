"""Coverage of every CoreApi instruction through a live machine."""

import pytest

from repro import VariantSpec
from repro.interconnect.messages import Status

from ..conftest import make_machine


def run_one(machine, kernel):
    machine.load(0, kernel)
    machine.run()


@pytest.fixture
def amo_machine():
    return make_machine(4, VariantSpec.amo())


def test_every_amo_returns_old_value(amo_machine):
    machine = amo_machine
    addr = machine.allocator.alloc_interleaved(1)
    machine.poke(addr, 12)
    observed = {}

    def kernel(api):
        observed["add"] = yield from api.amo_add(addr, 3)       # 12 -> 15
        observed["swap"] = yield from api.amo_swap(addr, 0b1100)  # 15 -> 12
        observed["and"] = yield from api.amo_and(addr, 0b1010)  # 12 -> 8
        observed["or"] = yield from api.amo_or(addr, 0b0001)    # 8 -> 9
        observed["xor"] = yield from api.amo_xor(addr, 0b1111)  # 9 -> 6
        observed["max"] = yield from api.amo_max(addr, 2)       # 6 -> 6
        observed["min"] = yield from api.amo_min(addr, 2)       # 6 -> 2

    run_one(machine, kernel)
    assert observed == {"add": 12, "swap": 15, "and": 12, "or": 8,
                        "xor": 9, "max": 6, "min": 6}
    assert machine.peek(addr) == 2


def test_amo_min_signed_through_api(amo_machine):
    machine = amo_machine
    addr = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        yield from api.amo_min(addr, -3)

    run_one(machine, kernel)
    assert machine.bank_word_signed(addr) == -3 if hasattr(
        machine, "bank_word_signed") else machine.peek(addr) == 0xFFFF_FFFD


def test_compute_zero_is_free(amo_machine):
    machine = amo_machine

    def kernel(api):
        yield from api.compute(0)
        yield from api.compute(-5)

    run_one(machine, kernel)
    assert machine.stats.cores[0].active_cycles == 0


def test_rng_is_per_core_and_seeded():
    machine_a = make_machine(8, VariantSpec.amo(), seed=4)
    machine_b = make_machine(8, VariantSpec.amo(), seed=4)
    draws_a = [machine_a.apis[i].rng.randrange(1000) for i in range(8)]
    draws_b = [machine_b.apis[i].rng.randrange(1000) for i in range(8)]
    assert draws_a == draws_b          # same seed, same streams
    assert len(set(draws_a)) > 1       # per-core streams differ


def test_api_exposes_identity():
    machine = make_machine(8, VariantSpec.amo())
    api = machine.apis[5]
    assert api.core_id == 5
    assert api.num_cores == 8


def test_mwait_returns_full_response():
    machine = make_machine(4, VariantSpec.colibri())
    addr = machine.allocator.alloc_interleaved(1)
    machine.poke(addr, 9)
    seen = {}

    def kernel(api):
        resp = yield from api.mwait(addr, expected=5)  # already differs
        seen["status"] = resp.status
        seen["value"] = resp.value

    run_one(machine, kernel)
    assert seen == {"status": Status.OK, "value": 9}


def test_lrwait_response_carries_queue_full():
    machine = make_machine(8, VariantSpec.colibri(num_addresses=1))
    # Two addresses in the same bank: second queue cannot allocate
    # while the first is held.
    stride = machine.config.num_banks * machine.config.word_bytes
    addr_a = machine.allocator.alloc_in_bank(0)
    addr_b = machine.allocator.alloc_in_bank(0)
    assert addr_b != addr_a and addr_b % stride == addr_a % stride
    statuses = []

    def holder(api):
        resp = yield from api.lrwait(addr_a)
        yield from api.compute(60)
        yield from api.scwait(addr_a, resp.value)

    def prober(api):
        yield from api.compute(10)  # let the holder win the slot
        resp = yield from api.lrwait(addr_b)
        statuses.append(resp.status)
        if resp.status is Status.OK:
            yield from api.scwait(addr_b, resp.value)

    machine.load(0, holder)
    machine.load(1, prober)
    machine.run()
    assert statuses == [Status.QUEUE_FULL]
