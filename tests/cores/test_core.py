"""Core model tests, driven through a real (small) machine."""

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.errors import DeadlockError, KernelError

from ..conftest import make_machine


def test_compute_only_kernel_finishes():
    machine = make_machine(4, VariantSpec.amo())

    def kernel(api):
        yield from api.compute(10)

    machine.load(0, kernel)
    stats = machine.run()
    assert machine.cores[0].finished
    assert stats.cores[0].active_cycles == 10
    assert stats.cores[0].instructions == 10


def test_load_store_roundtrip():
    machine = make_machine(4, VariantSpec.amo())
    addr = machine.allocator.alloc_interleaved(1)
    seen = []

    def kernel(api):
        yield from api.sw(addr, 123)
        value = yield from api.lw(addr)
        seen.append(value)

    machine.load(0, kernel)
    machine.run()
    assert seen == [123]
    assert machine.peek(addr) == 123


def test_memory_op_timing_local_bank():
    """A local access: 1 issue + 1 req latency + 1 bank + 1 resp latency."""
    machine = make_machine(4, VariantSpec.amo())
    # Bank 0 is local to core 0.
    addr = machine.address_map.address_of(0, 0)
    done_at = []

    def kernel(api):
        yield from api.lw(addr)
        done_at.append(machine.sim.now)

    machine.load(0, kernel)
    machine.run()
    assert done_at[0] == 3  # issue ends at 1, arrive 2, serve 2, resp 3


def test_remote_access_slower_than_local():
    machine = make_machine(16, VariantSpec.amo())
    local = machine.address_map.address_of(0, 0)      # tile 0
    remote = machine.address_map.address_of(60, 0)    # tile 3
    times = {}

    def kernel(api):
        start = machine.sim.now
        yield from api.lw(local)
        times["local"] = machine.sim.now - start
        start = machine.sim.now
        yield from api.lw(remote)
        times["remote"] = machine.sim.now - start

    machine.load(0, kernel)
    machine.run()
    assert times["remote"] > times["local"]


def test_stall_cycles_accounted():
    machine = make_machine(16, VariantSpec.amo())
    remote = machine.address_map.address_of(60, 0)

    def kernel(api):
        yield from api.lw(remote)

    machine.load(0, kernel)
    stats = machine.run()
    assert stats.cores[0].stalled_cycles > 0
    assert stats.cores[0].sleep_cycles == 0


def test_sleep_cycles_accounted_for_lrwait():
    machine = make_machine(4, VariantSpec.colibri())
    addr = machine.allocator.alloc_interleaved(1)

    def holder(api):
        resp = yield from api.lrwait(addr)
        yield from api.compute(50)  # keep the queue busy
        yield from api.scwait(addr, resp.value + 1)

    def waiter(api):
        resp = yield from api.lrwait(addr)
        yield from api.scwait(addr, resp.value + 1)

    machine.load(0, holder)
    machine.load(1, waiter)
    stats = machine.run()
    assert stats.cores[1].sleep_cycles >= 50
    assert machine.peek(addr) == 2


def test_retire_counts_ops():
    machine = make_machine(4, VariantSpec.amo())

    def kernel(api):
        yield from api.retire(3)
        yield from api.compute(1)
        yield from api.retire()

    machine.load(0, kernel)
    stats = machine.run()
    assert stats.cores[0].ops_completed == 4


def test_kernel_exception_wrapped_with_context():
    machine = make_machine(4, VariantSpec.amo())

    def kernel(api):
        yield from api.compute(1)
        raise RuntimeError("boom")

    machine.load(0, kernel)
    with pytest.raises(KernelError, match="boom"):
        machine.run()


def test_invalid_yield_rejected():
    machine = make_machine(4, VariantSpec.amo())

    def kernel(api):
        yield "not a command"

    machine.load(0, kernel)
    with pytest.raises(KernelError, match="yielded"):
        machine.run()


def test_deadlock_detection_reports_blocked_core():
    """An LRwait never followed by the holder's SCwait deadlocks the
    waiter — the §III progress constraint made observable."""
    machine = make_machine(4, VariantSpec.colibri(), strict=False)
    addr = machine.allocator.alloc_interleaved(1)

    def selfish(api):
        yield from api.lrwait(addr)
        # never issues the SCwait

    def starved(api):
        yield from api.lrwait(addr)

    machine.load(0, selfish)
    machine.load(1, starved)
    with pytest.raises(DeadlockError, match="core 1"):
        machine.run()


def test_request_counters():
    machine = make_machine(4, VariantSpec.lrsc())
    addr = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        value = yield from api.lr(addr)
        yield from api.sc(addr, value + 1)
        yield from api.lw(addr)

    machine.load(0, kernel)
    stats = machine.run()
    assert stats.cores[0].requests == {"lr": 1, "sc": 1, "lw": 1}
    assert stats.cores[0].sc_successes == 1


def test_double_load_kernel_rejected():
    machine = make_machine(4, VariantSpec.amo())

    def kernel(api):
        yield from api.compute(1)

    machine.load(0, kernel)
    with pytest.raises(KernelError):
        machine.load(0, kernel)
