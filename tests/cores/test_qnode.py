"""Unit tests for the Colibri Qnode state machine."""

import pytest

from repro.cores.qnode import Qnode
from repro.engine.errors import ProtocolViolation, SimulationError
from repro.interconnect.messages import (
    MemRequest,
    MemResponse,
    Op,
    Status,
    SuccessorUpdate,
)


def make():
    sent_wakeups = []
    released = []
    node = Qnode(0, sent_wakeups.append,
                 lambda req, bank: released.append((req, bank)))
    return node, sent_wakeups, released


def wait_req(addr=0, op=Op.LRWAIT):
    return MemRequest(op=op, core_id=0, addr=addr)


def update(addr=0, successor=7):
    return SuccessorUpdate(bank_id=3, addr=addr, prev_core=0,
                           successor=successor)


def resp(op, successor_pending=False, status=Status.OK):
    return MemResponse(op=op, core_id=0, addr=0, status=status,
                       successor_pending=successor_pending)


def test_arm_on_wait_issue():
    node, _w, _r = make()
    assert node.try_issue_wait(wait_req(), bank_id=3)
    assert node.armed and node.armed_addr == 0 and node.armed_bank == 3


def test_double_wait_while_armed_raises():
    node, _w, _r = make()
    node.try_issue_wait(wait_req(), 3)
    with pytest.raises(ProtocolViolation):
        node.try_issue_wait(wait_req(addr=4), 1)


def test_queue_full_response_disarms():
    node, _w, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_response(resp(Op.LRWAIT, status=Status.QUEUE_FULL))
    assert not node.armed


def test_lrwait_ok_response_keeps_node_armed():
    node, _w, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_response(resp(Op.LRWAIT))
    assert node.armed  # holder: exits via SCwait


def test_scwait_pass_with_known_successor_dispatches_immediately():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_successor_update(update(successor=7))
    node.on_scwait_pass()
    assert len(wakeups) == 1 and wakeups[0].successor == 7
    node.on_response(resp(Op.SCWAIT, successor_pending=True))
    assert not node.armed
    assert len(wakeups) == 1  # no double dispatch


def test_scwait_response_with_late_successor_dispatches_at_response():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_scwait_pass()          # successor unknown at pass time
    node.on_successor_update(update(successor=5))  # arrives in flight
    node.on_response(resp(Op.SCWAIT, successor_pending=True))
    assert len(wakeups) == 1 and wakeups[0].successor == 5
    assert not node.armed


def test_scwait_no_successor_no_pending_disarms():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_scwait_pass()
    node.on_response(resp(Op.SCWAIT, successor_pending=False))
    assert not node.armed and wakeups == []


def test_pass_then_bounce():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_scwait_pass()
    node.on_response(resp(Op.SCWAIT, successor_pending=True))
    assert node.busy_with_pass
    node.on_successor_update(update(successor=9))
    assert len(wakeups) == 1 and wakeups[0].successor == 9
    assert not node.armed and not node.busy_with_pass


def test_wait_stalls_during_pending_pass_and_releases_on_bounce():
    node, wakeups, released = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_scwait_pass()
    node.on_response(resp(Op.SCWAIT, successor_pending=True))
    # New wait op while the node owes a bounce: must be buffered.
    new_req = wait_req(addr=8)
    assert not node.try_issue_wait(new_req, bank_id=1)
    assert released == []
    node.on_successor_update(update(successor=2))  # bounce resolves
    assert released == [(new_req, 1)]
    assert node.armed and node.armed_addr == 8  # re-armed for new wait


def test_two_stalled_waits_raise():
    node, _w, _r = make()
    node.try_issue_wait(wait_req(), 3)
    node.on_scwait_pass()
    node.on_response(resp(Op.SCWAIT, successor_pending=True))
    node.try_issue_wait(wait_req(addr=8), 1)
    with pytest.raises(ProtocolViolation):
        node.try_issue_wait(wait_req(addr=12), 2)


def test_mwait_response_behaves_like_dequeue():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(op=Op.MWAIT), 3)
    node.on_successor_update(update(successor=4))
    node.on_response(resp(Op.MWAIT, successor_pending=True))
    assert len(wakeups) == 1 and wakeups[0].successor == 4
    assert not node.armed


def test_mwait_response_without_successor_frees():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(op=Op.MWAIT), 3)
    node.on_response(resp(Op.MWAIT, successor_pending=False))
    assert not node.armed and wakeups == []


def test_successor_update_for_wrong_addr_raises():
    node, _w, _r = make()
    node.try_issue_wait(wait_req(addr=0), 3)
    with pytest.raises(SimulationError):
        node.on_successor_update(update(addr=16))


def test_successor_update_while_idle_raises():
    node, _w, _r = make()
    with pytest.raises(SimulationError):
        node.on_successor_update(update())


def test_scwait_pass_without_membership_raises():
    node, _w, _r = make()
    with pytest.raises(ProtocolViolation):
        node.on_scwait_pass()


def test_wakeup_targets_armed_bank_and_addr():
    node, wakeups, _r = make()
    node.try_issue_wait(wait_req(addr=24), bank_id=6)
    node.on_successor_update(SuccessorUpdate(
        bank_id=6, addr=24, prev_core=0, successor=3))
    node.on_scwait_pass()
    wake = wakeups[0]
    assert wake.bank_id == 6 and wake.addr == 24 and wake.from_core == 0
