"""Campaign engine: budget, caching, determinism, resume, goldens."""

import json

import pytest

import repro.dse.campaign as campaign_module
from repro.dse import (
    Campaign,
    SearchSpace,
    journal_path,
    load_journal,
    parse_objectives,
    validate_journal,
)
from repro.engine.errors import ConfigError
from repro.eval.runner import ResultCache
from repro.scenarios import default_spec

SPACE = SearchSpace.from_axes({"bins": [1, 2, 4, 8],
                               "variant": ["lrsc", "colibri"]})
OBJECTIVES = ["min:cycles"]


def base_spec():
    return default_spec("histogram", num_cores=8).with_params(
        updates_per_core=2)


def make_campaign(sampler="grid", budget=20, space=SPACE, **kwargs):
    return Campaign(base=base_spec(), space=space, sampler=sampler,
                    objectives=parse_objectives(
                        kwargs.pop("objectives", OBJECTIVES)),
                    budget=budget, **kwargs)


def strip_wall(journal):
    """A journal minus its one nondeterministic field (``wall_ms``).

    Everything else — including ``cache_hit`` — must stay byte-stable
    across jobs values and resumes, so equality asserts compare this.
    """
    stripped = json.loads(json.dumps(journal, sort_keys=True))
    for record in stripped["evaluations"]:
        record.pop("wall_ms", None)
    return stripped


@pytest.fixture
def count_simulations(monkeypatch):
    """Count the specs that reach fresh simulation."""
    simulated = []
    original = campaign_module.run_scenarios

    def counting(specs, jobs=1, cache=None, batch=False):
        simulated.extend(specs)
        return original(specs, jobs=jobs, cache=cache, batch=batch)

    monkeypatch.setattr(campaign_module, "run_scenarios", counting)
    return simulated


# -- basics -------------------------------------------------------------------


def test_grid_campaign_covers_space_and_validates():
    result = make_campaign().run()
    assert result.status == "complete"
    assert result.paid == SPACE.grid_size()
    assert len(result.evaluations) == SPACE.grid_size()
    validate_journal(result.journal)
    assert result.journal["best"] == result.best().index
    assert result.best().overrides in SPACE.points()


def test_objective_metrics_are_attached_to_specs():
    result = make_campaign(objectives=["min:energy", "min:cycles"],
                           budget=20,
                           space=SearchSpace.from_axes({"bins": [1, 2]})
                           ).run()
    for evaluation in result.evaluations:
        assert "energy_pj_per_op" in evaluation.objectives
        assert evaluation.spec["metrics"] == ["energy_pj_per_op"]


def test_budget_truncates_deterministically():
    result = make_campaign(budget=3).run()
    assert result.status == "budget"
    assert result.paid == 3
    assert len(result.evaluations) == 3
    # Exactly the first three grid proposals, in order.
    full = make_campaign(budget=20).run()
    assert [e.spec_hash for e in result.evaluations] == \
        [e.spec_hash for e in full.evaluations[:3]]


def test_invalid_combo_fails_before_anything_runs(count_simulations):
    space = SearchSpace.from_axes({"bins": [1], "bogus_param": [3]})
    with pytest.raises(ConfigError, match="bogus_param"):
        make_campaign(space=space)
    assert count_simulations == []


def test_campaign_rejects_zero_budget_and_no_objectives():
    with pytest.raises(ConfigError, match="budget"):
        make_campaign(budget=0)
    with pytest.raises(ConfigError, match="objective"):
        Campaign(base=base_spec(), space=SPACE, sampler="grid",
                 objectives=[], budget=1)


# -- caching ------------------------------------------------------------------


def test_cache_hits_cost_zero_budget(tmp_path, count_simulations):
    cache = ResultCache(str(tmp_path), fingerprint="t")
    small = SearchSpace.from_axes({"bins": [1, 2]})
    first = make_campaign(space=small, budget=2, cache=cache).run()
    assert first.paid == 2
    assert len(count_simulations) == 2
    # Second campaign over a superset: the two cached points are free,
    # so a budget of 2 pays for two *new* points.
    bigger = SearchSpace.from_axes({"bins": [1, 2, 4, 8]})
    second = make_campaign(space=bigger, budget=2, cache=cache).run()
    assert second.status == "complete"
    assert second.paid == 2
    assert len(second.evaluations) == 4
    assert [e.cached for e in second.evaluations] == \
        [True, True, False, False]
    assert len(count_simulations) == 4


def test_repeat_proposals_within_a_campaign_are_free(count_simulations):
    # halving re-proposes survivors (smoke rungs repeat at 8 cores
    # because histogram's smoke shape equals this base spec).
    result = make_campaign(sampler="halving", budget=20).run()
    assert result.status == "complete"
    hashes = [e.spec_hash for e in result.evaluations]
    assert len(set(hashes)) == len(count_simulations)
    assert result.paid == len(count_simulations)
    assert any(e.cached for e in result.evaluations)


def test_duplicate_proposals_within_one_batch_are_free(count_simulations):
    """A sampler proposing the same combo twice in one batch pays once."""
    from repro.dse import Batch, Sampler, register_sampler, \
        unregister_sampler

    @register_sampler("dup_test_sampler")
    class DupSampler(Sampler):
        def batches(self, space, budget, rng):
            point = space.points()[0]
            yield Batch([point, dict(point)])

    try:
        result = make_campaign(sampler="dup_test_sampler",
                               budget=1).run()
    finally:
        unregister_sampler("dup_test_sampler")
    assert result.status == "complete"     # budget=1 suffices
    assert result.paid == 1
    assert len(count_simulations) == 1
    assert [e.cached for e in result.evaluations] == [False, True]
    assert result.evaluations[0].objectives == \
        result.evaluations[1].objectives


def test_failed_objective_extraction_preserves_work(tmp_path):
    """A bad telemetry summary key fails the campaign, but the journal
    flushes and the cache keeps whatever simulated (nothing lost)."""
    journal_file = journal_path(str(tmp_path))
    with pytest.raises(ConfigError, match="no summary"):
        make_campaign(
            space=SearchSpace.from_axes({"bins": [1, 2]}), budget=4,
            objectives=["min:telemetry.bank_contention.bogus_key"],
            journal_file=journal_file).run()
    flushed = load_journal(journal_file)
    assert flushed["status"] == "partial"


def test_unknown_probe_objective_fails_before_simulating(
        count_simulations):
    with pytest.raises(ConfigError, match="no probe registered"):
        make_campaign(objectives=["min:telemetry.warp_probe.depth"],
                      budget=4)
    assert count_simulations == []


def test_typoed_metric_objective_fails_before_simulating(
        count_simulations):
    """A misspelled --objective must cost zero simulations."""
    with pytest.raises(ConfigError, match="cycels"):
        make_campaign(objectives=["min:cycels"], budget=8)
    assert count_simulations == []


def test_workload_declared_extra_metrics_are_valid_objectives():
    result = make_campaign(
        space=SearchSpace.from_axes({"bins": [1, 2]}),
        objectives=["min:pj_per_op"], budget=4).run()
    assert all(e.objectives["pj_per_op"] > 0
               for e in result.evaluations)


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize("sampler", ["grid", "random", "halving"])
def test_same_seed_same_budget_identical_journal_any_jobs(sampler):
    """The acceptance contract: jobs must not leak into the journal."""
    serial = make_campaign(sampler=sampler, budget=6, seed=3,
                           jobs=1).run()
    parallel = make_campaign(sampler=sampler, budget=6, seed=3,
                             jobs=4).run()
    assert strip_wall(serial.journal) == strip_wall(parallel.journal)
    assert json.dumps(strip_wall(serial.journal), sort_keys=True) == \
        json.dumps(strip_wall(parallel.journal), sort_keys=True)
    # The stripped field is real wall-clock attribution, not padding:
    # every fresh evaluation of both runs carries a positive wall_ms.
    for result in (serial, parallel):
        assert all(record["wall_ms"] > 0
                   for record in result.journal["evaluations"]
                   if not record["cached"])


def test_random_campaigns_differ_across_seeds():
    one = make_campaign(sampler="random", budget=4, seed=1).run()
    two = make_campaign(sampler="random", budget=4, seed=2).run()
    assert [e.spec_hash for e in one.evaluations] != \
        [e.spec_hash for e in two.evaluations]


# -- golden: halving vs exhaustive grid --------------------------------------


def test_halving_finds_the_grid_optimum():
    """Acceptance golden: over a small 2-axis space, successive
    halving's winner equals exhaustive grid search's winner."""
    grid = make_campaign(sampler="grid", budget=50).run()
    halving = make_campaign(sampler="halving", budget=50).run()
    assert halving.status == "complete"
    assert halving.best().overrides == grid.best().overrides
    assert halving.best().objectives == grid.best().objectives
    # And it steered: smoke rungs exist, ranking used full runs only.
    assert any(e.fidelity == "smoke" for e in halving.evaluations)
    assert all(e.fidelity == "full" for e in halving.ranking())


# -- resume -------------------------------------------------------------------


def test_resume_after_kill_rerurns_nothing_journaled(
        tmp_path, count_simulations):
    """Acceptance golden: a killed campaign resumed from its journal
    completes with zero re-evaluated points."""
    journal_file = journal_path(str(tmp_path / "camp"))
    straight = make_campaign(sampler="halving", budget=20, seed=1,
                             journal_file=journal_file).run()
    straight_count = len(count_simulations)
    # Simulate the kill: rewind the journal to its first 5 records.
    document = load_journal(journal_file)
    kept = document["evaluations"][:5]
    document.update(
        evaluations=kept,
        paid=sum(1 for record in kept if not record["cached"]),
        status="partial", best=None, frontier=[])
    with open(journal_file, "w") as stream:
        json.dump(document, stream)
    count_simulations.clear()
    resumed = make_campaign(sampler="halving", budget=20, seed=1,
                            journal_file=journal_file,
                            resume=load_journal(journal_file)).run()
    # Replay re-simulated none of the 5 journaled records; the rest of
    # the campaign ran fresh, converging to the uninterrupted journal.
    replayed_hashes = {record["spec_hash"] for record in kept}
    assert all(spec.stable_hash() not in replayed_hashes
               for spec in count_simulations)
    assert len(count_simulations) == straight_count - len(kept)
    # Replayed records keep their journaled wall_ms verbatim; records
    # simulated after the replay re-time, hence the strip.
    assert strip_wall(resumed.journal) == strip_wall(straight.journal)
    assert resumed.journal["evaluations"][:5] == \
        straight.journal["evaluations"][:5]


def test_resume_with_larger_budget_continues(tmp_path):
    journal_file = journal_path(str(tmp_path))
    small = make_campaign(budget=3, journal_file=journal_file).run()
    assert small.status == "budget"
    resumed = make_campaign(budget=20, journal_file=journal_file,
                            resume=load_journal(journal_file)).run()
    assert resumed.status == "complete"
    assert resumed.paid == SPACE.grid_size()
    full = make_campaign(budget=20).run()
    assert [e.spec_hash for e in resumed.evaluations] == \
        [e.spec_hash for e in full.evaluations]


def test_interrupted_resume_never_shrinks_the_journal(tmp_path,
                                                      monkeypatch):
    """Paid records on disk survive a resume that dies mid-replay."""
    journal_file = journal_path(str(tmp_path))
    make_campaign(budget=20, journal_file=journal_file).run()
    on_disk = load_journal(journal_file)
    assert len(on_disk["evaluations"]) == SPACE.grid_size()

    # A resume under a *smaller* budget truncates during replay; the
    # richer on-disk journal must be left untouched.
    smaller = make_campaign(budget=2, journal_file=journal_file,
                            resume=load_journal(journal_file)).run()
    assert smaller.status == "budget"
    assert load_journal(journal_file) == on_disk

    # And while a multi-batch replay is catching up, no intermediate
    # flush (a crash would leave the last one) may hold fewer records
    # than the journal being resumed.
    halving_file = journal_path(str(tmp_path / "halving"))
    straight = make_campaign(sampler="halving", budget=20,
                             journal_file=halving_file).run()
    total = len(straight.evaluations)
    assert straight.journal["evaluations"][0]["fidelity"] == "smoke"

    written = []
    original = campaign_module.write_journal

    def spying(path, document):
        written.append(len(document["evaluations"]))
        return original(path, document)

    monkeypatch.setattr(campaign_module, "write_journal", spying)
    make_campaign(sampler="halving", budget=20,
                  journal_file=halving_file,
                  resume=load_journal(halving_file)).run()
    assert written, "resume should still finalize the journal"
    assert all(count >= total for count in written)


def test_resume_rejects_a_different_campaign(tmp_path):
    journal_file = journal_path(str(tmp_path))
    make_campaign(budget=3, journal_file=journal_file).run()
    other_space = SearchSpace.from_axes({"bins": [1, 2]})
    with pytest.raises(ConfigError, match="cannot resume"):
        make_campaign(space=other_space, budget=3,
                      resume=load_journal(journal_file))


def test_journal_written_after_every_batch(tmp_path, monkeypatch):
    """A kill between batches loses at most the batch in flight."""
    journal_file = journal_path(str(tmp_path))
    snapshots = []
    original = campaign_module.write_journal

    def spying(path, document):
        snapshots.append(len(document["evaluations"]))
        return original(path, document)

    monkeypatch.setattr(campaign_module, "write_journal", spying)
    make_campaign(sampler="random", budget=8, seed=0,
                  journal_file=journal_file).run()
    # random proposes batch_size=8 points -> one batch write + final.
    assert len(snapshots) >= 2
    assert snapshots == sorted(snapshots)
    validate_journal(load_journal(journal_file))


# -- telemetry objectives -----------------------------------------------------


def test_telemetry_objective_runs_probed_and_serial():
    space = SearchSpace.from_axes({"variant": ["lrsc", "colibri"]})
    result = make_campaign(
        space=space, budget=4,
        objectives=["min:telemetry.bank_contention.peak_bank_accesses",
                    "min:cycles"]).run()
    assert result.status == "complete"
    metric = "telemetry.bank_contention.peak_bank_accesses"
    values = [e.objectives[metric] for e in result.evaluations]
    assert all(value > 0 for value in values)
    # LR/SC polls the hot banks far harder than sleeping Colibri.
    by_variant = {e.overrides["variant"]: e.objectives[metric]
                  for e in result.evaluations}
    assert by_variant["lrsc"] > by_variant["colibri"]
    validate_journal(result.journal)
