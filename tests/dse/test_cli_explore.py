"""CLI tests for explore, frontier, cache, and list --samplers."""

import json
import os

import pytest

from repro.cli import main
from repro.dse import load_journal


def run_cli(capsys, argv, expect_code=0):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == expect_code, captured.out
    return captured.out


SMOKE_EXPLORE = ["explore", "histogram", "--smoke",
                 "--axis", "bins=1,4",
                 "--axis", "variant=lrsc,colibri"]


def test_explore_grid_end_to_end(capsys, tmp_path):
    out_dir = str(tmp_path / "camp")
    out = run_cli(capsys, SMOKE_EXPLORE + [
        "--objective", "min:cycles", "--objective", "min:energy",
        "--budget", "8", "--out", out_dir])
    assert "campaign" in out
    assert "ranking" in out
    assert "Pareto frontier" in out
    assert "trade-off" in out               # 2-objective ASCII plot
    journal = load_journal(os.path.join(out_dir, "journal.json"))
    assert journal["status"] == "complete"
    assert len(journal["evaluations"]) == 4


def test_explore_default_objective_is_cycles(capsys):
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "8"])
    assert "min:cycles" in out


def test_explore_budget_exhaustion_hints_resume(capsys, tmp_path):
    out_dir = str(tmp_path / "camp")
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "2",
                                           "--out", out_dir])
    assert "budget exhausted" in out
    assert "--resume" in out
    resumed = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "8",
                                               "--resume", out_dir])
    assert "complete" in resumed
    journal = load_journal(os.path.join(out_dir, "journal.json"))
    assert journal["status"] == "complete"


def test_explore_budget_exhaustion_without_out_suggests_journaling(
        capsys):
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "2"])
    assert "budget exhausted" in out
    assert "None" not in out
    assert "--out" in out


def test_explore_constraint_prunes_grid(capsys):
    out = run_cli(capsys, ["explore", "histogram", "--smoke",
                           "--axis", "bins=1,4",
                           "--constraint", "bins < 4",
                           "--budget", "4"])
    assert "bins[2]" in out
    # only bins=1 survives the constraint
    assert " 4  " not in out.split("ranking")[1].splitlines()[3]


def test_explore_halving_sampler(capsys):
    out = run_cli(capsys, SMOKE_EXPLORE + ["--sampler", "halving",
                                           "--budget", "20"])
    assert "halving" in out
    assert "smoke" in out or "full" in out


def test_explore_errors_exit_2(capsys, tmp_path):
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "4",
                                           "--sampler", "warp"],
                  expect_code=2)
    assert "no sampler registered" in out
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "4",
                                           "--objective", "min:warp"],
                  expect_code=2)
    assert "warp" in out
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "4",
                                           "--resume",
                                           str(tmp_path / "void")],
                  expect_code=2)
    assert "no" in out and "resume" in out
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "4",
                                           "--out", str(tmp_path / "a"),
                                           "--resume",
                                           str(tmp_path / "b")],
                  expect_code=2)
    assert "must agree" in out


def test_explore_requires_budget_and_axis():
    with pytest.raises(SystemExit):
        main(["explore", "histogram", "--axis", "bins=1,2"])
    with pytest.raises(SystemExit):
        main(["explore", "histogram", "--budget", "4"])


def test_frontier_renders_saved_journal(capsys, tmp_path):
    out_dir = str(tmp_path / "camp")
    run_cli(capsys, SMOKE_EXPLORE + [
        "--objective", "min:cycles", "--objective", "max:throughput",
        "--budget", "8", "--out", out_dir])
    for target in (out_dir, os.path.join(out_dir, "journal.json")):
        out = run_cli(capsys, ["frontier", target])
        assert "Pareto frontier" in out
        assert "ranking" in out


def test_frontier_rejects_bad_journal(capsys, tmp_path):
    out = run_cli(capsys, ["frontier", str(tmp_path / "nope.json")],
                  expect_code=2)
    assert "cannot read" in out
    bad = tmp_path / "journal.json"
    bad.write_text(json.dumps({"version": 1}))
    out = run_cli(capsys, ["frontier", str(tmp_path)], expect_code=2)
    assert "malformed" in out


def test_explore_out_refuses_to_clobber_a_journal(capsys, tmp_path):
    out_dir = str(tmp_path / "camp")
    run_cli(capsys, SMOKE_EXPLORE + ["--budget", "2", "--out", out_dir])
    before = load_journal(os.path.join(out_dir, "journal.json"))
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "2",
                                           "--out", out_dir],
                  expect_code=2)
    assert "--resume" in out
    assert load_journal(os.path.join(out_dir, "journal.json")) == before


def test_explore_resume_accepts_equivalent_out_path(capsys, tmp_path):
    out_dir = str(tmp_path / "camp")
    run_cli(capsys, SMOKE_EXPLORE + ["--budget", "2", "--out", out_dir])
    out = run_cli(capsys, SMOKE_EXPLORE + ["--budget", "8",
                                           "--out", out_dir,
                                           "--resume", out_dir + "/"])
    assert "complete" in out


def test_explore_cache_max_entries_bounds_the_cache(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_cli(capsys, SMOKE_EXPLORE + ["--budget", "8",
                                     "--cache-dir", cache_dir,
                                     "--cache-max-entries", "2"])
    out = run_cli(capsys, ["cache", "stats", "--cache-dir", cache_dir])
    entries = [line for line in out.splitlines()
               if line.strip().startswith("entries")]
    assert entries and entries[0].split()[-1] == "2"


def test_cache_stats_and_prune(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_cli(capsys, SMOKE_EXPLORE + ["--budget", "8",
                                     "--cache-dir", cache_dir])
    out = run_cli(capsys, ["cache", "stats", "--cache-dir", cache_dir])
    assert "entries" in out
    assert "4" in out
    out = run_cli(capsys, ["cache", "prune", "--cache-dir", cache_dir,
                           "--max-entries", "2"])
    assert "evicted" in out
    out = run_cli(capsys, ["cache", "stats", "--cache-dir", cache_dir])
    assert "2" in out


def test_cache_errors_exit_2(capsys, tmp_path):
    out = run_cli(capsys, ["cache", "stats",
                           "--cache-dir", str(tmp_path / "void")],
                  expect_code=2)
    assert "no cache directory" in out
    made = tmp_path / "made"
    made.mkdir()
    out = run_cli(capsys, ["cache", "prune", "--cache-dir", str(made)],
                  expect_code=2)
    assert "--max-entries" in out


def test_list_samplers(capsys):
    out = run_cli(capsys, ["list", "--samplers"])
    for name in ("grid", "random", "halving"):
        assert name in out
