"""Journal persistence and schema validation."""

import json

import pytest

from repro.dse import (
    Campaign,
    SearchSpace,
    load_journal,
    parse_objectives,
    validate_journal,
)
from repro.dse.schema import SchemaError, main as schema_main
from repro.engine.errors import ConfigError
from repro.scenarios import default_spec


@pytest.fixture(scope="module")
def journal():
    campaign = Campaign(
        base=default_spec("histogram", num_cores=8).with_params(
            updates_per_core=2),
        space=SearchSpace.from_axes({"bins": [1, 2]}),
        sampler="grid",
        objectives=parse_objectives(["min:cycles", "max:throughput"]),
        budget=4)
    return campaign.run().journal


def test_real_journal_validates(journal):
    validate_journal(journal)


def test_schema_rejects_missing_top_level(journal):
    for key in ("version", "status", "paid", "campaign", "evaluations"):
        broken = dict(journal)
        del broken[key]
        with pytest.raises(SchemaError, match=key):
            validate_journal(broken)


def test_schema_rejects_bad_status(journal):
    broken = dict(journal, status="exploded")
    with pytest.raises(SchemaError, match="status"):
        validate_journal(broken)


def test_schema_rejects_out_of_order_indices(journal):
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["index"] = 5
    with pytest.raises(SchemaError, match="out of order"):
        validate_journal(broken)


def test_schema_rejects_missing_objective_value(journal):
    broken = json.loads(json.dumps(journal))
    del broken["evaluations"][0]["objectives"]["cycles"]
    with pytest.raises(SchemaError, match="cycles"):
        validate_journal(broken)


def test_schema_rejects_bad_spec_hash_and_fidelity(journal):
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["spec_hash"] = "abc"
    with pytest.raises(SchemaError, match="spec_hash"):
        validate_journal(broken)
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["fidelity"] = "warp"
    with pytest.raises(SchemaError, match="fidelity"):
        validate_journal(broken)


def test_schema_rejects_dangling_frontier_index(journal):
    broken = json.loads(json.dumps(journal))
    broken["frontier"] = [99]
    with pytest.raises(SchemaError, match="99"):
        validate_journal(broken)


def test_load_journal_reports_bad_files(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigError, match="cannot read"):
        load_journal(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigError, match="not valid JSON"):
        load_journal(str(bad))
    malformed = tmp_path / "malformed.json"
    malformed.write_text("{}")
    with pytest.raises(ConfigError, match="malformed"):
        load_journal(str(malformed))


def test_schema_cli_validates_and_rejects(tmp_path, journal, capsys):
    good = tmp_path / "journal.json"
    good.write_text(json.dumps(journal))
    assert schema_main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out
    bad = tmp_path / "broken.json"
    bad.write_text(json.dumps(dict(journal, status="exploded")))
    assert schema_main([str(bad)]) == 2
    assert "status" in capsys.readouterr().out
    assert schema_main([]) == 2
