"""Journal persistence and schema validation."""

import json

import pytest

from repro.dse import (
    Campaign,
    SearchSpace,
    load_journal,
    parse_objectives,
    validate_journal,
)
from repro.dse.schema import SchemaError, main as schema_main
from repro.engine.errors import ConfigError
from repro.scenarios import default_spec


@pytest.fixture(scope="module")
def journal():
    campaign = Campaign(
        base=default_spec("histogram", num_cores=8).with_params(
            updates_per_core=2),
        space=SearchSpace.from_axes({"bins": [1, 2]}),
        sampler="grid",
        objectives=parse_objectives(["min:cycles", "max:throughput"]),
        budget=4)
    return campaign.run().journal


def test_real_journal_validates(journal):
    validate_journal(journal)


def test_schema_rejects_missing_top_level(journal):
    for key in ("version", "status", "paid", "campaign", "evaluations"):
        broken = dict(journal)
        del broken[key]
        with pytest.raises(SchemaError, match=key):
            validate_journal(broken)


def test_schema_rejects_bad_status(journal):
    broken = dict(journal, status="exploded")
    with pytest.raises(SchemaError, match="status"):
        validate_journal(broken)


def test_schema_rejects_out_of_order_indices(journal):
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["index"] = 5
    with pytest.raises(SchemaError, match="out of order"):
        validate_journal(broken)


def test_schema_rejects_missing_objective_value(journal):
    broken = json.loads(json.dumps(journal))
    del broken["evaluations"][0]["objectives"]["cycles"]
    with pytest.raises(SchemaError, match="cycles"):
        validate_journal(broken)


def test_schema_rejects_bad_spec_hash_and_fidelity(journal):
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["spec_hash"] = "abc"
    with pytest.raises(SchemaError, match="spec_hash"):
        validate_journal(broken)
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["fidelity"] = "warp"
    with pytest.raises(SchemaError, match="fidelity"):
        validate_journal(broken)


def test_schema_rejects_dangling_frontier_index(journal):
    broken = json.loads(json.dumps(journal))
    broken["frontier"] = [99]
    with pytest.raises(SchemaError, match="99"):
        validate_journal(broken)


def test_load_journal_reports_bad_files(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigError, match="cannot read"):
        load_journal(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigError, match="not valid JSON"):
        load_journal(str(bad))
    malformed = tmp_path / "malformed.json"
    malformed.write_text("{}")
    with pytest.raises(ConfigError, match="malformed"):
        load_journal(str(malformed))


def test_schema_cli_validates_and_rejects(tmp_path, journal, capsys):
    good = tmp_path / "journal.json"
    good.write_text(json.dumps(journal))
    assert schema_main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out
    bad = tmp_path / "broken.json"
    bad.write_text(json.dumps(dict(journal, status="exploded")))
    assert schema_main([str(bad)]) == 2
    assert "status" in capsys.readouterr().out
    assert schema_main([]) == 2


# -- journal v1 compatibility (pre-wall_ms/cache_hit journals) -----------------


def v1_journal(journal):
    """A journal as written before the observability fields existed."""
    old = json.loads(json.dumps(journal))
    old["version"] = 1
    for record in old["evaluations"]:
        record.pop("wall_ms", None)
        record.pop("cache_hit", None)
    return old


def test_current_journal_is_version_2_with_wall_attribution(journal):
    assert journal["version"] == 2
    for record in journal["evaluations"]:
        assert "wall_ms" in record
        assert isinstance(record["cache_hit"], bool)


def test_v1_journal_still_validates(journal):
    validate_journal(v1_journal(journal))


def test_v1_journal_is_still_resumable(journal):
    from repro.dse.journal import check_resumable
    old = v1_journal(journal)
    check_resumable(old, old["campaign"])


def test_unknown_journal_version_rejected(journal):
    from repro.dse.journal import check_resumable
    future = dict(journal, version=3)
    with pytest.raises(SchemaError, match="version"):
        validate_journal(future)
    with pytest.raises(ConfigError, match="version"):
        check_resumable(future, future["campaign"])


def test_schema_rejects_bad_wall_ms_and_cache_hit(journal):
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["wall_ms"] = -1.0
    with pytest.raises(SchemaError, match="wall_ms"):
        validate_journal(broken)
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["wall_ms"] = True
    with pytest.raises(SchemaError, match="wall_ms"):
        validate_journal(broken)
    broken = json.loads(json.dumps(journal))
    broken["evaluations"][0]["cache_hit"] = "yes"
    with pytest.raises(SchemaError, match="cache_hit"):
        validate_journal(broken)
