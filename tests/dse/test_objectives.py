"""Objectives: parsing, extraction, Pareto fronts, probe summaries."""

import pytest

from repro.dse import (
    Objective,
    pareto_front,
    parse_objective,
    parse_objectives,
    probe_summaries,
)
from repro.engine.errors import ConfigError
from repro.scenarios import default_spec, run_scenario


def test_parse_explicit_goal():
    objective = parse_objective("max:throughput")
    assert objective.goal == "max"
    assert objective.metric == "throughput"
    assert objective.name == "max:throughput"


def test_parse_aliases():
    assert parse_objective("runtime") == Objective("cycles", "min")
    assert parse_objective("energy") == Objective("energy_pj_per_op", "min")
    assert parse_objective("min:energy") == \
        Objective("energy_pj_per_op", "min")
    assert parse_objective("throughput") == Objective("throughput", "max")


def test_bare_metric_minimizes_by_default():
    assert parse_objective("sc_failures").goal == "min"


def test_parse_rejects_bad_goal_and_duplicates():
    with pytest.raises(ConfigError, match="min"):
        parse_objective("most:cycles")
    with pytest.raises(ConfigError, match="twice"):
        parse_objectives(["min:cycles", "max:cycles"])


def test_canonical_negates_max():
    objective = Objective("throughput", "max")
    assert objective.canonical(2.0) == -2.0
    assert Objective("cycles", "min").canonical(2.0) == 2.0


def test_value_from_scalars_and_unknown_metric():
    objective = Objective("cycles", "min")
    assert objective.value({"cycles": 42}) == 42.0
    with pytest.raises(ConfigError, match="unknown objective metric"):
        Objective("warp", "min").value({"cycles": 42})


def test_pareto_front_two_objectives():
    objectives = [Objective("cycles", "min"), Objective("energy", "min")]
    rows = [
        {"cycles": 10, "energy": 10},   # frontier
        {"cycles": 5, "energy": 20},    # frontier
        {"cycles": 20, "energy": 5},    # frontier
        {"cycles": 20, "energy": 20},   # dominated by 0
        {"cycles": 10, "energy": 10},   # duplicate of 0 -> dropped
    ]
    assert pareto_front(rows, objectives) == [0, 1, 2]


def test_pareto_front_single_objective_is_the_minimum():
    objectives = [Objective("cycles", "min")]
    rows = [{"cycles": 9}, {"cycles": 3}, {"cycles": 7}]
    assert pareto_front(rows, objectives) == [1]


def test_pareto_front_respects_max_goal():
    objectives = [Objective("throughput", "max")]
    rows = [{"throughput": 1.0}, {"throughput": 3.0}]
    assert pareto_front(rows, objectives) == [1]


def test_telemetry_objective_names_probe():
    objective = parse_objective(
        "min:telemetry.bank_contention.peak_bank_accesses")
    assert objective.probe == "bank_contention"
    with pytest.raises(ConfigError, match="telemetry objectives"):
        Objective("telemetry.bank_contention", "min").probe


def test_probe_summaries_from_real_run():
    spec = default_spec("histogram", num_cores=8).with_params(
        bins=2, updates_per_core=2)
    result = run_scenario(spec, probes=["bank_contention",
                                        "core_timeline"])
    summaries = probe_summaries(result.telemetry)
    contention = summaries["bank_contention"]
    assert contention["peak_bank_accesses"] > 0
    assert "total_conflicts" in contention
    assert summaries["core_timeline"]["active_cycles"] > 0
    objective = parse_objective(
        "min:telemetry.bank_contention.peak_bank_accesses")
    value = objective.value(result.scalars(), result.telemetry)
    assert value == contention["peak_bank_accesses"]


def test_queue_occupancy_summary_means_the_mean():
    section = {"banks": [
        {"bank": 0, "max_depth": 4, "mean_depth": 0.5, "samples": [[0, 1]]},
        {"bank": 1, "max_depth": 2, "mean_depth": 1.5, "samples": [[0, 1]]},
        {"bank": 2, "max_depth": 9, "mean_depth": 9.0, "samples": []},
    ]}
    summary = probe_summaries({"queue_occupancy": section})
    # Idle banks (no samples) are excluded; the rest average.
    assert summary["queue_occupancy"]["mean_depth"] == 1.0
    assert summary["queue_occupancy"]["max_depth"] == 4


def test_telemetry_objective_without_report_fails_cleanly():
    objective = parse_objective("min:telemetry.bank_contention.accesses")
    with pytest.raises(ConfigError, match="not probed"):
        objective.value({"cycles": 1}, telemetry=None)
