"""Samplers: registry behavior and the batch-proposal protocol."""

import random

import pytest

from repro.dse import (
    Batch,
    Sampler,
    SearchSpace,
    UnknownSamplerError,
    create_sampler,
    get_sampler,
    list_samplers,
    register_sampler,
    unregister_sampler,
)
from repro.engine.errors import ConfigError

SPACE = SearchSpace.from_axes({"bins": [1, 2, 4, 8],
                               "seed": [0, 1]})


def drive(sampler, space, budget=100, seed=0, score=None):
    """Run the protocol with a scoring function; returns the batches."""
    score = score or (lambda combo: combo["bins"])
    generator = sampler.batches(space, budget, random.Random(seed))
    batches = []
    scores = None
    while True:
        try:
            batch = generator.send(scores)
        except StopIteration:
            break
        batches.append(batch)
        scores = [score(combo) for combo in batch.combos]
    return batches


# -- registry -----------------------------------------------------------------


def test_builtins_are_registered():
    names = [name for name, _cls in list_samplers()]
    assert {"grid", "random", "halving"} <= set(names)


def test_unknown_sampler_is_a_config_error():
    with pytest.raises(UnknownSamplerError, match="warp"):
        get_sampler("warp")


def test_bad_options_name_the_sampler():
    with pytest.raises(ConfigError, match="random"):
        create_sampler("random", batch_size=0)
    with pytest.raises(ConfigError, match="halving"):
        create_sampler("halving", eta=1)


def test_duplicate_registration_rejected_then_shadowable():
    @register_sampler("probe_test_sampler")
    class First(Sampler):
        def batches(self, space, budget, rng):
            yield Batch(space.points())

    try:
        with pytest.raises(ConfigError, match="already registered"):
            @register_sampler("probe_test_sampler")
            class Second(First):
                pass

        @register_sampler("probe_test_sampler", replace=True)
        class Third(First):
            pass

        assert get_sampler("probe_test_sampler") is Third
    finally:
        unregister_sampler("probe_test_sampler")


def test_batch_rejects_unknown_fidelity():
    with pytest.raises(ConfigError, match="fidelity"):
        Batch([{"bins": 1}], fidelity="warp")


# -- grid ---------------------------------------------------------------------


def test_grid_proposes_every_point_once_full_fidelity():
    batches = drive(create_sampler("grid"), SPACE)
    assert len(batches) == 1
    assert batches[0].fidelity == "full"
    assert batches[0].combos == SPACE.points()


def test_grid_chunks_for_journal_checkpoints():
    """Large grids split into batches so kills lose one chunk, not all."""
    batches = drive(create_sampler("grid", batch_size=3), SPACE)
    assert [len(b.combos) for b in batches] == [3, 3, 2]
    flat = [c for b in batches for c in b.combos]
    assert flat == SPACE.points()
    assert all(b.fidelity == "full" for b in batches)


# -- random -------------------------------------------------------------------


def test_random_is_seed_deterministic_without_replacement():
    one = drive(create_sampler("random", batch_size=3), SPACE, seed=7)
    two = drive(create_sampler("random", batch_size=3), SPACE, seed=7)
    assert [b.combos for b in one] == [b.combos for b in two]
    flat = [tuple(sorted(c.items())) for b in one for c in b.combos]
    assert len(flat) == len(set(flat)) == SPACE.grid_size()
    assert all(b.fidelity == "full" for b in one)


def test_random_seed_changes_order():
    one = drive(create_sampler("random"), SPACE, seed=1)
    two = drive(create_sampler("random"), SPACE, seed=2)
    assert [b.combos for b in one] != [b.combos for b in two]


# -- halving ------------------------------------------------------------------


def test_halving_prunes_to_full_fidelity_finalists():
    batches = drive(create_sampler("halving", eta=2, finalists=2), SPACE)
    assert batches[0].fidelity == "smoke"
    assert batches[0].combos == SPACE.points()
    assert batches[-1].fidelity == "full"
    assert len(batches[-1].combos) == 2
    # Scores are combo["bins"]: the two smallest-bins combos survive,
    # best score first (prioritized promotion).
    assert [c["bins"] for c in batches[-1].combos] == [1, 1]
    sizes = [len(b.combos) for b in batches]
    assert sizes == sorted(sizes, reverse=True)


def test_halving_small_space_goes_straight_to_full():
    space = SearchSpace.from_axes({"bins": [1, 2]})
    batches = drive(create_sampler("halving", finalists=2), space)
    assert len(batches) == 1
    assert batches[0].fidelity == "full"


def test_halving_always_shrinks_even_with_large_finalists_floor():
    space = SearchSpace.from_axes({"bins": [1, 2, 4]})
    batches = drive(create_sampler("halving", eta=2, finalists=2), space)
    # 3 candidates, keep max(2, ceil(3/2))=2 -> one smoke rung, done.
    assert [len(b.combos) for b in batches] == [3, 2]
