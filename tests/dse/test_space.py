"""SearchSpace: axes, constraints, determinism, serialization."""

import pytest

from repro.dse import SearchSpace
from repro.engine.errors import ConfigError


def test_points_are_grid_order():
    space = SearchSpace.from_axes({"bins": [1, 4], "seed": [0, 1]})
    assert space.points() == [
        {"bins": 1, "seed": 0}, {"bins": 1, "seed": 1},
        {"bins": 4, "seed": 0}, {"bins": 4, "seed": 1},
    ]
    assert space.grid_size() == 4
    assert space.keys == ["bins", "seed"]


def test_axis_order_is_declaration_order():
    forward = SearchSpace.from_axes({"a": [0, 1], "b": [0, 1]})
    backward = SearchSpace.from_axes({"b": [0, 1], "a": [0, 1]})
    assert forward.points() != backward.points()


def test_constraints_prune_combinations():
    space = SearchSpace.from_axes(
        {"bins": [1, 4, 16], "cores": [4, 8]},
        constraints=["bins <= cores"])
    combos = space.points()
    assert {"bins": 16, "cores": 8} not in combos
    assert {"bins": 4, "cores": 4} in combos
    assert all(combo["bins"] <= combo["cores"] for combo in combos)


def test_constraint_may_use_builtins():
    space = SearchSpace.from_axes(
        {"bins": [1, 4], "cores": [4, 8]},
        constraints=["min(bins, cores) >= 4"])
    assert space.points() == [{"bins": 4, "cores": 4},
                              {"bins": 4, "cores": 8}]


def test_constraint_pruning_everything_is_an_error():
    space = SearchSpace.from_axes({"bins": [1, 2]},
                                  constraints=["bins > 100"])
    with pytest.raises(ConfigError, match="prune the entire"):
        space.points()


def test_bad_constraint_reports_expression():
    space = SearchSpace.from_axes({"bins": [1]},
                                  constraints=["nonsense + 1"])
    with pytest.raises(ConfigError, match="nonsense"):
        space.points()


def test_rejects_empty_axes_and_duplicates():
    with pytest.raises(ConfigError, match="at least one axis"):
        SearchSpace.from_axes({})
    with pytest.raises(ConfigError, match="no values"):
        SearchSpace.from_axes({"bins": []})
    with pytest.raises(ConfigError, match="duplicate"):
        SearchSpace(axes=(("bins", (1,)), ("bins", (2,))))


def test_round_trips_through_dict():
    space = SearchSpace.from_axes(
        {"bins": [1, 4], "variant": ["lrsc", "colibri"]},
        constraints=["bins < 16"])
    clone = SearchSpace.from_dict(space.to_dict())
    assert clone == space
    assert clone.points() == space.points()


def test_axis_order_survives_sorted_json():
    """The journal is written with sort_keys=True; axis declaration
    order (which fixes the enumeration order) must survive anyway."""
    import json
    space = SearchSpace.from_axes({"variant": ["lrsc", "colibri"],
                                   "bins": [1, 4]})
    dumped = json.loads(json.dumps(space.to_dict(), sort_keys=True))
    clone = SearchSpace.from_dict(dumped)
    assert clone.keys == ["variant", "bins"]
    assert clone.points() == space.points()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown"):
        SearchSpace.from_dict({"axes": {"bins": [1]}, "bogus": 1})


def test_describe_names_axes():
    space = SearchSpace.from_axes({"bins": [1, 4, 16]},
                                  constraints=["bins > 0"])
    assert "bins[3]" in space.describe()
    assert "constraint" in space.describe()


def test_variant_param_axes_in_constraints():
    """Dotted ``variant.<param>`` axis keys are exposed to constraint
    expressions with underscores (dots are not Python names)."""
    space = SearchSpace.from_axes(
        {"cores": [8, 16], "variant.queue_slots": [1, 8, 32]},
        constraints=["variant_queue_slots <= cores"])
    points = space.points()
    assert {(p["cores"], p["variant.queue_slots"]) for p in points} \
        == {(8, 1), (8, 8), (16, 1), (16, 8)}
