"""Unit tests for the event queue."""

import pytest

from repro.engine.events import Event, EventQueue, PRIORITY_EARLY, PRIORITY_LATE


def test_pop_orders_by_cycle():
    queue = EventQueue()
    order = []
    queue.push(5, lambda: order.append("b"))
    queue.push(1, lambda: order.append("a"))
    queue.push(9, lambda: order.append("c"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.fn()
    assert order == ["a", "b", "c"]


def test_same_cycle_fifo_order():
    queue = EventQueue()
    events = [queue.push(3, lambda i=i: i) for i in range(10)]
    popped = [queue.pop() for _ in range(10)]
    assert popped == events


def test_priority_breaks_cycle_ties():
    queue = EventQueue()
    normal = queue.push(2, lambda: None)
    early = queue.push(2, lambda: None, priority=PRIORITY_EARLY)
    late = queue.push(2, lambda: None, priority=PRIORITY_LATE)
    assert queue.pop() is early
    assert queue.pop() is normal
    assert queue.pop() is late


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    first = queue.push(1, lambda: None)
    second = queue.push(2, lambda: None)
    first.cancel()
    assert queue.pop() is second
    assert queue.pop() is None


def test_peek_cycle_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1, lambda: None)
    queue.push(4, lambda: None)
    assert queue.peek_cycle() == 1
    first.cancel()
    assert queue.peek_cycle() == 4


def test_negative_cycle_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1, lambda: None)


def test_len_and_clear():
    queue = EventQueue()
    for cycle in range(5):
        queue.push(cycle, lambda: None)
    assert len(queue) == 5
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_event_handles_compare_by_schedule_key():
    early = Event(1, 0, 0, lambda: None)
    late = Event(2, 0, 1, lambda: None)
    assert early < late
