"""Unit tests for the simulation kernel."""

import pytest

from repro.engine.errors import DeadlockError, SimulationError
from repro.engine.simulator import Simulator


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: seen.append(sim.now))
    sim.schedule(3, lambda: seen.append(sim.now))
    final = sim.run()
    assert seen == [3, 10]
    assert final == 10


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(2, outer)
    sim.run()
    assert seen == [("outer", 2), ("inner", 7)]


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_max_cycles_guard():
    sim = Simulator(max_cycles=100)

    def reschedule():
        sim.schedule(60, reschedule)

    sim.schedule(60, reschedule)
    with pytest.raises(SimulationError):
        sim.run()


def test_until_predicate_stops_early():
    sim = Simulator()
    count = []
    for cycle in range(1, 11):
        sim.schedule(cycle, lambda: count.append(1))
    sim.run(until=lambda: len(count) >= 3)
    assert len(count) == 3
    assert sim.now == 3


def test_deadlock_reported_when_agents_blocked():
    sim = Simulator()
    sim.add_blocked_reporter(lambda: ["core 0 sleeping on lrwait"])
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="core 0"):
        sim.run()


def test_clean_drain_without_blocked_agents():
    sim = Simulator()
    sim.add_blocked_reporter(lambda: [])
    sim.schedule(1, lambda: None)
    assert sim.run() == 1


def test_run_for_stops_at_deadline():
    sim = Simulator()
    seen = []
    for cycle in (1, 5, 50):
        sim.schedule(cycle, lambda c=cycle: seen.append(c))
    sim.run_for(10)
    assert seen == [1, 5]
    assert sim.now == 10
    sim.run_for(100)
    assert seen == [1, 5, 50]


def test_pending_events_counter():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
