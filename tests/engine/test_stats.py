"""Unit tests for statistics containers."""

from repro.engine.stats import BankStats, CoreStats, NetworkStats, SimStats


def test_core_stats_request_counting():
    stats = CoreStats(core_id=3)
    stats.count_request("lw")
    stats.count_request("lw")
    stats.count_request("scwait")
    assert stats.requests == {"lw": 2, "scwait": 1}
    assert stats.total_requests == 3


def test_core_stats_total_cycles():
    stats = CoreStats()
    stats.active_cycles = 10
    stats.stalled_cycles = 5
    stats.sleep_cycles = 100
    assert stats.total_cycles == 115


def test_bank_conflict_rate():
    stats = BankStats()
    assert stats.conflict_rate == 0.0
    stats.accesses = 10
    stats.conflicts = 3
    assert stats.conflict_rate == 0.3


def test_network_message_counting():
    stats = NetworkStats()
    stats.count_message("lw", 3)
    stats.count_message("lw", 5)
    stats.count_message("resp_lw", 3)
    assert stats.total_messages == 3
    assert stats.hops == 11


def _sim_stats_with_ops(ops_list):
    stats = SimStats(cores=[CoreStats(core_id=i) for i in range(len(ops_list))])
    for core, ops in zip(stats.cores, ops_list):
        core.ops_completed = ops
    return stats


def test_throughput():
    stats = _sim_stats_with_ops([5, 5])
    stats.cycles = 100
    assert stats.throughput == 0.1


def test_throughput_zero_cycles():
    stats = _sim_stats_with_ops([5])
    assert stats.throughput == 0.0


def test_fairness_range_ignores_idle_cores():
    stats = _sim_stats_with_ops([0, 10, 20])
    assert stats.fairness_range() == (10, 20)


def test_jain_fairness_perfect():
    stats = _sim_stats_with_ops([7, 7, 7, 7])
    assert abs(stats.jain_fairness() - 1.0) < 1e-12


def test_jain_fairness_single_hog():
    stats = _sim_stats_with_ops([100, 0, 0, 0])
    assert abs(stats.jain_fairness() - 0.25) < 1e-12


def test_jain_fairness_no_ops_is_neutral():
    stats = _sim_stats_with_ops([0, 0])
    assert stats.jain_fairness() == 1.0


def test_aggregates_sum_over_cores():
    stats = _sim_stats_with_ops([1, 2])
    stats.cores[0].sc_failures = 3
    stats.cores[1].sc_failures = 4
    stats.cores[0].active_cycles = 10
    stats.cores[1].sleep_cycles = 20
    stats.cores[0].count_request("lr")
    assert stats.total_sc_failures == 7
    assert stats.total_active_cycles == 10
    assert stats.total_sleep_cycles == 20
    assert stats.total_requests == 1
    assert stats.total_ops == 3
