"""Unit tests for the tracer."""

from repro.engine.trace import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.log(1, "bank0", "lrwait", "core 3")
    assert tracer.records == []


def test_enabled_tracer_records():
    tracer = Tracer(enabled=True)
    tracer.log(1, "bank0", "lrwait", "core 3")
    tracer.log(2, "qnode3", "wakeup", "succ 4")
    assert len(tracer.records) == 2
    assert tracer.records[0].cycle == 1
    assert tracer.records[1].kind == "wakeup"


def test_kind_whitelist():
    tracer = Tracer(enabled=True, kinds={"wakeup"})
    tracer.log(1, "bank0", "lrwait")
    tracer.log(2, "qnode1", "wakeup")
    assert [r.kind for r in tracer.records] == ["wakeup"]


def test_filter_by_kind_and_source():
    tracer = Tracer(enabled=True)
    tracer.log(1, "bank0", "lrwait")
    tracer.log(2, "bank1", "lrwait")
    tracer.log(3, "bank0", "scwait")
    assert len(list(tracer.filter(kind="lrwait"))) == 2
    assert len(list(tracer.filter(source="bank0"))) == 2
    assert len(list(tracer.filter(kind="scwait", source="bank0"))) == 1


def test_render_and_clear():
    tracer = Tracer(enabled=True)
    tracer.log(7, "bank0", "lrwait", "core 1")
    text = tracer.render()
    assert "bank0" in text and "lrwait" in text
    tracer.clear()
    assert tracer.records == []
    assert tracer.render() == ""
