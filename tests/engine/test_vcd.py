"""Tests for VCD trace export."""

import io

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.trace import Tracer
from repro.engine.vcd import VcdWriter, write_vcd, _identifier

from ..conftest import increment_kernel_wait


def test_identifier_codes_unique_and_printable():
    codes = [_identifier(i) for i in range(500)]
    assert len(set(codes)) == 500
    assert all(33 <= ord(ch) <= 126 for code in codes for ch in code)


def test_writer_header_and_changes():
    stream = io.StringIO()
    writer = VcdWriter(stream)
    code = writer.add_signal("cores", "core0")
    writer.change(0, code, "active")
    writer.change(5, code, "sleeping")
    writer.finalize(end_time=10)
    text = stream.getvalue()
    assert "$timescale 1ns $end" in text
    assert "$var string 1" in text and "core0" in text
    assert "#0" in text and "#5" in text and "#10" in text
    assert "sactive" in text and "ssleeping" in text


def test_writer_rejects_time_reversal():
    writer = VcdWriter(io.StringIO())
    code = writer.add_signal("s", "x")
    writer.change(5, code, "a")
    with pytest.raises(ValueError):
        writer.change(3, code, "b")


def test_writer_rejects_late_signal_add():
    writer = VcdWriter(io.StringIO())
    code = writer.add_signal("s", "x")
    writer.change(0, code, "a")
    with pytest.raises(ValueError):
        writer.add_signal("s", "y")


def test_write_vcd_from_real_run(tmp_path):
    tracer = Tracer(enabled=True)
    machine = Machine(SystemConfig.scaled(4), VariantSpec.colibri(),
                      seed=1, tracer=tracer)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_wait(counter, 2))
    machine.run()
    path = str(tmp_path / "run.vcd")
    count = write_vcd(tracer, machine.config, path)
    assert count > 0
    with open(path) as handle:
        text = handle.read()
    assert "$scope module cores $end" in text
    assert "$scope module banks $end" in text
    assert "slrwait" in text
    assert "ssleeping" in text
    assert "sidle" in text


def test_write_vcd_from_telemetry_timeline(tmp_path):
    """Telemetry core-state spans export as VCD signals without a Tracer."""
    machine = Machine(SystemConfig.scaled(4), VariantSpec.colibri(), seed=1)
    counter = machine.allocator.alloc_interleaved(1)
    (timeline,) = machine.attach_probes(["core_timeline"])
    machine.load_all(increment_kernel_wait(counter, 2))
    machine.run()
    path = str(tmp_path / "timeline.vcd")
    count = write_vcd(None, machine.config, path,
                      core_states=timeline.spans())
    assert count > 0
    with open(path) as handle:
        text = handle.read()
    assert "$scope module cores $end" in text
    assert "banks" not in text  # telemetry-only dump has no bank signals
    assert "sactive" in text and "ssleeping" in text
    for core_id in range(4):
        assert f"core{core_id}" in text


def test_write_vcd_merges_tracer_and_telemetry(tmp_path):
    """Trace records and telemetry spans coexist; duplicate core-state
    changes collapse through the last-value filter."""
    tracer = Tracer(enabled=True)
    machine = Machine(SystemConfig.scaled(4), VariantSpec.colibri(),
                      seed=1, tracer=tracer)
    counter = machine.allocator.alloc_interleaved(1)
    (timeline,) = machine.attach_probes(["core_timeline"])
    machine.load_all(increment_kernel_wait(counter, 2))
    machine.run()
    merged = str(tmp_path / "merged.vcd")
    trace_only = str(tmp_path / "trace.vcd")
    merged_count = write_vcd(tracer, machine.config, merged,
                             core_states=timeline.spans())
    trace_count = write_vcd(tracer, machine.config, trace_only)
    # The telemetry spans mirror the traced transitions, so merging
    # them adds no spurious changes.
    assert merged_count == trace_count
    with open(merged) as handle:
        text = handle.read()
    assert "$scope module banks $end" in text


def test_write_vcd_empty_trace(tmp_path):
    tracer = Tracer(enabled=True)
    path = str(tmp_path / "empty.vcd")
    count = write_vcd(tracer, SystemConfig.scaled(4), path)
    assert count == 0
    with open(path) as handle:
        assert "$enddefinitions" in handle.read()
