"""Tests for the post-run analysis module."""

from repro import VariantSpec
from repro.eval.analysis import (
    bank_pressure,
    core_time_breakdown,
    message_breakdown,
    summarize,
)

from ..conftest import increment_kernel_lrsc, increment_kernel_wait, make_machine


def run(variant, builder, cores=8, updates=5):
    machine = make_machine(cores, variant, seed=7)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(builder(counter, updates))
    return machine.run()


def test_bank_pressure_identifies_hot_bank():
    stats = run(VariantSpec.colibri(), increment_kernel_wait)
    pressure = bank_pressure(stats, top=3)
    # The counter lives in bank 0: it must dominate.
    assert pressure[0].bank_id == 0
    assert pressure[0].share > 0.5
    assert pressure[0].accesses >= pressure[-1].accesses


def test_core_time_breakdown_sums_to_one():
    stats = run(VariantSpec.colibri(), increment_kernel_wait)
    split = core_time_breakdown(stats)
    assert abs(sum(split.values()) - 1.0) < 1e-9
    assert split["sleeping"] > 0.5  # Colibri waiters sleep


def test_polling_workload_is_mostly_active():
    stats = run(VariantSpec.lrsc(), increment_kernel_lrsc)
    split = core_time_breakdown(stats)
    assert split["active"] > split["sleeping"]


def test_message_breakdown_colibri_protocol_share():
    stats = run(VariantSpec.colibri(), increment_kernel_wait)
    messages = message_breakdown(stats)
    assert messages["protocol_share"] > 0
    assert messages["retry_estimate"] == 0  # no failed SCwaits
    assert messages["by_kind"]["lrwait"] > 0


def test_message_breakdown_lrsc_retry_share():
    stats = run(VariantSpec.lrsc(), increment_kernel_lrsc)
    messages = message_breakdown(stats)
    assert messages["protocol_share"] == 0
    assert messages["retry_estimate"] > 0.1


def test_summarize_renders_everything():
    stats = run(VariantSpec.colibri(), increment_kernel_wait)
    text = summarize(stats, title="colibri increment")
    for token in ("colibri increment", "ops/cycle", "hottest banks",
                  "protocol share"):
        assert token in text


def test_empty_run_summary_is_safe():
    machine = make_machine(4, VariantSpec.amo())
    stats = machine.run()  # nothing loaded
    text = summarize(stats)
    assert "ops retired" in text
