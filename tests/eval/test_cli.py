"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_histogram_command_default(capsys):
    out = run_cli(capsys, ["histogram", "--cores", "8", "--bins", "2",
                           "--updates", "3"])
    assert "histogram: Colibri/wait" in out
    assert "ops/cycle" in out
    assert "hottest banks" in out


@pytest.mark.parametrize("variant,expected", [
    ("amo", "AtomicAdd/amo"),
    ("lrsc", "LRSC/lrsc"),
    ("lrsc-table", "LRSC_table/lrsc"),
    ("lrsc-bank", "LRSC_bank/lrsc"),
    ("ideal", "LRSCwait_ideal/wait"),
])
def test_histogram_variants(capsys, variant, expected):
    out = run_cli(capsys, ["histogram", "--cores", "8", "--bins", "2",
                           "--updates", "2", "--variant", variant])
    assert expected in out


def test_histogram_lock_method(capsys):
    out = run_cli(capsys, ["histogram", "--cores", "8", "--bins", "2",
                           "--updates", "2", "--variant", "colibri",
                           "--method", "lock", "--lock", "mcs"])
    assert "Colibri/lock" in out


def test_queue_command(capsys):
    out = run_cli(capsys, ["queue", "--cores", "8", "--ops", "6",
                           "--method", "wait"])
    assert "queue: wait" in out
    assert "Jain fairness" in out


def test_interference_command(capsys):
    out = run_cli(capsys, ["interference", "--cores", "16",
                           "--workers", "4", "--bins", "1",
                           "--variant", "colibri"])
    assert "relative throughput" in out
    assert "12:4" in out


def test_area_command(capsys):
    out = run_cli(capsys, ["area"])
    assert "Table I" in out and "paper kGE" in out
    assert "O(n^2)" in out


def test_energy_command(capsys):
    out = run_cli(capsys, ["energy", "--cores", "8", "--updates", "3"])
    assert "Table II" in out and "Colibri" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_seed_changes_timing_not_correctness(capsys):
    out_a = run_cli(capsys, ["histogram", "--cores", "8", "--bins", "2",
                             "--updates", "3", "--seed", "1"])
    out_b = run_cli(capsys, ["histogram", "--cores", "8", "--bins", "2",
                             "--updates", "3", "--seed", "2"])
    assert out_a != out_b  # different interleavings
