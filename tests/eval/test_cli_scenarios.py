"""CLI tests for the scenario subcommands: run, list, sweep."""

import pytest

from repro.cli import main
from repro.scenarios import list_workloads


def run_cli(capsys, argv, expect_code=0):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == expect_code, captured.out
    return captured.out


def test_list_shows_all_registered_scenarios(capsys):
    out = run_cli(capsys, ["list"])
    for name, _workload in list_workloads():
        assert name in out
    assert "registered scenarios" in out


def test_list_names_is_script_friendly(capsys):
    out = run_cli(capsys, ["list", "--names"])
    names = out.strip().splitlines()
    assert names == sorted(name for name, _w in list_workloads())


def test_list_variants_table(capsys):
    from repro.memory import list_variants
    out = run_cli(capsys, ["list", "--variants"])
    for name, plugin in list_variants():
        assert name in out
        assert plugin.native_method in out
    assert "registered atomic-memory variants" in out
    assert "kGE/core" in out                 # area-cost-model column


def test_list_variants_names_emits_runnable_strings(capsys):
    from repro.memory import list_variants
    from repro.scenarios.spec import parse_variant
    out = run_cli(capsys, ["list", "--variants", "--names"])
    lines = out.strip().splitlines()
    # One line per registered variant, each a parseable variant string
    # (required parameters filled: lrscwait lists as lrscwait:8).
    assert len(lines) == len(list_variants())
    assert "lrscwait:8" in lines
    for line in lines:
        parse_variant(line, 16)              # must not raise


def test_run_registered_extra_variant(capsys):
    out = run_cli(capsys, ["run", "histogram", "--smoke",
                           "--variant", "ticket:2"])
    assert "ticket:2" in out


def test_run_unknown_variant_exits_2(capsys):
    out = run_cli(capsys, ["run", "histogram", "--variant", "warp"],
                  expect_code=2)
    assert "no atomic-memory variant registered" in out


def test_run_bad_variant_param_exits_2(capsys):
    out = run_cli(capsys, ["run", "histogram",
                           "--variant", "ticket:addresses=0"],
                  expect_code=2)
    assert "addresses" in out


def test_sweep_variant_param_axis(capsys):
    out = run_cli(capsys, ["sweep", "histogram", "--cores", "8",
                           "--set", "updates_per_core=2",
                           "--variant", "lrscwait:1",
                           "--axis", "variant.queue_slots=1,ideal"])
    assert "variant.queue_slots" in out
    assert "ideal" in out


def test_run_with_set_overrides(capsys):
    out = run_cli(capsys, ["run", "histogram", "--cores", "8",
                           "--set", "bins=2", "--set", "updates_per_core=2"])
    assert "scenario: histogram" in out
    assert "spec hash" in out
    assert "throughput" in out


def test_run_smoke_every_registered_scenario(capsys):
    """The CI smoke contract: every registry entry runs via the CLI."""
    for name, _workload in list_workloads():
        out = run_cli(capsys, ["run", name, "--smoke"])
        assert f"scenario: {name}" in out


def test_run_show_spec_prints_json(capsys):
    out = run_cli(capsys, ["run", "histogram", "--smoke", "--show-spec"])
    assert '"workload":"histogram"' in out


def test_run_unknown_scenario_fails_cleanly(capsys):
    out = run_cli(capsys, ["run", "warp_drive"], expect_code=2)
    assert "no workload registered" in out


def test_run_unknown_param_fails_cleanly(capsys):
    out = run_cli(capsys, ["run", "histogram", "--set", "bogus=1"],
                  expect_code=2)
    assert "bogus" in out


def test_run_malformed_set_rejected():
    with pytest.raises(SystemExit):
        main(["run", "histogram", "--set", "bins"])


def test_sweep_single_axis(capsys):
    out = run_cli(capsys, ["sweep", "histogram", "--cores", "8",
                           "--set", "updates_per_core=2",
                           "--axis", "bins=1,4"])
    assert "sweep: histogram" in out
    assert "bins" in out and "throughput" in out
    # one row per axis value
    assert len([line for line in out.splitlines()
                if line.strip() and line.strip()[0].isdigit()]) == 2


def test_sweep_cartesian_axes(capsys):
    out = run_cli(capsys, ["sweep", "histogram", "--cores", "8",
                           "--set", "updates_per_core=2",
                           "--axis", "bins=1,2", "--axis", "seed=0,1"])
    rows = [line for line in out.splitlines()
            if line.strip() and line.strip()[0].isdigit()]
    assert len(rows) == 4


def test_sweep_with_cache(capsys, tmp_path):
    argv = ["sweep", "histogram", "--cores", "8",
            "--set", "updates_per_core=2", "--axis", "bins=1,2",
            "--cache-dir", str(tmp_path)]
    first = run_cli(capsys, argv)
    second = run_cli(capsys, argv)
    assert first == second


def test_sweep_requires_axis():
    with pytest.raises(SystemExit):
        main(["sweep", "histogram"])


def test_sweep_exports_json(capsys, tmp_path):
    import json
    out = run_cli(capsys, ["sweep", "histogram", "--cores", "8",
                           "--set", "updates_per_core=2",
                           "--axis", "bins=1,4",
                           "--out", str(tmp_path)])
    assert "exported" in out
    with open(tmp_path / "sweep.json") as stream:
        document = json.load(stream)
    assert document["experiment"] == "sweep"
    assert document["parameters"]["workload"] == "histogram"
    assert document["parameters"]["axes"] == {"bins": [1, 4]}
    assert len(document["rows"]) == 2
    assert {row["bins"] for row in document["rows"]} == {1, 4}
    assert all("cycles" in row and "throughput" in row
               for row in document["rows"])


def test_sweep_exports_csv(capsys, tmp_path):
    import csv
    run_cli(capsys, ["sweep", "histogram", "--cores", "8",
                     "--set", "updates_per_core=2",
                     "--axis", "bins=1,4",
                     "--out", str(tmp_path), "--format", "csv"])
    with open(tmp_path / "sweep.csv", newline="") as stream:
        rows = list(csv.reader(stream))
    assert rows[0][0] == "bins"
    assert "cycles" in rows[0]
    assert len(rows) == 3                    # header + 2 points


def test_sweep_format_needs_out(capsys):
    out = run_cli(capsys, ["sweep", "histogram", "--axis", "bins=1",
                           "--format", "csv"], expect_code=2)
    assert "--out" in out


def test_run_variant_flag_uses_spec_grammar(capsys):
    out = run_cli(capsys, ["run", "histogram", "--smoke",
                           "--variant", "lrscwait:half"])
    assert "lrscwait:half" in out
