"""Scaled-down shape tests for every figure/table runner.

These are the reproduction's acceptance tests: each experiment is run
at CI scale and the *paper's qualitative claims* are asserted — who
wins, in what direction, and (loosely) by what kind of factor.
"""

import pytest

from repro.eval.fig3 import run_fig3
from repro.eval.fig4 import run_fig4
from repro.eval.fig5 import run_fig5
from repro.eval.fig6 import run_fig6
from repro.eval.table1 import run_table1, scaling_table
from repro.eval.table2 import run_table2

CORES = 16
BINS = [1, 8, 32]
UPDATES = 5


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(num_cores=CORES, bins_list=BINS, updates_per_core=UPDATES)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(num_cores=CORES, bins_list=BINS, updates_per_core=UPDATES)


def test_fig3_amo_is_roofline(fig3):
    series = fig3.throughput_series()
    for index in range(len(fig3.bins)):
        roofline = series["Atomic Add"][index]
        for label, values in series.items():
            assert values[index] <= roofline + 1e-9, label


def test_fig3_colibri_beats_lrsc_at_high_contention(fig3):
    assert fig3.speedup_over_lrsc(1) > 1.5


def test_fig3_colibri_close_to_ideal(fig3):
    series = fig3.throughput_series()
    for ideal, colibri in zip(series["LRSCwait_ideal"], series["Colibri"]):
        assert colibri > 0.5 * ideal  # small protocol penalty only


def test_fig3_bounded_queue_collapses_under_contention(fig3):
    """LRSCwait_1 must trail the ideal queue once contention exceeds
    its single slot (paper: 'much lower performance when the contention
    is higher than their number of reservations')."""
    series = fig3.throughput_series()
    assert series["LRSCwait_1"][0] < series["LRSCwait_ideal"][0]


def test_fig3_wait_family_beats_lrsc_everywhere(fig3):
    series = fig3.throughput_series()
    for index in range(len(fig3.bins)):
        assert series["Colibri"][index] > series["LRSC"][index]


def test_fig3_render_mentions_all_series(fig3):
    text = fig3.render()
    for label in ("Atomic Add", "Colibri", "LRSC"):
        assert label in text


def test_fig4_colibri_wins_everywhere(fig4):
    assert fig4.colibri_wins_everywhere()


def test_fig4_locks_trail_raw_rmw_at_high_contention(fig4):
    series = fig4.throughput_series()
    assert series["Colibri lock"][0] < series["Colibri"][0]
    assert series["LRSC lock"][0] <= series["LRSC"][0] * 1.5


def test_fig4_mwait_lock_graceful_at_high_contention(fig4):
    """The sleeping MCS lock beats the polling TAS locks at 1 bin."""
    series = fig4.throughput_series()
    assert series["Mwait lock"][0] > series["LRSC lock"][0]


def test_fig5_shapes():
    result = run_fig5(num_cores=16, bins_list=[1, 4], matmul_dim=8)
    colibri_label = next(l for l in result.series if "Colibri" in l)
    # Colibri pollers leave workers essentially untouched...
    assert result.worst_case(colibri_label) > 0.9
    # ...and no series shows a speedup from interference.
    for label, values in result.series.items():
        assert all(v <= 1.02 for v in values), label


def test_fig6_shapes():
    result = run_fig6(max_cores=16, core_counts=[1, 4, 16], ops_per_core=10)
    series = result.throughput_series()
    # Colibri sustains throughput at full system size...
    assert series["Colibri"][-1] > series["LRSC"][-1]
    assert series["Colibri"][-1] > series["Atomic Add lock"][-1]
    # ...and stays fair while LRSC spreads (paper's shaded band).
    fairness = result.fairness_series()
    assert fairness["Colibri"][-1] > fairness["LRSC"][-1]
    assert result.speedup(16, over="LRSC") > 1.5


def test_table1_model_close_to_paper():
    result = run_table1()
    assert result.max_relative_error() < 0.02
    assert "Colibri" in result.render()


def test_table1_scaling_table_renders():
    text = scaling_table()
    assert "Colibri" in text and "1024" in text


def test_table2_ordering_and_ratios():
    result = run_table2(num_cores=CORES, updates_per_core=UPDATES)
    by_label = {row[0]: row[2] for row in result.rows}
    assert (by_label["Atomic Add"] < by_label["Colibri"]
            < by_label["LRSC"] < by_label["Atomic Add lock"])
    assert result.ratio("LRSC") > 2.5
    assert result.ratio("Atomic Add lock") > 3
    assert result.delta_percent("Atomic Add") < 0


def test_table2_render_includes_paper_reference():
    result = run_table2(num_cores=8, updates_per_core=4)
    text = result.render()
    assert "paper pJ/op" in text and "884" in text


def test_table2_extended_with_registered_variant_series():
    from repro.eval.harness import TABLE2_SERIES, SeriesSpec
    extra = list(TABLE2_SERIES) + [SeriesSpec("Ticket", "ticket", "wait")]
    result = run_table2(num_cores=8, updates_per_core=4, series=extra)
    assert [row[0] for row in result.rows][-1] == "Ticket"
    assert result.ratio("Ticket") > 0
    # Rows the paper does not report render with blank reference cells.
    assert "Ticket" in result.render()


def test_table2_without_colibri_baseline_is_a_config_error():
    import pytest

    from repro.engine.errors import ConfigError
    from repro.eval.harness import SeriesSpec
    with pytest.raises(ConfigError, match="Colibri"):
        run_table2(num_cores=8, updates_per_core=4,
                   series=[SeriesSpec("LRSC", "lrsc", "lrsc")])
