"""Tests for JSON result export."""

import json
import os

from repro.eval.export import (
    export_all,
    fig3_to_dict,
    fig6_to_dict,
    table1_to_dict,
    table2_to_dict,
)
from repro.eval.fig3 import run_fig3
from repro.eval.fig6 import run_fig6
from repro.eval.table1 import run_table1
from repro.eval.table2 import run_table2


def test_fig3_schema():
    result = run_fig3(num_cores=8, bins_list=[1, 4], updates_per_core=3)
    document = fig3_to_dict(result)
    assert document["experiment"] == "fig3"
    assert document["parameters"]["bins"] == [1, 4]
    assert set(document["series"]) == {
        "Atomic Add", "LRSCwait_ideal", "LRSCwait_half", "LRSCwait_1",
        "Colibri", "LRSC"}
    assert all(len(v) == 2 for v in document["series"].values())
    json.dumps(document)  # must be JSON-serializable


def test_fig6_schema():
    result = run_fig6(max_cores=8, core_counts=[1, 8], ops_per_core=6)
    document = fig6_to_dict(result)
    assert document["fairness"]["Colibri"][0] >= 0
    assert document["headline"]["colibri_over_lrsc_at_max"] > 0
    json.dumps(document)


def test_table1_schema():
    document = table1_to_dict(run_table1())
    assert len(document["rows"]) == 7
    assert document["headline"]["max_relative_error"] < 0.02
    json.dumps(document)


def test_table2_schema():
    document = table2_to_dict(run_table2(num_cores=8, updates_per_core=3))
    assert {row["access"] for row in document["rows"]} == {
        "Atomic Add", "Colibri", "LRSC", "Atomic Add lock"}
    json.dumps(document)


def test_export_all_writes_index_and_files(tmp_path):
    index = export_all(str(tmp_path), num_cores=8, fig5_cores=16,
                       updates_per_core=2)
    assert set(index) == {"table1", "table2", "fig3", "fig4", "fig5",
                          "fig6"}
    for file_name in index.values():
        path = os.path.join(str(tmp_path), file_name)
        with open(path) as handle:
            document = json.load(handle)
        assert "experiment" in document
    with open(os.path.join(str(tmp_path), "index.json")) as handle:
        assert json.load(handle) == index
