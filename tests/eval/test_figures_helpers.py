"""Tests for figure-result helper methods and reference data."""

import pytest

from repro.eval.fig3 import FULL_BINS, PAPER_REFERENCE as FIG3_REF, run_fig3
from repro.eval.fig4 import PAPER_REFERENCE as FIG4_REF
from repro.eval.fig5 import PAPER_REFERENCE as FIG5_REF, _ratio_label
from repro.eval.fig6 import PAPER_REFERENCE as FIG6_REF
from repro.eval.harness import FIG3_SERIES, FIG4_SERIES


def test_fig3_reference_covers_series():
    labels = {s.label for s in FIG3_SERIES}
    # The paper's "LRSCwait_128" generalizes to "LRSCwait_half" here.
    assert labels - set(FIG3_REF) == {"LRSCwait_half"}
    assert set(FIG3_REF) - labels == {"LRSCwait_128"}


def test_fig4_reference_covers_series():
    assert {s.label for s in FIG4_SERIES} == set(FIG4_REF)


def test_fig5_ratio_label_matches_paper_style():
    assert _ratio_label("LRSC", 256, 4) == "LRSC, 252:4"
    assert "Colibri, 252:4" in FIG5_REF


def test_fig6_reference_well_formed():
    for label, points in FIG6_REF.items():
        assert set(points) <= {"8", "64"}


def test_full_bins_sweep_is_the_papers():
    assert FULL_BINS == [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def test_fig3_caps_bins_to_bank_count():
    result = run_fig3(num_cores=8, updates_per_core=2)
    # 8 cores -> 2 tiles -> 32 banks: bins capped at 32.
    assert max(result.bins) <= 32


def test_fig3_speedup_rejects_unknown_bin():
    result = run_fig3(num_cores=8, bins_list=[1], updates_per_core=2)
    with pytest.raises(ValueError):
        result.speedup_over_lrsc(999)
