"""Tests for the shared histogram experiment harness."""

import pytest

from repro.eval.harness import (
    FIG3_SERIES,
    FIG4_SERIES,
    SeriesSpec,
    TABLE2_SERIES,
    run_histogram_point,
    sweep_bins,
)
from repro.memory.variants import VariantSpec
from repro.sync.locks import AmoSpinLock, MwaitMcsLock


def test_series_variant_materialization():
    ideal = SeriesSpec("x", "lrscwait", "wait", queue_slots=None)
    assert ideal.variant(64).queue_slots is None
    half = SeriesSpec("x", "lrscwait", "wait", queue_slots="half")
    assert half.variant(64).queue_slots == 32
    fixed = SeriesSpec("x", "lrscwait", "wait", queue_slots=4)
    assert fixed.variant(64).queue_slots == 4
    assert SeriesSpec("x", "colibri", "wait").variant(8).kind == "colibri"
    assert SeriesSpec("x", "amo", "amo").variant(8) == VariantSpec.amo()


def test_series_lock_class_mapping():
    spec = SeriesSpec("x", "amo", "lock", lock="amo")
    assert spec.lock_class() is AmoSpinLock
    spec = SeriesSpec("x", "colibri", "lock", lock="mcs")
    assert spec.lock_class() is MwaitMcsLock


def test_legends_match_paper():
    assert [s.label for s in FIG3_SERIES] == [
        "Atomic Add", "LRSCwait_ideal", "LRSCwait_half", "LRSCwait_1",
        "Colibri", "LRSC"]
    assert [s.label for s in FIG4_SERIES] == [
        "Colibri", "Colibri lock", "Mwait lock", "LRSC", "LRSC lock",
        "Atomic Add lock"]
    assert [s.label for s in TABLE2_SERIES] == [
        "Atomic Add", "Colibri", "LRSC", "Atomic Add lock"]


def test_run_histogram_point_verifies_and_measures():
    spec = SeriesSpec("Colibri", "colibri", "wait")
    point = run_histogram_point(spec, num_cores=8, num_bins=2,
                                updates_per_core=4)
    assert point.throughput > 0
    assert point.cycles > 0
    assert point.energy.ops == 32
    assert point.label == "Colibri"


def test_run_histogram_point_lock_series():
    spec = SeriesSpec("Atomic Add lock", "amo", "lock", lock="amo")
    point = run_histogram_point(spec, num_cores=8, num_bins=2,
                                updates_per_core=4)
    assert point.throughput > 0


def test_sweep_bins_shape():
    series = [SeriesSpec("Atomic Add", "amo", "amo")]
    results = sweep_bins(series, num_cores=8, bins_list=[1, 4],
                         updates_per_core=3)
    assert list(results) == ["Atomic Add"]
    assert [p.num_bins for p in results["Atomic Add"]] == [1, 4]


def test_throughput_monotone_in_bins_for_amo():
    """Lower contention cannot hurt the AMO roofline."""
    spec = SeriesSpec("Atomic Add", "amo", "amo")
    low = run_histogram_point(spec, 16, 1, 6)
    high = run_histogram_point(spec, 16, 64, 6)
    assert high.throughput > low.throughput
