"""Tests for result rendering."""

from repro.eval.reporting import (
    format_value,
    render_ratio_line,
    render_series,
    render_table,
)


def test_format_value_floats():
    assert format_value(0.0) == "0"
    assert format_value(0.1234567) == "0.1235"
    assert format_value(12.34) == "12.3"
    assert format_value(1234.5) == "1,234"


def test_format_value_non_floats():
    assert format_value(7) == "7"
    assert format_value("x") == "x"
    assert format_value(True) == "True"


def test_render_table_alignment_and_rule():
    text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) == {"-"}
    assert len(lines) == 5


def test_render_series_columns():
    text = render_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
    assert "s1" in text and "s2" in text
    assert "0.3" in text


def test_render_series_handles_short_series():
    text = render_series("x", [1, 2, 3], {"s": [0.1]})
    assert text.count("\n") == 4


def test_render_ratio_line():
    assert render_ratio_line("speedup", 10, 2) == "speedup: 5.00x"
    assert render_ratio_line("speedup", 1, 0) == "speedup: n/a"
