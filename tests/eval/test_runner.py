"""Tests for the parallel experiment runner and its result cache.

The contract under test: sharding a sweep across workers changes *how*
points are computed, never *what* comes back — results are ordered,
deterministic, and byte-identical to a serial run — and the cache is
keyed by configuration, so edits invalidate exactly the points they
touch.
"""

import pickle

import pytest

from repro.eval.fig3 import run_fig3
from repro.eval.harness import SeriesSpec, run_histogram_point, sweep_bins
from repro.eval.runner import (
    ExperimentCall,
    ResultCache,
    resolve_jobs,
    run_experiments,
)

#: A tiny but real experiment configuration (fast enough for CI).
SPEC = SeriesSpec("Atomic Add", "amo", "amo")


def _call(num_bins=2, updates=3, seed=0):
    return ExperimentCall(run_histogram_point, (SPEC, 8, num_bins, updates),
                          {"seed": seed})


# -- ordering and determinism -------------------------------------------------

def test_results_come_back_in_call_order():
    calls = [_call(num_bins=b) for b in (4, 1, 2)]
    results = run_experiments(calls, jobs=1)
    assert [p.num_bins for p in results] == [4, 1, 2]


def test_parallel_results_identical_to_serial():
    calls = [_call(num_bins=b) for b in (1, 2, 4)]
    serial = run_experiments(calls, jobs=1)
    parallel = run_experiments(calls, jobs=3)
    # Dataclass value equality, plus per-point pickle identity (the
    # whole-list pickles differ only in memo structure when results
    # cross a process boundary, never in content).
    assert serial == parallel
    for ours, theirs in zip(serial, parallel):
        assert pickle.dumps(ours) == pickle.dumps(theirs)


def test_sweep_bins_identical_for_any_jobs():
    kwargs = dict(num_cores=8, bins_list=[1, 4], updates_per_core=3)
    serial = sweep_bins([SPEC], jobs=1, **kwargs)
    parallel = sweep_bins([SPEC], jobs=4, **kwargs)
    assert serial == parallel


def test_figure_runner_identical_for_any_jobs():
    kwargs = dict(num_cores=16, bins_list=[1, 8], updates_per_core=4)
    serial = run_fig3(jobs=1, **kwargs)
    parallel = run_fig3(jobs=2, **kwargs)
    assert serial.render() == parallel.render()
    assert serial.throughput_series() == parallel.throughput_series()


def test_resolve_jobs_semantics():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


# -- caching ------------------------------------------------------------------

def test_cache_hit_skips_recomputation(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    calls = [_call(num_bins=1), _call(num_bins=2)]
    first = run_experiments(calls, jobs=1, cache=cache)
    assert (cache.misses, cache.stores) == (2, 2)

    # Re-running must not simulate at all: poison the experiment fn.
    def boom(*_args, **_kwargs):
        raise AssertionError("cache miss: point was re-simulated")

    monkeypatch.setattr(ExperimentCall, "invoke", boom)
    second = run_experiments(calls, jobs=1, cache=cache)
    assert cache.hits == 2
    assert pickle.dumps(first) == pickle.dumps(second)


def test_cache_survives_process_boundary(tmp_path):
    """A fresh ResultCache over the same directory reuses disk entries."""
    first = run_experiments([_call()], jobs=1, cache=ResultCache(str(tmp_path)))
    reopened = ResultCache(str(tmp_path))
    second = run_experiments([_call()], jobs=1, cache=reopened)
    assert reopened.hits == 1 and reopened.misses == 0
    assert pickle.dumps(first) == pickle.dumps(second)


def test_config_change_invalidates_only_changed_points(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_experiments([_call(num_bins=1), _call(num_bins=2)], jobs=1,
                    cache=cache)
    # One point's config changes (different seed); the other must hit.
    cache2 = ResultCache(str(tmp_path))
    run_experiments([_call(num_bins=1), _call(num_bins=2, seed=9)], jobs=1,
                    cache=cache2)
    assert cache2.hits == 1
    assert cache2.misses == 1


def test_config_key_is_stable_and_discriminating():
    assert _call().config_key() == _call().config_key()
    assert _call().config_key() != _call(num_bins=4).config_key()
    assert _call().config_key() != _call(seed=1).config_key()
    other_series = ExperimentCall(
        run_histogram_point,
        (SeriesSpec("LRSC", "lrsc", "lrsc"), 8, 2, 3), {"seed": 0})
    assert _call().config_key() != other_series.config_key()


def test_source_edit_invalidates_cache(tmp_path):
    """Cached numbers must not survive simulator-code changes."""
    cache = ResultCache(str(tmp_path))
    run_experiments([_call()], jobs=1, cache=cache)
    # Same directory, different source fingerprint (as after an edit).
    edited = ResultCache(str(tmp_path), fingerprint="deadbeef")
    run_experiments([_call()], jobs=1, cache=edited)
    assert (edited.hits, edited.misses) == (0, 1)
    # Unchanged sources still hit.
    same = ResultCache(str(tmp_path))
    assert same.fingerprint == cache.fingerprint
    run_experiments([_call()], jobs=1, cache=same)
    assert same.hits == 1


def test_cache_write_failure_degrades_gracefully(tmp_path, monkeypatch):
    """A full/read-only disk must not discard computed results."""
    import repro.eval.runner as runner_module
    cache = ResultCache(str(tmp_path))

    def disk_full(*_args, **_kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(runner_module.os, "replace", disk_full)
    results = run_experiments([_call()], jobs=1, cache=cache)
    assert results[0].throughput > 0
    assert cache.write_errors == 1 and cache.stores == 0


def test_cache_clear_drops_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_experiments([_call()], jobs=1, cache=cache)
    cache.clear()
    run_experiments([_call()], jobs=1, cache=cache)
    assert cache.misses == 2


def test_parallel_run_populates_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    calls = [_call(num_bins=b) for b in (1, 2)]
    run_experiments(calls, jobs=2, cache=cache)
    assert cache.stores == 2
    rerun = ResultCache(str(tmp_path))
    run_experiments(calls, jobs=2, cache=rerun)
    assert rerun.hits == 2


# -- size management (LRU pruning) --------------------------------------------


def test_max_entries_bounds_the_store(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="t", max_entries=2)
    for hash_key, value in (("a", 1), ("b", 2), ("c", 3)):
        cache.store_hash(hash_key, value)
    assert cache.stats()["entries"] == 2
    assert cache.evictions == 1


def test_prune_evicts_least_recently_used(tmp_path):
    import os
    cache = ResultCache(str(tmp_path), fingerprint="t")
    for offset, hash_key in enumerate(("a", "b", "c")):
        cache.store_hash(hash_key, hash_key)
        # Spread mtimes coarsely: filesystem timestamp granularity
        # would otherwise make the LRU order a coin flip.
        os.utime(cache._file(cache._key_for(hash_key)),
                 (offset, offset))
    # A hit on the oldest entry refreshes it, demoting "b".
    assert cache.lookup_hash("a") == "a"
    assert cache.prune(2) == 1
    miss = object()
    fresh = ResultCache(str(tmp_path), fingerprint="t")
    assert fresh.lookup_hash("b", miss) is miss
    assert fresh.lookup_hash("a") == "a"
    assert fresh.lookup_hash("c") == "c"


def test_prune_without_limit_is_a_noop(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="t")
    cache.store_hash("a", 1)
    assert cache.prune() == 0
    assert cache.stats()["entries"] == 1


def test_pruned_entries_leave_memory_too(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="t")
    cache.store_hash("a", 1)
    cache.prune(0)
    miss = object()
    assert cache.lookup_hash("a", miss) is miss


def test_stats_reports_footprint(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="t", max_entries=8)
    cache.store_hash("a", list(range(100)))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["max_entries"] == 8
    assert stats["stores"] == 1


def test_max_entries_rejects_nonpositive(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(str(tmp_path), fingerprint="t", max_entries=0)


def test_auto_prune_evicts_with_slack_for_amortization(tmp_path):
    """At capacity, eviction overshoots by ~5% so the directory scan
    does not repeat on every store."""
    cache = ResultCache(str(tmp_path), fingerprint="t", max_entries=40)
    for index in range(41):
        cache.store_hash(f"k{index}", index)
    # Evicted down to 40 - 40//20 = 38, never above the bound.
    assert cache.stats()["entries"] == 38
    assert cache.evictions == 3


# -- CLI plumbing -------------------------------------------------------------

def test_cli_parses_jobs_flag():
    from repro.cli import build_parser
    args = build_parser().parse_args(["reproduce", "--jobs", "4"])
    assert args.jobs == 4
    args = build_parser().parse_args(["energy", "--jobs", "0"])
    assert args.jobs == 0
    # Default stays serial.
    args = build_parser().parse_args(["reproduce"])
    assert args.jobs == 1 and args.cache_dir is None


def test_cli_passes_jobs_through_to_runners(monkeypatch, capsys):
    """``repro reproduce --jobs N`` must reach every sweep runner."""
    import repro.cli as cli
    seen = {}

    class _Rendered:
        def render(self):
            return "stub"

    def record(name):
        def fake(*_args, jobs=None, cache=None, **_kwargs):
            seen[name] = (jobs, cache)
            return _Rendered()
        return fake

    monkeypatch.setattr(cli, "run_table2", record("table2"))
    monkeypatch.setattr(cli, "run_fig3", record("fig3"))
    monkeypatch.setattr(cli, "run_fig4", record("fig4"))
    monkeypatch.setattr(cli, "run_fig5", record("fig5"))
    monkeypatch.setattr(cli, "run_fig6", record("fig6"))
    assert cli.main(["reproduce", "--jobs", "3"]) == 0
    capsys.readouterr()
    assert {name: value[0] for name, value in seen.items()} == {
        "table2": 3, "fig3": 3, "fig4": 3, "fig5": 3, "fig6": 3}
    assert all(value[1] is None for value in seen.values())


def test_cli_cache_dir_builds_cache(monkeypatch, capsys, tmp_path):
    import repro.cli as cli
    captured = {}

    class _Rendered:
        def render(self):
            return "stub"

    def fake(*_args, jobs=None, cache=None, **_kwargs):
        captured["cache"] = cache
        return _Rendered()

    monkeypatch.setattr(cli, "run_table2", fake)
    assert cli.main(["energy", "--cores", "8", "--updates", "2",
                     "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert isinstance(captured["cache"], ResultCache)
    assert captured["cache"].path == str(tmp_path)
