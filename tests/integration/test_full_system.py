"""Full-stack integration tests across subsystems."""

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.trace import Tracer
from repro.interconnect.messages import Status
from repro.sync.locks import MwaitMcsLock

from ..conftest import (
    increment_kernel_amo,
    increment_kernel_lrsc,
    increment_kernel_wait,
    make_machine,
)


def test_determinism_same_seed_same_everything():
    def run():
        machine = make_machine(16, VariantSpec.colibri(), seed=77)
        counter = machine.allocator.alloc_interleaved(1)
        machine.load_all(increment_kernel_wait(counter, 5))
        stats = machine.run()
        return (stats.cycles, stats.total_sleep_cycles,
                stats.network.total_messages,
                tuple(c.ops_completed for c in stats.cores))

    assert run() == run()


def test_different_seeds_differ():
    def run(seed):
        machine = make_machine(16, VariantSpec.lrsc(), seed=seed)
        counter = machine.allocator.alloc_interleaved(1)
        machine.load_all(increment_kernel_lrsc(counter, 5))
        return machine.run().cycles

    assert run(1) != run(2)


def test_all_variants_agree_on_final_memory():
    """The same logical program produces the same memory contents on
    every hardware variant — only timing differs."""
    results = {}
    for name, variant, builder in [
        ("amo", VariantSpec.amo(), increment_kernel_amo),
        ("lrsc", VariantSpec.lrsc(), increment_kernel_lrsc),
        ("wait_ideal", VariantSpec.lrscwait_ideal(), increment_kernel_wait),
        ("wait_1", VariantSpec.lrscwait(1), increment_kernel_wait),
        ("colibri", VariantSpec.colibri(), increment_kernel_wait),
    ]:
        machine = make_machine(8, variant, seed=5)
        counter = machine.allocator.alloc_interleaved(1)
        machine.load_all(builder(counter, 6))
        machine.run()
        results[name] = machine.peek(counter)
    assert set(results.values()) == {48}


def test_colibri_sleeps_lrsc_polls():
    """The headline mechanism: same contention, Colibri cores sleep
    while LRSC cores burn active cycles and network messages."""
    def run(variant, builder):
        machine = make_machine(16, variant, seed=9)
        counter = machine.allocator.alloc_interleaved(1)
        machine.load_all(builder(counter, 5))
        return machine.run()

    colibri = run(VariantSpec.colibri(), increment_kernel_wait)
    lrsc = run(VariantSpec.lrsc(), increment_kernel_lrsc)
    assert colibri.total_sleep_cycles > lrsc.total_sleep_cycles
    assert colibri.total_active_cycles < lrsc.total_active_cycles
    assert colibri.network.total_messages < lrsc.network.total_messages
    assert colibri.throughput > lrsc.throughput


def test_producer_consumer_with_mwait():
    """Mwait as §III-C motivates it: a consumer sleeps on a flag, the
    producer wakes it with one store — no polling traffic."""
    machine = make_machine(4, VariantSpec.colibri())
    flag = machine.allocator.alloc_interleaved(1)
    data = machine.allocator.alloc_interleaved(1)
    received = []

    def producer(api):
        yield from api.compute(200)
        yield from api.sw(data, 1234)
        yield from api.sw(flag, 1)

    def consumer(api):
        resp = yield from api.mwait(flag, expected=0)
        assert resp.status is Status.OK
        value = yield from api.lw(data)
        received.append(value)

    machine.load(0, producer)
    machine.load(1, consumer)
    stats = machine.run()
    assert received == [1234]
    assert stats.cores[1].sleep_cycles > 150  # slept, did not poll


def test_mwait_expected_value_closes_race():
    """If the store happens before the Mwait arrives, the expected
    value makes it return immediately instead of sleeping forever."""
    machine = make_machine(4, VariantSpec.colibri())
    flag = machine.allocator.alloc_interleaved(1)
    woken = []

    def producer(api):
        yield from api.sw(flag, 1)  # fires immediately

    def consumer(api):
        yield from api.compute(300)  # arrives long after the store
        resp = yield from api.mwait(flag, expected=0)
        woken.append(resp.value)

    machine.load(0, producer)
    machine.load(1, consumer)
    machine.run()
    assert woken == [1]


def test_mixed_workload_locks_and_rmw_coexist():
    """Half the cores use an MCS lock, half do raw Colibri RMW on a
    different variable; both finish and both invariants hold."""
    machine = make_machine(8, VariantSpec.colibri(), seed=3)
    lock = MwaitMcsLock.create(machine)
    locked_counter = machine.allocator.alloc_interleaved(1)
    rmw_counter = machine.allocator.alloc_interleaved(1)

    def locker(api):
        for _ in range(4):
            yield from lock.acquire(api)
            value = yield from api.lw(locked_counter)
            yield from api.sw(locked_counter, value + 1)
            yield from lock.release(api)

    def rmw(api):
        for _ in range(4):
            while True:
                resp = yield from api.lrwait(rmw_counter)
                if resp.status is Status.QUEUE_FULL:
                    yield from api.compute(8)
                    continue
                if (yield from api.scwait(rmw_counter, resp.value + 1)):
                    break

    machine.load_range(range(4), locker)
    machine.load_range(range(4, 8), rmw)
    machine.run()
    assert machine.peek(locked_counter) == 16
    assert machine.peek(rmw_counter) == 16


def test_tracer_observes_protocol_traffic():
    tracer = Tracer(enabled=True)
    machine = Machine(SystemConfig.scaled(4), VariantSpec.colibri(),
                      seed=1, tracer=tracer)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_wait(counter, 2))
    machine.run()
    kinds = {record.kind for record in tracer.records}
    # Request traffic, protocol messages and queue lifecycle all show.
    assert {"lrwait", "scwait", "wakeup_request",
            "colibri_alloc", "colibri_free"} <= kinds
    # Allocation/free balance: every allocated queue was freed.
    allocs = sum(1 for r in tracer.records if r.kind == "colibri_alloc")
    frees = sum(1 for r in tracer.records if r.kind == "colibri_free")
    assert allocs == frees > 0
    # Cores announce their initial active state at load, so the
    # render leads with core records; bank traffic follows.
    assert "core" in tracer.render(limit=5)
    assert "bank" in tracer.render()


def test_tracer_kind_filter_reduces_volume():
    tracer = Tracer(enabled=True, kinds={"wakeup_request"})
    machine = Machine(SystemConfig.scaled(4), VariantSpec.colibri(),
                      seed=1, tracer=tracer)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_wait(counter, 2))
    machine.run()
    assert tracer.records  # some wakeups happened
    assert all(r.kind == "wakeup_request" for r in tracer.records)


def test_grouped_system_runs_clean():
    """A 64-core system with four real groups exercises global routes."""
    machine = make_machine(64, VariantSpec.colibri(), seed=4)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_wait(counter, 2))
    stats = machine.run()
    assert machine.peek(counter) == 128
    assert stats.network.messages.get("successor_update", 0) > 0
    assert stats.network.messages.get("wakeup_request", 0) > 0


def test_strict_mode_catches_scwait_without_lrwait():
    machine = make_machine(4, VariantSpec.colibri(), strict=True)
    addr = machine.allocator.alloc_interleaved(1)

    def bad(api):
        yield from api.scwait(addr, 1)

    machine.load(0, bad)
    with pytest.raises(Exception):
        machine.run()
