"""Tests for the Machine facade itself."""

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.errors import ConfigError

from ..conftest import increment_kernel_amo, make_machine


def test_construction_wires_all_components():
    machine = make_machine(16, VariantSpec.colibri())
    assert len(machine.cores) == 16
    assert len(machine.banks) == machine.config.num_banks == 64
    assert len(machine.apis) == 16
    assert machine.stats.cores[3].core_id == 3
    assert machine.stats.banks[5].bank_id == 5


def test_invalid_config_rejected_at_construction():
    bad = SystemConfig(num_cores=10, cores_per_tile=4)
    with pytest.raises(ConfigError):
        Machine(bad, VariantSpec.amo())


def test_poke_peek_array_roundtrip():
    machine = make_machine(4, VariantSpec.amo())
    base = machine.allocator.alloc_interleaved(6)
    machine.poke_array(base, [10, 20, 30, 40, 50, 60])
    assert machine.peek_array(base, 6) == [10, 20, 30, 40, 50, 60]
    machine.poke(base + 8, 99)
    assert machine.peek(base + 8) == 99


def test_load_range_loads_exactly_those_cores():
    machine = make_machine(8, VariantSpec.amo())
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_range([1, 3, 5], increment_kernel_amo(counter, 2))
    machine.run()
    assert machine.peek(counter) == 6
    assert machine.cores[1].finished
    assert not machine.cores[0].finished  # never loaded


def test_run_for_freezes_endless_kernels():
    machine = make_machine(4, VariantSpec.amo())
    counter = machine.allocator.alloc_interleaved(1)

    def endless(api):
        while True:
            yield from api.amo_add(counter, 1)
            yield from api.retire()

    machine.load_all(endless)
    stats = machine.run_for(500)
    assert stats.cycles == 500
    assert stats.total_ops > 0
    assert not machine.cores[0].finished


def test_run_until_finished_stops_pollers():
    machine = make_machine(4, VariantSpec.amo())
    counter = machine.allocator.alloc_interleaved(1)
    flag = machine.allocator.alloc_interleaved(1)

    def finite(api):
        yield from api.compute(100)
        yield from api.sw(flag, 1)

    def endless(api):
        while True:
            yield from api.amo_add(counter, 1)

    machine.load(0, finite)
    machine.load(1, endless)
    machine.run_until_finished([0])
    assert machine.cores[0].finished
    assert not machine.cores[1].finished
    assert machine.peek(flag) == 1


def test_makespan_uses_last_finisher():
    machine = make_machine(4, VariantSpec.amo())

    def quick(api):
        yield from api.compute(10)

    def slow(api):
        yield from api.compute(500)

    machine.load(0, quick)
    machine.load(1, slow)
    stats = machine.run()
    assert stats.cycles == 500


def test_stats_shared_with_components():
    machine = make_machine(4, VariantSpec.amo())
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_amo(counter, 3))
    stats = machine.run()
    assert stats is machine.stats
    assert sum(b.accesses for b in stats.banks) > 0
