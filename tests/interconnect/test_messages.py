"""Unit tests for message types and op classifications."""

from repro.interconnect.messages import (
    AMO_OPS,
    MemRequest,
    Op,
    WAIT_OPS,
    WRITE_OPS,
)


def test_write_ops_contains_all_stores():
    assert Op.SW in WRITE_OPS
    assert Op.SC in WRITE_OPS
    assert Op.SCWAIT in WRITE_OPS
    for op in AMO_OPS:
        assert op in WRITE_OPS


def test_reads_are_not_write_ops():
    for op in (Op.LW, Op.LR, Op.LRWAIT, Op.MWAIT):
        assert op not in WRITE_OPS


def test_wait_ops_are_exactly_the_withheld_ones():
    assert WAIT_OPS == {Op.LRWAIT, Op.MWAIT}


def test_request_ids_are_unique():
    a = MemRequest(op=Op.LW, core_id=0, addr=0)
    b = MemRequest(op=Op.LW, core_id=0, addr=0)
    assert a.req_id != b.req_id


def test_request_str_is_informative():
    req = MemRequest(op=Op.SCWAIT, core_id=3, addr=0x40, value=9)
    text = str(req)
    assert "scwait" in text and "core=3" in text and "0x40" in text
