"""Unit tests for the network model: latency, FIFO ordering, throttling."""

from repro.arch.config import SystemConfig
from repro.arch.topology import Topology
from repro.engine.simulator import Simulator
from repro.engine.stats import NetworkStats
from repro.interconnect.messages import MemRequest, MemResponse, Op
from repro.interconnect.network import Network, ThrottledPort


def build(num_cores=16):
    config = SystemConfig.scaled(num_cores)
    sim = Simulator()
    stats = NetworkStats()
    network = Network(sim, Topology(config), stats)
    return config, sim, stats, network


def test_request_arrives_after_route_latency():
    config, sim, stats, network = build()
    arrivals = []
    network.register_bank(0, lambda msg: arrivals.append(sim.now))
    req = MemRequest(op=Op.LW, core_id=0, addr=0)
    network.send_request(req, bank_id=0)  # local: latency 1
    sim.run()
    assert arrivals == [config.latency.local_tile]


def test_remote_request_takes_longer():
    config, sim, stats, network = build()
    arrivals = {}
    network.register_bank(0, lambda msg: arrivals.setdefault("local", sim.now))
    network.register_bank(48, lambda msg: arrivals.setdefault("far", sim.now))
    network.send_request(MemRequest(op=Op.LW, core_id=0, addr=0), 0)
    network.send_request(
        MemRequest(op=Op.LW, core_id=0,
                   addr=48 * 4), 48)  # tile 3: same group here
    sim.run()
    assert arrivals["far"] > arrivals["local"]


def test_per_channel_fifo_order():
    """Messages from one core to one bank arrive in send order."""
    _config, sim, _stats, network = build()
    arrivals = []
    network.register_bank(16, lambda msg: arrivals.append(msg.req_id))
    first = MemRequest(op=Op.SCWAIT, core_id=0, addr=16 * 4)
    second = MemRequest(op=Op.LW, core_id=0, addr=16 * 4)
    network.send_request(first, 16)
    network.send_request(second, 16)
    sim.run()
    assert arrivals == [first.req_id, second.req_id]


def test_message_and_hop_accounting():
    _config, sim, stats, network = build()
    network.register_bank(0, lambda msg: None)
    network.register_core(0, lambda msg: None)
    network.send_request(MemRequest(op=Op.LW, core_id=0, addr=0), 0)
    network.send_response(MemResponse(op=Op.LW, core_id=0, addr=0), 0)
    sim.run()
    assert stats.messages == {"lw": 1, "resp_lw": 1}
    assert stats.hops == 2  # local: 1 hop each way


def test_throttled_port_fifo_spill():
    port = ThrottledPort(per_cycle=2)
    slots = [port.next_slot(10) for _ in range(5)]
    assert slots == [10, 10, 11, 11, 12]


def test_throttled_port_resets_on_gap():
    port = ThrottledPort(per_cycle=1)
    assert port.next_slot(5) == 5
    assert port.next_slot(5) == 6
    assert port.next_slot(100) == 100


def test_tile_ingress_throttles_remote_requests():
    """Many same-cycle remote requests to one tile serialize."""
    config, sim, stats, network = build()
    arrivals = []
    for bank in range(16, 32):  # tile 1
        network.register_bank(bank, lambda msg: arrivals.append(sim.now))
    # 8 remote cores (not in tile 1) target different banks of tile 1.
    for index, core in enumerate([0, 1, 2, 3, 8, 9, 10, 11]):
        addr = (16 + index) * 4
        network.send_request(
            MemRequest(op=Op.LW, core_id=core, addr=addr), 16 + index)
    sim.run()
    assert len(set(arrivals)) == len(arrivals)  # all serialized
    assert stats.ingress_wait_cycles > 0


def test_local_requests_bypass_ingress():
    config, sim, stats, network = build()
    arrivals = []
    for bank in range(4):
        network.register_bank(bank, lambda msg: arrivals.append(sim.now))
    for core in range(4):  # all in tile 0, to tile-0 banks
        network.send_request(
            MemRequest(op=Op.LW, core_id=core, addr=core * 4), core)
    sim.run()
    # All arrive at the same cycle: no shared-port serialization.
    assert len(set(arrivals)) == 1
    assert stats.ingress_wait_cycles == 0
