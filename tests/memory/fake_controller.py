"""A minimal in-place controller double for adapter state-machine tests.

Runs adapters synchronously with no network or timing: responses and
SuccessorUpdates are appended to lists the tests inspect.  Addresses
map to rows directly (single-bank view), which is valid because every
adapter only ever sees addresses of its own bank.
"""

from __future__ import annotations

from repro.engine.stats import BankStats
from repro.interconnect.messages import MemRequest, MemResponse, Op, Status


class FakeController:
    """Implements the controller service interface adapters rely on."""

    def __init__(self, bank_id: int = 0, words: int = 64) -> None:
        from repro.engine.simulator import Simulator
        from repro.memory.bank import SpmBank

        self.bank_id = bank_id
        self.bank = SpmBank(bank_id, words)
        self.stats = BankStats(bank_id=bank_id)
        # Adapters read the clock and the telemetry hub through their
        # controller; a real (never-run) simulator provides both.
        self.sim = Simulator()
        self.telemetry = self.sim.telemetry
        self.responses: list = []
        self.successor_updates: list = []
        self.traces: list = []

    # -- service interface -------------------------------------------------

    def read(self, addr: int) -> int:
        return self.bank.read(addr // 4)

    def write(self, addr: int, value: int) -> None:
        self.bank.write(addr // 4, value)

    def respond(self, req: MemRequest, value: int = 0,
                status: Status = Status.OK,
                successor_pending: bool = False) -> None:
        self.responses.append(MemResponse(
            op=req.op, core_id=req.core_id, addr=req.addr, value=value,
            status=status, req_id=req.req_id,
            successor_pending=successor_pending))

    def send_successor_update(self, msg) -> None:
        self.successor_updates.append(msg)

    def trace(self, kind: str, detail: str = "") -> None:
        """Tracing hook: recorded for assertions, never rendered."""
        self.traces.append((kind, detail))

    # -- test conveniences ----------------------------------------------------

    def pop_response(self) -> MemResponse:
        return self.responses.pop(0)

    def last_response(self) -> MemResponse:
        return self.responses[-1]


def request(op: Op, core: int, addr: int, value: int = 0,
            expected=None) -> MemRequest:
    """Shorthand request constructor."""
    return MemRequest(op=op, core_id=core, addr=addr, value=value,
                      expected=expected)
