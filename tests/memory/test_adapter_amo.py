"""Unit tests for the base adapter (LW/SW/AMO) and the AMO-only unit."""

import pytest

from repro.engine.errors import ProtocolViolation
from repro.interconnect.messages import Op, Status
from repro.memory.adapter import AmoAdapter, AtomicAdapter

from .fake_controller import FakeController, request


@pytest.fixture
def unit():
    ctrl = FakeController()
    adapter = AmoAdapter(ctrl)
    return ctrl, adapter


def test_lw_returns_value(unit):
    ctrl, adapter = unit
    ctrl.write(8, 77)
    adapter.handle(request(Op.LW, core=0, addr=8))
    resp = ctrl.pop_response()
    assert resp.value == 77 and resp.status is Status.OK


def test_sw_stores(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.SW, core=0, addr=4, value=9))
    assert ctrl.read(4) == 9
    assert ctrl.pop_response().status is Status.OK


def test_amo_add_returns_old(unit):
    ctrl, adapter = unit
    ctrl.write(0, 10)
    adapter.handle(request(Op.AMO_ADD, core=1, addr=0, value=5))
    assert ctrl.pop_response().value == 10
    assert ctrl.read(0) == 15


def test_amo_swap(unit):
    ctrl, adapter = unit
    ctrl.write(0, 3)
    adapter.handle(request(Op.AMO_SWAP, core=0, addr=0, value=99))
    assert ctrl.pop_response().value == 3
    assert ctrl.read(0) == 99


def test_amo_bitwise(unit):
    ctrl, adapter = unit
    ctrl.write(0, 0b1100)
    adapter.handle(request(Op.AMO_AND, core=0, addr=0, value=0b1010))
    assert ctrl.read(0) == 0b1000
    adapter.handle(request(Op.AMO_OR, core=0, addr=0, value=0b0001))
    assert ctrl.read(0) == 0b1001
    adapter.handle(request(Op.AMO_XOR, core=0, addr=0, value=0b1111))
    assert ctrl.read(0) == 0b0110


def test_amo_max_min_are_signed(unit):
    ctrl, adapter = unit
    ctrl.write(0, 0xFFFF_FFFF)  # -1 signed
    adapter.handle(request(Op.AMO_MAX, core=0, addr=0, value=3))
    assert ctrl.read(0) == 3
    adapter.handle(request(Op.AMO_MIN, core=0, addr=0, value=-5))
    assert ctrl.bank.to_signed(ctrl.read(0)) == -5


def test_amo_add_wraps_32bit(unit):
    ctrl, adapter = unit
    ctrl.write(0, 0xFFFF_FFFF)
    adapter.handle(request(Op.AMO_ADD, core=0, addr=0, value=2))
    assert ctrl.read(0) == 1


def test_sc_fails_gracefully_on_amo_unit(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 0


def test_lr_rejected_on_amo_unit(unit):
    ctrl, adapter = unit
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.LR, core=0, addr=0))


def test_wait_ops_rejected_on_amo_unit(unit):
    ctrl, adapter = unit
    for op in (Op.LRWAIT, Op.SCWAIT, Op.MWAIT):
        with pytest.raises(ProtocolViolation):
            adapter.handle(request(op, core=0, addr=0))


def test_base_adapter_rejects_reserved_family():
    ctrl = FakeController()
    adapter = AtomicAdapter(ctrl)
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.SC, core=0, addr=0))
