"""Unit tests for SPM bank storage."""

import pytest

from repro.engine.errors import MemoryError_
from repro.memory.bank import SpmBank


def test_read_write_roundtrip():
    bank = SpmBank(0, 16)
    bank.write(3, 42)
    assert bank.read(3) == 42
    assert bank.read(0) == 0


def test_values_truncate_to_word_width():
    bank = SpmBank(0, 4)
    bank.write(0, 1 << 40)
    assert bank.read(0) == 0
    bank.write(0, 0x1_2345_6789)
    assert bank.read(0) == 0x2345_6789


def test_negative_values_wrap_to_unsigned():
    bank = SpmBank(0, 4)
    bank.write(0, -1)
    assert bank.read(0) == 0xFFFF_FFFF


def test_to_signed():
    bank = SpmBank(0, 4)
    assert bank.to_signed(0xFFFF_FFFF) == -1
    assert bank.to_signed(0x7FFF_FFFF) == 0x7FFF_FFFF
    assert bank.to_signed(0x8000_0000) == -(1 << 31)
    assert bank.to_signed(5) == 5


def test_row_bounds_checked():
    bank = SpmBank(0, 8)
    with pytest.raises(MemoryError_):
        bank.read(8)
    with pytest.raises(MemoryError_):
        bank.write(-1, 0)


def test_word64_mask():
    bank = SpmBank(0, 4, word_bytes=8)
    bank.write(0, (1 << 64) + 7)
    assert bank.read(0) == 7
