"""Unit tests for the Colibri controller state machine.

These drive the adapter directly (no network), playing both sides of
the protocol: the tests inject the WakeUpRequests a Qnode would send,
in the orders the paper's §IV-A correctness argument covers.
"""

import pytest

from repro.engine.errors import ProtocolViolation, SimulationError
from repro.interconnect.messages import Op, Status, WakeUpRequest
from repro.memory.colibri import ColibriAdapter

from .fake_controller import FakeController, request


def make(num_addresses=4, strict=True):
    ctrl = FakeController()
    adapter = ColibriAdapter(ctrl, num_addresses=num_addresses,
                             strict=strict)
    return ctrl, adapter


def wakeup(addr, from_core, successor):
    return WakeUpRequest(bank_id=0, addr=addr, from_core=from_core,
                         successor=successor)


def test_first_lrwait_allocates_and_serves():
    ctrl, adapter = make()
    ctrl.write(0, 21)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    resp = ctrl.pop_response()
    assert resp.value == 21 and resp.status is Status.OK
    state = adapter.queue_state(0)
    assert state.head == 0 and state.tail == 0 and state.reservation_valid


def test_second_lrwait_moves_tail_and_sends_successor_update():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    assert len(ctrl.responses) == 1  # core 1 withheld
    update = ctrl.successor_updates[0]
    assert update.prev_core == 0 and update.successor == 1
    state = adapter.queue_state(0)
    assert state.head == 0 and state.tail == 1


def test_scwait_sole_core_frees_queue():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=9))
    resp = ctrl.last_response()
    assert resp.status is Status.OK and not resp.successor_pending
    assert ctrl.read(0) == 9
    assert adapter.queue_state(0) is None  # registers freed


def test_scwait_with_successor_invalidates_head_and_waits_wakeup():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=9))
    resp = ctrl.last_response()
    assert resp.status is Status.OK and resp.successor_pending
    state = adapter.queue_state(0)
    assert not state.head_valid  # temporarily invalidated (Fig. 2)
    # Qnode bounce arrives: successor promoted and served value 9.
    adapter.handle_wakeup(wakeup(0, from_core=0, successor=1))
    served = ctrl.last_response()
    assert served.op is Op.LRWAIT and served.core_id == 1
    assert served.value == 9
    state = adapter.queue_state(0)
    assert state.head == 1 and state.head_valid and state.reservation_valid


def test_three_core_chain_fifo():
    ctrl, adapter = make()
    for core in range(3):
        adapter.handle(request(Op.LRWAIT, core=core, addr=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    adapter.handle_wakeup(wakeup(0, 0, 1))
    adapter.handle(request(Op.SCWAIT, core=1, addr=0, value=2))
    adapter.handle_wakeup(wakeup(0, 1, 2))
    adapter.handle(request(Op.SCWAIT, core=2, addr=0, value=3))
    served = [r.core_id for r in ctrl.responses if r.op is Op.LRWAIT]
    assert served == [0, 1, 2]
    assert ctrl.read(0) == 3
    assert adapter.queue_state(0) is None


def test_interfering_store_fails_head_but_chain_continues():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    adapter.handle(request(Op.SW, core=5, addr=0, value=50))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    resp = ctrl.last_response()
    assert resp.status is Status.SC_FAIL and resp.successor_pending
    assert ctrl.read(0) == 50  # failed SCwait does not write
    adapter.handle_wakeup(wakeup(0, 0, 1))
    served = ctrl.last_response()
    assert served.core_id == 1 and served.value == 50


def test_address_slots_exhaustion_rejects():
    ctrl, adapter = make(num_addresses=2)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=4))
    adapter.handle(request(Op.LRWAIT, core=2, addr=8))
    assert ctrl.last_response().status is Status.QUEUE_FULL
    assert sorted(adapter.tracked_addresses()) == [0, 4]


def test_slot_reusable_after_free():
    ctrl, adapter = make(num_addresses=1)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    adapter.handle(request(Op.LRWAIT, core=1, addr=4))
    assert ctrl.last_response().status is Status.OK


def test_same_queue_not_limited_by_slot_count():
    ctrl, adapter = make(num_addresses=1)
    for core in range(5):
        adapter.handle(request(Op.LRWAIT, core=core, addr=0))
    # Only one tracked address, arbitrarily many waiters on it.
    rejections = [r for r in ctrl.responses
                  if r.status is Status.QUEUE_FULL]
    assert rejections == []


def test_scwait_without_membership_raises():
    ctrl, adapter = make()
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))


def test_scwait_from_non_head_raises():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.SCWAIT, core=1, addr=0, value=1))


def test_double_enqueue_same_core_raises():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.LRWAIT, core=1, addr=0))


def test_wakeup_for_untracked_address_raises():
    ctrl, adapter = make()
    with pytest.raises(SimulationError):
        adapter.handle_wakeup(wakeup(0, 0, 1))


def test_wakeup_while_head_valid_raises():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    with pytest.raises(SimulationError):
        adapter.handle_wakeup(wakeup(0, 0, 1))


# -- Mwait on Colibri (§IV-B) -----------------------------------------------------

def test_mwait_mismatch_completes_and_frees():
    ctrl, adapter = make()
    ctrl.write(0, 5)
    adapter.handle(request(Op.MWAIT, core=0, addr=0, expected=4))
    resp = ctrl.pop_response()
    assert resp.value == 5 and not resp.successor_pending
    assert adapter.queue_state(0) is None


def test_mwait_monitors_and_wakes_on_write():
    ctrl, adapter = make()
    ctrl.write(0, 4)
    adapter.handle(request(Op.MWAIT, core=0, addr=0, expected=4))
    assert ctrl.responses == []
    adapter.handle(request(Op.SW, core=1, addr=0, value=6))
    mwait = [r for r in ctrl.responses if r.op is Op.MWAIT]
    assert mwait and mwait[0].value == 6 and not mwait[0].successor_pending
    assert adapter.queue_state(0) is None


def test_mwait_chain_wakes_through_wakeups():
    ctrl, adapter = make()
    ctrl.write(0, 0)
    adapter.handle(request(Op.MWAIT, core=0, addr=0, expected=0))
    adapter.handle(request(Op.MWAIT, core=1, addr=0, expected=0))
    adapter.handle(request(Op.SW, core=9, addr=0, value=1))
    # Head woken with successor_pending: the wake of core 1 must come
    # through core 0's Qnode bounce, not directly (§IV-B).
    head_resp = [r for r in ctrl.responses if r.op is Op.MWAIT][0]
    assert head_resp.core_id == 0 and head_resp.successor_pending
    adapter.handle_wakeup(wakeup(0, 0, 1))
    woken = [r.core_id for r in ctrl.responses if r.op is Op.MWAIT]
    assert woken == [0, 1]
    assert adapter.queue_state(0) is None


def test_mwait_behind_lrwait_head():
    ctrl, adapter = make()
    ctrl.write(0, 0)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.MWAIT, core=1, addr=0, expected=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=3))
    adapter.handle_wakeup(wakeup(0, 0, 1))
    # Served Mwait sees 3 != 0 -> completes immediately.
    mwait = [r for r in ctrl.responses if r.op is Op.MWAIT]
    assert mwait and mwait[0].value == 3


def test_pending_waiters_accounting():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    assert adapter.pending_waiters() == 0  # head served, not pending
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    assert adapter.pending_waiters() == 1
    ctrl.write(4, 0)
    adapter.handle(request(Op.MWAIT, core=2, addr=4, expected=0))
    assert adapter.pending_waiters() == 2  # monitoring head counts
