"""Unit tests for the MemPool-style single-slot LR/SC adapter."""

import pytest

from repro.interconnect.messages import Op, Status
from repro.memory.lrsc import LrscAdapter

from .fake_controller import FakeController, request


@pytest.fixture
def unit():
    ctrl = FakeController()
    adapter = LrscAdapter(ctrl)
    return ctrl, adapter


def test_lr_sc_success(unit):
    ctrl, adapter = unit
    ctrl.write(0, 5)
    adapter.handle(request(Op.LR, core=0, addr=0))
    assert ctrl.pop_response().value == 5
    adapter.handle(request(Op.SC, core=0, addr=0, value=6))
    assert ctrl.pop_response().status is Status.OK
    assert ctrl.read(0) == 6
    assert adapter.reservation is None


def test_newer_lr_steals_single_slot(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=1, addr=4))  # steals the slot
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 0  # failed SC writes nothing
    adapter.handle(request(Op.SC, core=1, addr=4, value=2))
    assert ctrl.pop_response().status is Status.OK


def test_sc_without_reservation_fails(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_sc_wrong_address_fails(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=4, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_store_clears_matching_reservation(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.SW, core=1, addr=0, value=9))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 9


def test_store_elsewhere_keeps_reservation(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.SW, core=1, addr=8, value=9))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.OK


def test_amo_clears_reservation(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.AMO_ADD, core=1, addr=0, value=1))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=5))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_successful_sc_consumes_reservation(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    ctrl.responses.clear()
    # A second SC with no new LR must fail.
    adapter.handle(request(Op.SC, core=0, addr=0, value=2))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 1


def test_reservation_stats_counted(unit):
    ctrl, adapter = unit
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=1, addr=0))
    assert ctrl.stats.reservations_placed == 2
    assert ctrl.stats.reservations_invalidated == 1
