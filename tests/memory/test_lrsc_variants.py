"""Unit tests for the related-work LR/SC adapters (§II comparators)."""

import pytest

from repro.interconnect.messages import Op, Status
from repro.memory.lrsc_variants import LrscBankAdapter, LrscTableAdapter

from .fake_controller import FakeController, request


# -- ATUN-style reservation table -------------------------------------------------

@pytest.fixture
def table():
    ctrl = FakeController()
    return ctrl, LrscTableAdapter(ctrl)


def test_table_lr_does_not_evict_other_cores(table):
    ctrl, adapter = table
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=1, addr=4))
    assert adapter.live_reservations == 2
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    adapter.handle(request(Op.SC, core=1, addr=4, value=2))
    assert all(r.status is Status.OK for r in ctrl.responses)


def test_table_sc_fails_on_real_conflict_only(table):
    ctrl, adapter = table
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=1, addr=0))  # same address is fine
    adapter.handle(request(Op.SC, core=1, addr=0, value=7))  # core 1 wins
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=9))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 7


def test_table_store_elsewhere_does_not_invalidate(table):
    ctrl, adapter = table
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.SW, core=1, addr=8, value=1))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=3))
    assert ctrl.pop_response().status is Status.OK


def test_table_new_lr_replaces_own_slot(table):
    ctrl, adapter = table
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=0, addr=4))  # one slot per core
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL  # slot moved on
    adapter.handle(request(Op.SC, core=0, addr=4, value=1))
    assert ctrl.pop_response().status is Status.OK  # slot held addr 4


def test_table_sc_without_lr_fails(table):
    ctrl, adapter = table
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL


# -- GRVI-style bank-granularity bits ------------------------------------------------

@pytest.fixture
def bank():
    ctrl = FakeController()
    return ctrl, LrscBankAdapter(ctrl)


def test_bank_lr_sc_success(bank):
    ctrl, adapter = bank
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.SC, core=0, addr=0, value=5))
    assert ctrl.responses[-1].status is Status.OK
    assert ctrl.read(0) == 5
    assert adapter.live_reservations == 0  # own store cleared the bit


def test_bank_spurious_failure_from_unrelated_store(bank):
    ctrl, adapter = bank
    adapter.handle(request(Op.LR, core=0, addr=0))
    # A store to a *different* address of the same bank.
    adapter.handle(request(Op.SW, core=1, addr=12, value=1))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=0, addr=0, value=5))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_bank_winning_sc_clears_all_bits(bank):
    ctrl, adapter = bank
    adapter.handle(request(Op.LR, core=0, addr=0))
    adapter.handle(request(Op.LR, core=1, addr=4))
    adapter.handle(request(Op.SC, core=0, addr=0, value=1))
    ctrl.responses.clear()
    adapter.handle(request(Op.SC, core=1, addr=4, value=2))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_bank_multiple_reserved_cores(bank):
    ctrl, adapter = bank
    for core in range(4):
        adapter.handle(request(Op.LR, core=core, addr=0))
    assert adapter.live_reservations == 4
