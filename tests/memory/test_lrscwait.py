"""Unit tests for the centralized LRSCwait_q adapter."""

import pytest

from repro.engine.errors import ProtocolViolation
from repro.interconnect.messages import Op, Status
from repro.memory.lrscwait import LrscWaitAdapter

from .fake_controller import FakeController, request


def make(queue_slots=None, strict=True):
    ctrl = FakeController()
    adapter = LrscWaitAdapter(ctrl, queue_slots=queue_slots, strict=strict)
    return ctrl, adapter


def test_first_lrwait_served_immediately():
    ctrl, adapter = make()
    ctrl.write(0, 11)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    resp = ctrl.pop_response()
    assert resp.value == 11 and resp.status is Status.OK


def test_second_lrwait_withheld_until_scwait():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    assert len(ctrl.responses) == 1  # core 1 still sleeping
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=7))
    # Now: SCwait OK response + core 1's LRwait response with value 7.
    statuses = [(r.op, r.status, r.value) for r in ctrl.responses[1:]]
    assert (Op.SCWAIT, Status.OK, 0) in statuses
    assert (Op.LRWAIT, Status.OK, 7) in statuses


def test_fifo_service_order():
    ctrl, adapter = make()
    for core in range(4):
        adapter.handle(request(Op.LRWAIT, core=core, addr=0))
    served = [r.core_id for r in ctrl.responses if r.op is Op.LRWAIT]
    assert served == [0]
    for core in range(3):
        adapter.handle(request(Op.SCWAIT, core=core, addr=0, value=core))
    served = [r.core_id for r in ctrl.responses if r.op is Op.LRWAIT]
    assert served == [0, 1, 2, 3]  # strict FIFO — starvation freedom


def test_queue_full_rejects_immediately():
    ctrl, adapter = make(queue_slots=2)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    adapter.handle(request(Op.LRWAIT, core=2, addr=0))
    resp = ctrl.last_response()
    assert resp.core_id == 2 and resp.status is Status.QUEUE_FULL
    assert adapter.pending_waiters() == 2


def test_slot_freed_after_scwait():
    ctrl, adapter = make(queue_slots=1)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    assert ctrl.last_response().status is Status.OK
    assert ctrl.last_response().value == 1


def test_interfering_store_fails_head_scwait():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.SW, core=1, addr=0, value=50))
    ctrl.responses.clear()
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL
    assert ctrl.read(0) == 50  # failed SCwait writes nothing


def test_next_head_served_fresh_value_after_failed_scwait():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    adapter.handle(request(Op.SW, core=2, addr=0, value=50))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=1))
    lrwait_responses = [r for r in ctrl.responses if r.op is Op.LRWAIT]
    assert lrwait_responses[-1].core_id == 1
    assert lrwait_responses[-1].value == 50


def test_scwait_from_non_head_raises_in_strict_mode():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.SCWAIT, core=1, addr=0, value=1))


def test_scwait_from_non_head_fails_in_permissive_mode():
    ctrl, adapter = make(strict=False)
    adapter.handle(request(Op.SCWAIT, core=1, addr=0, value=1))
    assert ctrl.pop_response().status is Status.SC_FAIL


def test_double_lrwait_same_core_raises():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.LRWAIT, core=0, addr=0))


def test_plain_lr_rejected():
    ctrl, adapter = make()
    with pytest.raises(ProtocolViolation):
        adapter.handle(request(Op.LR, core=0, addr=0))


# -- Mwait -----------------------------------------------------------------------

def test_mwait_completes_immediately_on_mismatch():
    ctrl, adapter = make()
    ctrl.write(0, 3)
    adapter.handle(request(Op.MWAIT, core=0, addr=0, expected=7))
    resp = ctrl.pop_response()
    assert resp.value == 3 and resp.status is Status.OK
    assert adapter.pending_waiters() == 0


def test_mwait_monitors_until_write():
    ctrl, adapter = make()
    ctrl.write(0, 7)
    adapter.handle(request(Op.MWAIT, core=0, addr=0, expected=7))
    assert ctrl.responses == []  # sleeping
    adapter.handle(request(Op.SW, core=1, addr=0, value=8))
    mwait = [r for r in ctrl.responses if r.op is Op.MWAIT]
    assert mwait and mwait[0].value == 8


def test_mwait_chain_cascades_on_one_write():
    ctrl, adapter = make()
    ctrl.write(0, 0)
    for core in range(3):
        adapter.handle(request(Op.MWAIT, core=core, addr=0, expected=0))
    assert ctrl.responses == []
    adapter.handle(request(Op.SW, core=9, addr=0, value=1))
    woken = [r.core_id for r in ctrl.responses if r.op is Op.MWAIT]
    assert woken == [0, 1, 2]
    assert adapter.pending_waiters() == 0


def test_mwait_behind_lrwait_served_after_scwait():
    ctrl, adapter = make()
    ctrl.write(0, 0)
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.MWAIT, core=1, addr=0, expected=0))
    adapter.handle(request(Op.SCWAIT, core=0, addr=0, value=5))
    mwait = [r for r in ctrl.responses if r.op is Op.MWAIT]
    # The SCwait changed the value, so the Mwait completes on serve.
    assert mwait and mwait[0].core_id == 1 and mwait[0].value == 5


def test_queue_depth_introspection():
    ctrl, adapter = make()
    adapter.handle(request(Op.LRWAIT, core=0, addr=0))
    adapter.handle(request(Op.LRWAIT, core=1, addr=0))
    adapter.handle(request(Op.LRWAIT, core=2, addr=4))
    assert adapter.queue_depth(0) == 2
    assert adapter.queue_depth(4) == 1
    assert adapter.queue_depth(8) == 0
    assert adapter.pending_waiters() == 3
