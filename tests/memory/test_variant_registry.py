"""The open variant API: registry, schemas, cost hooks, new variants."""

import pytest

from repro.engine.errors import ConfigError
from repro.machine import Machine
from repro.arch.config import SystemConfig
from repro.memory.extra_variants import LrscBackoffAdapter, TicketAdapter
from repro.memory.variants import (
    AtomicVariant,
    UnknownVariantError,
    VariantParam,
    VariantSpec,
    get_variant,
    list_variants,
    register_variant,
    unregister_variant,
)
from repro.power.area import TILE_BASE_KGE, variant_overhead_kge
from repro.power.energy import EnergyModel
from repro.scenarios.spec import parse_variant, variant_string

from .fake_controller import FakeController


# -- registry mechanics --------------------------------------------------------


class _ToyAdapter:
    def __init__(self, controller, knob):
        self.ctrl = controller
        self.knob = knob


@pytest.fixture
def toy_variant():
    @register_variant("toy")
    class ToyVariant(AtomicVariant):
        """A registration-test variant."""

        description = "toy"
        params = {"knob": VariantParam(default=3, minimum=1,
                                       symbolic=("cores",))}
        positional = "knob"
        supports_lrsc = True
        native_method = "lrsc"

        def make_adapter(self, controller, params, num_cores, strict):
            return _ToyAdapter(controller, params["knob"])

        def tile_area_kge(self, params, num_cores, banks=None, cores=None):
            return 2.0 * params["knob"]

    yield ToyVariant
    unregister_variant("toy")


def test_register_and_lookup(toy_variant):
    assert get_variant("toy").description == "toy"
    assert "toy" in dict(list_variants())
    from repro.memory.variants import VARIANT_KINDS
    assert "toy" in VARIANT_KINDS            # live registry view


def test_duplicate_registration_rejected(toy_variant):
    with pytest.raises(ConfigError, match="already registered"):
        register_variant("toy")(toy_variant)
    register_variant("toy", replace=True)(toy_variant)  # explicit shadow


def test_registration_rejects_unparseable_names():
    """Grammar punctuation and the 'ideal' alias can never resolve."""
    for bad in ("my-variant", "a:b", "a=b", "a,b", "ideal", ""):
        with pytest.raises(ConfigError):
            register_variant(bad)


def test_registration_rejects_unresolvable_symbolic_tokens():
    """A schema token without a resolution rule fails at import time,
    not with a KeyError mid-run."""
    with pytest.raises(ConfigError, match="no resolution rule"):
        @register_variant("sym_toy")
        class SymToy(AtomicVariant):
            """Bad symbolic declaration."""
            params = {"knob": VariantParam(default=1, symbolic=("max",))}
    unregister_variant("sym_toy")


def test_unknown_variant_error_everywhere():
    with pytest.raises(UnknownVariantError):
        get_variant("warp")
    with pytest.raises(UnknownVariantError):
        VariantSpec(kind="warp")
    with pytest.raises(UnknownVariantError):
        parse_variant("warp:8", 16)


def test_registered_variant_parses_and_builds(toy_variant):
    variant = parse_variant("toy:5", 16)
    assert variant.get("knob") == 5
    assert variant_string(variant) == "toy:5"
    assert variant.supports_lrsc and variant.native_method == "lrsc"
    from repro.memory.controller import build_adapter
    adapter = build_adapter(FakeController(), variant, num_cores=16,
                            strict=True)
    assert isinstance(adapter, _ToyAdapter) and adapter.knob == 5


def test_symbolic_values_resolve_at_build_time(toy_variant):
    variant = VariantSpec(kind="toy", knob="cores")
    assert variant.get("knob") == "cores"    # stored symbolically
    assert variant.resolved(num_cores=16) == {"knob": 16}
    from repro.memory.controller import build_adapter
    adapter = build_adapter(FakeController(), variant, num_cores=64,
                            strict=True)
    assert adapter.knob == 64


def test_param_schema_validation(toy_variant):
    with pytest.raises(ConfigError, match="no parameter"):
        VariantSpec(kind="toy", slots=4)
    with pytest.raises(ConfigError, match=">= 1"):
        VariantSpec(kind="toy", knob=0)
    with pytest.raises(ConfigError, match="not an int"):
        VariantSpec(kind="toy", knob="half")   # not in its symbolic set
    with pytest.raises(ConfigError, match="must be an int"):
        VariantSpec(kind="toy", knob=2.5)


def test_area_hook_flows_through_model(toy_variant):
    variant = VariantSpec(kind="toy", knob=5)
    assert variant_overhead_kge(variant, num_cores=64) == 10.0
    from repro.power.area import system_overhead_kge
    assert system_overhead_kge(64, "toy") == (64 // 4) * 6.0  # default knob


# -- built-in hooks reproduce the fitted Table I model -------------------------


def test_builtin_area_hooks_match_fitted_models():
    from repro.power.area import colibri_tile, lrscwait_tile
    assert variant_overhead_kge(VariantSpec.lrscwait(8), 256) \
        == lrscwait_tile(8).kge - TILE_BASE_KGE
    assert variant_overhead_kge(VariantSpec.lrscwait_ideal(), 256) \
        == lrscwait_tile(256).kge - TILE_BASE_KGE
    assert variant_overhead_kge(VariantSpec.colibri(4), 256) \
        == colibri_tile(4).kge - TILE_BASE_KGE
    assert variant_overhead_kge(VariantSpec.amo(), 256) == 0.0


def test_related_work_variants_now_have_area_models():
    """Pre-registry, these kinds raised; now the §II storage-scaling
    story is quantified: per-core tables dwarf everything."""
    from repro.power.area import system_overhead_kge
    table = system_overhead_kge(256, "lrsc_table")
    bank_bits = system_overhead_kge(256, "lrsc_bank")
    slot = system_overhead_kge(256, "lrsc")
    assert table > bank_bits > slot > 0
    assert table > system_overhead_kge(256, "colibri")


# -- the two registered extra variants -----------------------------------------


def _run_counter_storm(variant_text, num_cores=8, increments=6):
    machine = Machine(SystemConfig.scaled(num_cores),
                      parse_variant(variant_text, num_cores), seed=1)
    counter = machine.allocator.alloc_interleaved(1)
    wait = parse_variant(variant_text, num_cores).supports_wait

    def kernel(api):
        for _ in range(increments):
            if wait:
                resp = yield from api.lrwait(counter)
                yield from api.scwait(counter, resp.value + 1)
            else:
                while True:
                    value = yield from api.lr(counter)
                    ok = yield from api.sc(counter, value + 1)
                    if ok:
                        break
            yield from api.retire()

    machine.load_all(kernel)
    stats = machine.run()
    assert machine.peek(counter) == num_cores * increments
    return machine, stats


def test_lrsc_backoff_correct_and_throttled():
    machine, stats = _run_counter_storm("lrsc_backoff:base=4,cap=32")
    assert isinstance(machine.banks[0].adapter, LrscBackoffAdapter)
    _machine, plain = _run_counter_storm("lrsc")
    # The throttle's whole point: fewer failed SCs than raw LR/SC.
    assert stats.total_sc_failures < plain.total_sc_failures


def test_ticket_correct_and_bounds_tracked_addresses():
    machine, stats = _run_counter_storm("ticket:2")
    adapter = machine.banks[0].adapter
    assert isinstance(adapter, TicketAdapter)
    assert adapter.num_addresses == 2
    assert stats.total_sc_failures == 0      # wait queues retry-free


def test_ticket_rejects_waits_beyond_tracked_addresses():
    from repro.interconnect.messages import Op, Status

    from .fake_controller import request
    adapter = TicketAdapter(FakeController(), num_addresses=1)
    adapter.handle(request(Op.LRWAIT, 0, 0x0))
    adapter.handle(request(Op.LRWAIT, 1, 0x0))
    assert adapter.tracked_addresses == 1
    adapter.handle(request(Op.LRWAIT, 2, 0x4))
    assert adapter.ctrl.last_response().status is Status.QUEUE_FULL
    # Unbounded waiters on the one tracked address, though.
    adapter.handle(request(Op.LRWAIT, 3, 0x0))
    assert adapter.pending_waiters() == 3


def test_energy_hook_charges_extra_variants_only():
    _machine, builtin = _run_counter_storm("colibri")
    _machine, ticket = _run_counter_storm("ticket")
    assert EnergyModel().evaluate(builtin).adapter_pj == 0.0
    report = EnergyModel().evaluate(ticket)
    assert report.adapter_pj > 0.0
    assert report.total_pj == pytest.approx(
        report.core_pj + report.bank_pj + report.network_pj
        + report.adapter_pj)
