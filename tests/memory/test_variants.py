"""Tests for variant specifications and adapter construction."""

import pytest

from repro.engine.errors import ConfigError
from repro.memory.adapter import AmoAdapter
from repro.memory.colibri import ColibriAdapter
from repro.memory.controller import build_adapter
from repro.memory.lrsc import LrscAdapter
from repro.memory.lrsc_variants import LrscBankAdapter, LrscTableAdapter
from repro.memory.lrscwait import LrscWaitAdapter
from repro.memory.variants import VARIANT_KINDS, VariantSpec

from .fake_controller import FakeController


def test_factories_produce_expected_kinds():
    assert VariantSpec.amo().kind == "amo"
    assert VariantSpec.lrsc().kind == "lrsc"
    assert VariantSpec.lrsc_table().kind == "lrsc_table"
    assert VariantSpec.lrsc_bank().kind == "lrsc_bank"
    assert VariantSpec.lrscwait(4).queue_slots == 4
    assert VariantSpec.lrscwait_ideal().queue_slots is None
    assert VariantSpec.colibri(8).num_addresses == 8


def test_all_kinds_registered():
    for kind in VARIANT_KINDS:
        VariantSpec(kind=kind)  # must not raise


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError):
        VariantSpec(kind="mystery")


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigError):
        VariantSpec(kind="lrscwait", queue_slots=0)
    with pytest.raises(ConfigError):
        VariantSpec(kind="colibri", num_addresses=0)


def test_capability_queries():
    assert VariantSpec.lrsc().supports_lrsc
    assert VariantSpec.lrsc_table().supports_lrsc
    assert VariantSpec.lrsc_bank().supports_lrsc
    assert not VariantSpec.colibri().supports_lrsc
    assert VariantSpec.colibri().supports_wait
    assert VariantSpec.lrscwait(2).supports_wait
    assert not VariantSpec.amo().supports_wait
    assert not VariantSpec.amo().supports_lrsc


def test_labels():
    assert VariantSpec.amo().label() == "AtomicAdd"
    assert VariantSpec.lrsc().label() == "LRSC"
    assert VariantSpec.lrsc_table().label() == "LRSC_table"
    assert VariantSpec.lrsc_bank().label() == "LRSC_bank"
    assert VariantSpec.lrscwait(8).label() == "LRSCwait_8"
    assert VariantSpec.lrscwait_ideal().label() == "LRSCwait_ideal"
    assert VariantSpec.colibri().label() == "Colibri"


@pytest.mark.parametrize("spec,adapter_cls", [
    (VariantSpec.amo(), AmoAdapter),
    (VariantSpec.lrsc(), LrscAdapter),
    (VariantSpec.lrsc_table(), LrscTableAdapter),
    (VariantSpec.lrsc_bank(), LrscBankAdapter),
    (VariantSpec.lrscwait(4), LrscWaitAdapter),
    (VariantSpec.lrscwait_ideal(), LrscWaitAdapter),
    (VariantSpec.colibri(2), ColibriAdapter),
])
def test_build_adapter_dispatch(spec, adapter_cls):
    adapter = build_adapter(FakeController(), spec, num_cores=16,
                            strict=True)
    assert isinstance(adapter, adapter_cls)


def test_ideal_queue_sized_to_core_count():
    adapter = build_adapter(FakeController(), VariantSpec.lrscwait_ideal(),
                            num_cores=64, strict=True)
    assert adapter.queue_slots == 64


def test_colibri_adapter_gets_address_count():
    adapter = build_adapter(FakeController(), VariantSpec.colibri(7),
                            num_cores=16, strict=True)
    assert adapter.num_addresses == 7
