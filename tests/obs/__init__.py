"""Platform observability: spans, metrics, traces, profiling, CLI."""
