"""CLI surface: --obs-trace / --profile flags and `repro obs summary`."""

import json
import pstats

from repro.cli import main
from repro.obs import validate_trace

SMOKE_SWEEP = ["sweep", "histogram", "--axis", "bins=1,4",
               "--set", "updates_per_core=2", "--cores", "8"]

SMOKE_EXPLORE = ["explore", "histogram", "--smoke",
                 "--axis", "bins=1,4", "--axis", "variant=lrsc,colibri",
                 "--objective", "min:cycles", "--budget", "4"]


def run_cli(capsys, argv, expect_code=0):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == expect_code, captured.out + captured.err
    return captured.out + captured.err


def test_sweep_obs_trace_is_schema_valid(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    out = run_cli(capsys, SMOKE_SWEEP + ["--obs-trace", str(trace)])
    assert f"obs trace: {trace}" in out
    with open(trace) as stream:
        document = json.load(stream)
    validate_trace(document)
    cats = {event["cat"] for event in document["traceEvents"]
            if event["ph"] == "X"}
    assert cats == {"point", "phase"}
    assert document["otherData"]["timers"]["span.point"]["count"] == 2


def test_explore_obs_trace_covers_campaign_hierarchy(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    run_cli(capsys, SMOKE_EXPLORE + ["--out", str(tmp_path / "camp"),
                                     "--obs-trace", str(trace)])
    with open(trace) as stream:
        document = json.load(stream)
    validate_trace(document)
    cats = {event["cat"] for event in document["traceEvents"]
            if event["ph"] == "X"}
    assert {"campaign", "schedule", "point", "phase"} <= cats
    counters = document["otherData"]["counters"]
    assert counters["campaign.points"] == 4
    assert counters["campaign.paid"] == 4


def test_obs_summary_on_trace_and_journal(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    run_cli(capsys, SMOKE_EXPLORE + ["--out", str(tmp_path / "camp"),
                                     "--obs-trace", str(trace)])
    trace_out = run_cli(capsys, ["obs", "summary", str(trace)])
    assert "obs summary (trace)" in trace_out
    for field in ("wall clock (s)", "points run", "cache hit rate",
                  "pool reuse ratio", "points/sec"):
        assert field in trace_out, field

    journal = str(tmp_path / "camp" / "journal.json")
    journal_out = run_cli(capsys, ["obs", "summary", journal])
    assert "obs summary (journal)" in journal_out
    assert "paid (fresh sims)" in journal_out
    assert "simulated wall (s)" in journal_out


def test_profile_dumps_hottest_phase_pstats(capsys, tmp_path):
    profile = tmp_path / "profile.pstats"
    out = run_cli(capsys, SMOKE_SWEEP + ["--profile", str(profile)])
    assert "profile (" in out
    assert str(profile) in out
    stats = pstats.Stats(str(profile))
    assert stats.total_calls > 0


def test_profile_with_jobs_exits_2(capsys, tmp_path):
    out = run_cli(capsys,
                  SMOKE_SWEEP + ["--profile", str(tmp_path / "p"),
                                 "--jobs", "2"],
                  expect_code=2)
    assert "--profile needs --jobs 1" in out


def test_obs_trace_with_jobs_merges_workers(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    run_cli(capsys, SMOKE_SWEEP + ["--jobs", "2",
                                   "--obs-trace", str(trace)])
    with open(trace) as stream:
        document = json.load(stream)
    validate_trace(document)
    lanes = {event["tid"] for event in document["traceEvents"]
             if event["ph"] == "X"}
    assert 0 not in lanes          # every point ran on a worker lane
    assert document["otherData"]["timers"]["span.point"]["count"] == 2


def test_obs_summary_rejects_non_artifacts(capsys, tmp_path):
    out = run_cli(capsys, ["obs", "summary", str(tmp_path / "nope.json")],
                  expect_code=2)
    assert "cannot read" in out

    other = tmp_path / "other.json"
    other.write_text(json.dumps({"something": "else"}))
    out = run_cli(capsys, ["obs", "summary", str(other)], expect_code=2)
    assert "not an --obs-trace file" in out

    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    out = run_cli(capsys, ["obs", "summary", str(broken)], expect_code=2)
    assert "not valid JSON" in out


def test_cache_stats_reports_lifetime_rates(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    argv = SMOKE_SWEEP + ["--cache-dir", cache_dir]
    run_cli(capsys, argv)                   # cold: 2 misses, 2 stores
    run_cli(capsys, argv)                   # warm: 2 hits
    out = run_cli(capsys, ["cache", "stats", "--cache-dir", cache_dir])
    assert "lifetime hits" in out
    assert "lifetime hit rate" in out
    assert "50.0%" in out                   # 2 hits / 4 lookups


def test_obs_summary_tolerates_truncated_journal(capsys, tmp_path):
    camp = tmp_path / "camp"
    run_cli(capsys, SMOKE_EXPLORE + ["--out", str(camp)])
    journal = camp / "journal.json"
    text = journal.read_text()
    journal.write_text(text[:len(text) // 2])  # crash mid-write
    out = run_cli(capsys, ["obs", "summary", str(journal)])
    assert "obs summary (journal)" in out
    assert "warning: artifact truncated" in out


def test_obs_summary_reads_event_logs(capsys, tmp_path):
    camp = tmp_path / "camp"
    run_cli(capsys, SMOKE_EXPLORE + ["--out", str(camp), "--events"])
    out = run_cli(capsys, ["obs", "summary",
                           str(camp / "events.jsonl")])
    assert "obs summary (events)" in out
    assert "points finished" in out
    assert "writer sessions" in out


def test_explore_events_needs_a_directory(capsys):
    out = run_cli(capsys, SMOKE_EXPLORE + ["--events"], expect_code=2)
    assert "--events needs --out DIR" in out


def test_status_on_finished_campaign(capsys, tmp_path):
    camp = tmp_path / "camp"
    run_cli(capsys, SMOKE_EXPLORE + ["--out", str(camp), "--events"])
    out = run_cli(capsys, ["status", str(camp)])
    assert "state:    finished (complete)" in out
    assert "100.0%" in out
    assert "(4/4 paid, 0 free)" in out

    snapshot = json.loads(run_cli(capsys,
                                  ["status", str(camp), "--json"]))
    assert snapshot["state"] == "finished (complete)"
    assert snapshot["points"] == 4
    assert snapshot["events"]["batches"] >= 1
    # Event-log totals reconcile against the journal on disk.
    assert snapshot["journal"]["evaluations"] == snapshot["points"]
    assert snapshot["journal"]["paid"] == snapshot["paid"]

    follow_out = run_cli(capsys, ["status", str(camp), "--follow",
                                  "--timeout", "5"])
    assert "follow: stopped (finished (complete))" in follow_out


def test_status_json_follow_conflict(capsys, tmp_path):
    out = run_cli(capsys, ["status", str(tmp_path), "--json",
                           "--follow"], expect_code=2)
    assert "drop --follow" in out


def test_status_missing_path_exits_2(capsys, tmp_path):
    out = run_cli(capsys, ["status", str(tmp_path / "ghost")],
                  expect_code=2)
    assert "cannot read" in out


def test_cache_stats_json(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    argv = SMOKE_SWEEP + ["--cache-dir", cache_dir]
    run_cli(capsys, argv)
    run_cli(capsys, argv)
    stats = json.loads(run_cli(capsys, ["cache", "stats", "--json",
                                        "--cache-dir", cache_dir]))
    assert stats["entries"] == 2
    assert stats["lifetime"]["hits"] == 2
    assert stats["lifetime_hit_rate"] == 0.5
