"""Crash realism: SIGKILL a live campaign, read the wreckage from disk.

The control plane's whole reason to exist is the campaign that died
without a goodbye.  This test runs a real ``repro explore --events``
campaign in a subprocess, SIGKILLs it mid-flight (after the first
journal checkpoint lands, during the second batch), and then asserts
the three recovery properties end to end:

* the event log is schema-valid up to its last complete line;
* ``repro status`` reconstructs partial progress and reports the
  coordinator as dead — from the on-disk artifacts alone;
* ``--resume`` converges to the exact journal an uninterrupted run
  produces (modulo per-point wall-clock timings).
"""

import copy
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.obs import collect_status, render_status
from repro.obs.eventlog import events_path, validate_events_file
from repro.obs.heartbeat import heartbeat_dir

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Sized so the first batch checkpoints quickly but the second batch
#: leaves a kill window orders of magnitude wider than poll latency.
EXPLORE_ARGS = [
    "explore", "histogram",
    "--axis", "bins=1,2,4,8,16",
    "--axis", "variant=lrsc,colibri",
    "--budget", "10",
    "--set", "updates_per_core=128",
    "--seed", "0",
    "--events",
]


def _run(args, directory_flag, directory, timeout=120):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro"] + args
        + [directory_flag, str(directory)],
        env=env, capture_output=True, text=True, timeout=timeout)


def _strip_wall(document):
    document = copy.deepcopy(document)
    for record in document.get("evaluations", []):
        record.pop("wall_ms", None)
    return document


@pytest.fixture(scope="module")
def killed_campaign(tmp_path_factory):
    directory = tmp_path_factory.mktemp("crash") / "camp"
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + EXPLORE_ARGS
        + ["--out", str(directory)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True)
    journal = directory / "journal.json"
    deadline = time.time() + 60
    try:
        while not journal.exists():
            if proc.poll() is not None:
                pytest.fail("campaign exited before first checkpoint:\n"
                            + proc.stderr.read())
            if time.time() > deadline:
                pytest.fail("no journal checkpoint within 60s")
            time.sleep(0.002)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()  # reap, so liveness sees the pid as gone
    return directory


def test_event_log_valid_to_last_complete_line(killed_campaign):
    records, warnings = validate_events_file(
        events_path(str(killed_campaign)))
    assert records, "a checkpointed campaign must have emitted events"
    assert [r for r in records if r["event"] == "campaign_started"]
    # A torn final line is legal; anything else unparseable is not.
    assert all("truncated mid-write" in warning for warning in warnings)
    # SIGKILL outruns the farewell: no campaign_finished record.
    assert not [r for r in records
                if r["event"] == "campaign_finished"]


def test_status_reports_partial_progress_and_dead_workers(
        killed_campaign):
    status = collect_status(str(killed_campaign))
    # Killed after the first checkpoint, before the campaign finished:
    # progress is real but incomplete.
    assert 1 <= status["points"] < 10
    assert status["budget"] == 10
    assert 0 < status["fraction"] < 1.0
    # The coordinator's heartbeat file survived the kill and its pid is
    # gone — the status must say so, not guess "running".
    dead = [entry for entry in status["workers"]
            if entry["liveness"] == "dead"]
    assert dead, f"expected a dead heartbeat, got {status['workers']}"
    assert status["state"].startswith("dead (coordinator pid")
    text = render_status(status)
    assert "DEAD" in text


def test_status_survives_heartbeat_dir_removal(killed_campaign):
    # Same wreckage, heartbeats swept away (tmpwatch, manual cleanup):
    # the event log alone must still yield partial progress.
    import shutil
    hb_dir = heartbeat_dir(str(killed_campaign))
    backup = hb_dir + ".bak"
    shutil.move(hb_dir, backup)
    try:
        status = collect_status(str(killed_campaign))
        assert status["points"] >= 1
        assert not status["state"].startswith("finished")
    finally:
        shutil.move(backup, hb_dir)


def test_resume_converges_to_uninterrupted_journal(
        killed_campaign, tmp_path):
    resumed = _run(EXPLORE_ARGS, "--resume", killed_campaign)
    assert resumed.returncode == 0, resumed.stderr
    clean_dir = tmp_path / "uninterrupted"
    clean = _run(EXPLORE_ARGS, "--out", clean_dir)
    assert clean.returncode == 0, clean.stderr

    with open(killed_campaign / "journal.json") as stream:
        resumed_journal = json.load(stream)
    with open(clean_dir / "journal.json") as stream:
        clean_journal = json.load(stream)
    assert _strip_wall(resumed_journal) == _strip_wall(clean_journal)

    # The resumed session appended a second writer session to the same
    # event log, and the file as a whole still validates.
    records, _ = validate_events_file(events_path(str(killed_campaign)))
    sessions = [r for r in records if r["event"] == "campaign_started"]
    assert len(sessions) == 2
    assert sessions[1]["resumed"] > 0

    # Post-resume status: finished, 100%, reconciled with the journal.
    status = collect_status(str(killed_campaign))
    assert status["state"] == "finished (complete)"
    assert status["fraction"] == 1.0
    assert status["points"] == len(resumed_journal["evaluations"])
    assert status["paid"] <= 10
    # Clean shutdown removed the resumed coordinator's heartbeat; only
    # the killed session's orphan file remains.
    leftovers = os.listdir(heartbeat_dir(str(killed_campaign)))
    assert len(leftovers) == 1
