"""EventLog: crash-safe appends, per-writer seq contract, validation."""

import json
import os

import pytest

from repro.engine.errors import ConfigError
from repro.obs import EventLog, read_events, validate_events
from repro.obs.eventlog import (EVENTS_VERSION, events_path, parse_events,
                                validate_events_file)
from repro.obs.schema import SchemaError


def _log(tmp_path):
    return EventLog(str(tmp_path / "events.jsonl"))


def test_emit_writes_one_json_line_per_event(tmp_path):
    with _log(tmp_path) as log:
        log.emit("campaign_started", workload="mixed", sampler="grid",
                 budget=8)
        log.emit("point_started", spec_hash="abc123")
    lines = [line for line in
             (tmp_path / "events.jsonl").read_text().split("\n")
             if line.strip()]
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["v"] == EVENTS_VERSION
    assert first["event"] == "campaign_started"
    assert first["seq"] == 0
    assert first["pid"] == os.getpid()
    assert first["budget"] == 8
    assert json.loads(lines[1])["seq"] == 1


def test_emit_is_immediately_durable(tmp_path):
    # No close() before reading: a reader must see the record anyway,
    # because a SIGKILLed writer never gets to close.
    log = _log(tmp_path)
    log.emit("cache_store", key="deadbeef")
    records, warnings = read_events(log.path)
    assert [record["event"] for record in records] == ["cache_store"]
    assert warnings == []
    log.close()


def test_last_seq_tracks_emissions(tmp_path):
    with _log(tmp_path) as log:
        assert log.last_seq == -1
        log.emit("cache_store")
        log.emit("cache_evict", count=2)
        assert log.last_seq == 1


def test_events_path_joins_convention(tmp_path):
    assert events_path(str(tmp_path)) == str(tmp_path / "events.jsonl")


def test_round_trip_validates(tmp_path):
    with _log(tmp_path) as log:
        log.emit("campaign_started", workload="mixed", sampler="grid",
                 budget=4)
        log.emit("batch_scheduled", batch=0, points=4, fresh=4)
        log.emit("point_started", spec_hash="a" * 12)
        log.emit("point_finished", spec_hash="a" * 12, cache_hit=False,
                 paid=True, wall_ms=12.5)
        log.emit("campaign_finished", status="complete", points=4, paid=4)
    records, warnings = validate_events_file(
        str(tmp_path / "events.jsonl"))
    assert len(records) == 5
    assert warnings == []


def test_torn_tail_is_warning_not_error(tmp_path):
    with _log(tmp_path) as log:
        log.emit("cache_store")
        log.emit("cache_store")
    with open(log.path, "a", encoding="utf-8") as stream:
        stream.write('{"v": 1, "seq": 2, "pi')  # SIGKILL mid-write
    records, warnings = read_events(log.path)
    assert len(records) == 2
    assert warnings == ["line 3: truncated mid-write; ignored"]
    validate_events(records)


def test_mid_file_garbage_is_flagged_distinctly():
    text = ('{"v": 1, "seq": 0, "pid": 7, "ts": 1.0, "event": '
            '"cache_store"}\n'
            'not json at all\n'
            '{"v": 1, "seq": 1, "pid": 7, "ts": 2.0, "event": '
            '"cache_store"}\n')
    records, warnings = parse_events(text)
    assert len(records) == 2
    assert warnings == ["line 2: unparseable; skipped"]


def test_read_events_missing_file_is_config_error(tmp_path):
    with pytest.raises(ConfigError, match="cannot read"):
        read_events(str(tmp_path / "nope.jsonl"))


def _record(seq, pid=7, event="cache_store", **fields):
    record = {"v": EVENTS_VERSION, "seq": seq, "pid": pid, "ts": 1.0,
              "event": event}
    record.update(fields)
    return record


def test_validate_rejects_unknown_event():
    with pytest.raises(SchemaError, match="unknown event"):
        validate_events([_record(0, event="campaign_imploded")])


def test_validate_rejects_missing_required_field():
    with pytest.raises(SchemaError, match="missing field 'spec_hash'"):
        validate_events([_record(0, event="point_started")])


def test_validate_rejects_seq_gap_within_pid():
    records = [_record(0), _record(2)]
    with pytest.raises(SchemaError, match="seq jumped 0 -> 2"):
        validate_events(records)


def test_validate_rejects_nonzero_first_seq():
    with pytest.raises(SchemaError, match="first record has seq 3"):
        validate_events([_record(3)])


def test_validate_allows_seq_restart_as_new_session():
    # A resumed campaign (or a fork-healed handle) starts a fresh
    # writer session at seq 0 in the same file.
    records = [_record(0), _record(1), _record(0), _record(1)]
    validate_events(records)


def test_validate_interleaved_pids_are_independent_lanes():
    records = [_record(0, pid=1), _record(0, pid=2), _record(1, pid=1),
               _record(1, pid=2)]
    validate_events(records)


def test_validate_bool_and_count_fields_are_per_event():
    # 'paid' is a bool flag on point_finished but an int count on
    # campaign_finished; both must validate.
    records = [
        _record(0, event="point_finished", spec_hash="a", cache_hit=True,
                paid=False, wall_ms=0),
        _record(1, event="campaign_finished", status="complete",
                points=5, paid=3),
    ]
    validate_events(records)
    bad = [_record(0, event="point_finished", spec_hash="a",
                   cache_hit=True, paid=1, wall_ms=0)]
    with pytest.raises(SchemaError, match="'paid' must be a bool"):
        validate_events(bad)
    bad = [_record(0, event="campaign_finished", status="x", points=5,
                   paid=True)]
    with pytest.raises(SchemaError, match="'paid' must be an int"):
        validate_events(bad)


def test_validate_rejects_negative_wall_ms():
    record = _record(0, event="point_finished", spec_hash="a",
                     cache_hit=False, paid=True, wall_ms=-1.0)
    with pytest.raises(SchemaError, match="wall_ms"):
        validate_events([record])


def test_fork_heal_resets_sequence(tmp_path, monkeypatch):
    log = _log(tmp_path)
    log.emit("cache_store")
    log.emit("cache_store")
    # Simulate the handle crossing a fork: the child sees a new pid and
    # must restart its own writer session rather than continue the
    # parent's sequence.
    child_pid = os.getpid() + 1
    monkeypatch.setattr("repro.obs.eventlog.os.getpid",
                        lambda: child_pid)
    record = log.emit("cache_store")
    assert record["seq"] == 0
    assert record["pid"] == child_pid
    monkeypatch.undo()
    log.close()
    records, _ = read_events(log.path)
    validate_events(records)
    assert [r["seq"] for r in records] == [0, 1, 0]
